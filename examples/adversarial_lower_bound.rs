//! The §4 lower-bound construction, live: an adaptive adversary that
//! always requests the page the online algorithm is missing, versus the
//! batch offline schedule. No online algorithm escapes — the cost ratio
//! grows like `(n/4)^β` (Theorem 1.4).
//!
//! Run with: `cargo run --release --example adversarial_lower_bound`

use occ_baselines::Lru;
use occ_core::{theorem_1_4_lower, ConvexCaching, CostProfile, Monomial};
use occ_offline::batch_offline;
use occ_workloads::run_lower_bound;

fn main() {
    let beta = 2.0;
    println!("cost functions f_i(x) = x^{beta}; cache k = n − 1\n");
    println!(
        "{:>4} {:>8} {:>14} {:>14} {:>10} {:>12}",
        "n", "T", "online cost", "offline cost", "ratio", "(n/4)^beta"
    );

    for n in [5u32, 9, 17, 33, 65] {
        let t = (n as u64).pow(2) * 8;
        let costs = CostProfile::uniform(n, Monomial::power(beta));

        // The adversary adapts to the policy; run it against the paper's
        // algorithm (any policy gives the same headline: all misses).
        let mut alg = ConvexCaching::new(costs.clone());
        let (online, trace) = run_lower_bound(&mut alg, n, t);
        let online_cost = costs.total_cost(&online.miss_vector());

        let offline = batch_offline(&trace, (n - 1) as usize);
        let offline_cost = costs.total_cost(&offline.misses);

        println!(
            "{:>4} {:>8} {:>14.0} {:>14.0} {:>10.1} {:>12.1}",
            n,
            t,
            online_cost,
            offline_cost,
            online_cost / offline_cost,
            theorem_1_4_lower(n as usize, beta)
        );

        // Sanity: LRU fares no better (misses every request too).
        let mut lru = Lru::new();
        let (lru_online, _) = run_lower_bound(&mut lru, n, t);
        assert_eq!(
            lru_online.total_misses(),
            online.total_misses(),
            "every online algorithm misses every adversarial request"
        );
    }

    println!(
        "\nThe measured ratio grows superlinearly in n — the Ω(k)^β lower \
         bound is real, and it binds every deterministic online algorithm."
    );
}
