//! The SQLVM-style scenario (§1.1 / [14]): four database tenants share a
//! buffer pool; each has an SLA refund schedule. Compares the whole
//! policy suite on total refund cost.
//!
//! Run with: `cargo run --release --example multi_tenant_sla`

use occ_analysis::{compare_policies, evaluate_policy, fnum, Table};
use occ_core::ConvexCaching;
use occ_workloads::sqlvm_like;

fn main() {
    let scenario = sqlvm_like();
    let trace = scenario.trace(60_000, 7);
    let k = scenario.suggested_k;

    println!(
        "scenario '{}': {} tenants, {} pages, cache k = {k}, T = {}",
        scenario.name,
        scenario.tenants.len(),
        trace.universe().num_pages(),
        trace.len()
    );
    for u in 0..scenario.costs.num_users() {
        println!(
            "  tenant {u}: f(x) = {}",
            scenario.costs.user(occ_sim::UserId(u)).describe()
        );
    }

    let mut suite = occ_baselines::standard_suite(&scenario.costs);
    let mut reports = compare_policies(&mut suite, &trace, k, &scenario.costs);
    let mut ours = ConvexCaching::new(scenario.costs.clone());
    reports.push(evaluate_policy(&mut ours, &trace, k, &scenario.costs));
    reports.sort_by(|a, b| a.cost.total_cmp(&b.cost));

    let mut table = Table::new(vec![
        "policy",
        "total SLA cost",
        "miss rate",
        "per-tenant misses",
    ]);
    for r in &reports {
        table.row(vec![
            r.name.clone(),
            fnum(r.cost),
            format!("{:.3}", r.miss_rate()),
            format!("{:?}", r.misses),
        ]);
    }
    println!("\n{}", table.to_markdown());
    println!(
        "cost-aware policies (convex-caching, cost-greedy, greedy-dual) \
         cluster at the top; cost-blind ones pay 2-4x more refunds."
    );
}
