//! Quickstart: share one cache between two tenants with different miss
//! costs, run the paper's algorithm, and compare it to LRU.
//!
//! Run with: `cargo run --release --example quickstart`

use occ_baselines::Lru;
use occ_core::{ConvexCaching, CostFn, CostProfile, Linear, Monomial};
use occ_sim::{Simulator, Trace, Universe};
use std::sync::Arc;

fn main() {
    // Tenant 0 pays quadratically for misses (a steep SLA); tenant 1 pays
    // one unit per miss. Each owns 16 pages.
    let universe = Universe::uniform(2, 16);
    let costs = CostProfile::new(vec![
        Arc::new(Monomial::power(2.0)) as CostFn,
        Arc::new(Linear::unit()) as CostFn,
    ]);

    // A simple interleaved workload: both tenants cycle over 10 pages.
    let mut pages = Vec::new();
    for i in 0..5_000u32 {
        pages.push(i % 10); // tenant 0's pages 0..10
        pages.push(16 + (i % 10)); // tenant 1's pages 16..26
    }
    let trace = Trace::from_page_indices(&universe, &pages);

    // A cache of 12 pages can hold one tenant's working set, not both.
    let k = 12;

    let mut ours = ConvexCaching::new(costs.clone());
    let ours_result = Simulator::new(k).run(&mut ours, &trace);

    let mut lru = Lru::new();
    let lru_result = Simulator::new(k).run(&mut lru, &trace);

    println!("cache size k = {k}, T = {} requests", trace.len());
    println!(
        "convex-caching: per-tenant misses {:?}, total cost {:.0}",
        ours_result.miss_vector(),
        costs.total_cost(&ours_result.miss_vector()),
    );
    println!(
        "lru           : per-tenant misses {:?}, total cost {:.0}",
        lru_result.miss_vector(),
        costs.total_cost(&lru_result.miss_vector()),
    );
    println!(
        "→ the cost-aware algorithm shields the quadratic tenant: it shifts \
         misses onto the linear tenant, whose marginal cost is flat."
    );

    let ours_cost = costs.total_cost(&ours_result.miss_vector());
    let lru_cost = costs.total_cost(&lru_result.miss_vector());
    assert!(
        ours_cost <= lru_cost,
        "cost-aware should not lose on this asymmetric workload"
    );
}
