//! Audit the primal–dual machinery end to end: run ALG-CONT (Figure 2)
//! with the dummy-flush convention, then check every §2.3 invariant and
//! the Theorem 1.1 inequality against the exact offline optimum.
//!
//! Run with: `cargo run --release --example invariant_audit`

use occ_core::{
    check_invariants, run_continuous, with_dummy_flush, CostProfile, Marginals, Monomial, TieBreak,
};
use occ_offline::exact_opt;
use occ_sim::{Trace, Universe};

fn main() {
    // Small instance so the exact convex-objective OPT is computable.
    let universe = Universe::uniform(2, 2);
    let pages = [0u32, 2, 1, 3, 0, 2, 1, 3, 0, 2, 1, 0];
    let trace = Trace::from_page_indices(&universe, &pages);
    let k = 2;
    let beta = 2.0;
    let costs = CostProfile::uniform(2, Monomial::power(beta));

    // --- run the continuous primal–dual algorithm with the flush ---
    let (flushed_trace, flushed_costs) = with_dummy_flush(&trace, &costs, k);
    let run = run_continuous(
        &flushed_trace,
        k,
        &flushed_costs,
        Marginals::Derivative,
        TieBreak::OldestRequest,
    );

    println!("trace: {:?} (+{k} flush requests)", pages);
    println!(
        "ALG-CONT: {} evictions, total dual mass Σy = {:.3}",
        run.eviction_sequence.len(),
        run.state.total_y()
    );

    // --- §2.3 invariants ---
    let report = check_invariants(
        &flushed_trace,
        k,
        &flushed_costs,
        Marginals::Derivative,
        &run,
        true,
        1e-6,
    );
    println!("\n§2.3 invariants:");
    println!("  (1a) primal feasible ........ {}", report.primal_feasible);
    println!("  (1c) duals non-negative ..... {}", report.dual_nonneg);
    println!("  (2a) z slack ................ {}", report.comp_slack_z);
    println!(
        "  (2b) tight at evictions ..... {} (max residual {:.2e})",
        report.tightness_at_eviction, report.max_tightness_residual
    );
    println!(
        "  (3a) gradient condition ..... {} (min slack {:.2e})",
        report.gradient_ok, report.min_gradient_slack
    );
    assert!(report.all_ok(), "violations: {:?}", report.violations);

    // --- Theorem 1.1 against the exact optimum ---
    let online_misses: Vec<u64> = run.stats.miss_vector()[..2].to_vec();
    let opt = exact_opt(&trace, k, &costs);
    let online_cost = costs.total_cost(&online_misses);
    let rhs = occ_core::theorem_1_1_rhs(&costs, &opt.misses, beta, k);
    println!("\nTheorem 1.1 on this instance:");
    println!("  online misses a = {online_misses:?}, cost = {online_cost}");
    println!("  OPT misses    b = {:?}, cost = {}", opt.misses, opt.cost);
    println!("  rhs Σ f(αk·b) = {rhs}");
    assert!(online_cost <= rhs + 1e-9, "Theorem 1.1 must hold");
    println!("  bound holds ✓");
}
