//! Extending the library: implement your own replacement policy against
//! the `occ_sim` engine and benchmark it next to the built-in suite.
//!
//! The example policy is "SLA-aware CLOCK": a second-chance clock whose
//! hand skips pages of tenants that are deep into their SLA penalty
//! region. It is deliberately simple — the point is the integration
//! surface, not the policy.
//!
//! Run with: `cargo run --release --example custom_policy`

use occ_analysis::{compare_policies, evaluate_policy, fnum, Table};
use occ_core::{ConvexCaching, CostProfile};
use occ_sim::{EngineCtx, PageId, ReplacementPolicy};
use occ_workloads::two_tier;

/// Second-chance clock with an SLA-awareness twist: pages of users whose
/// next-eviction marginal is above the mean get a second second-chance.
struct SlaClock {
    costs: CostProfile,
    referenced: Vec<u8>,
    hand: usize,
}

impl SlaClock {
    fn new(costs: CostProfile) -> Self {
        SlaClock {
            costs,
            referenced: Vec::new(),
            hand: 0,
        }
    }

    fn ensure(&mut self, ctx: &EngineCtx) {
        let n = ctx.universe.num_pages() as usize;
        if self.referenced.len() < n {
            self.referenced.resize(n, 0);
        }
    }
}

impl ReplacementPolicy for SlaClock {
    fn name(&self) -> String {
        "sla-clock".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure(ctx);
        self.referenced[page.index()] = 1;
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure(ctx);
        self.referenced[page.index()] = 1;
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        self.ensure(ctx);
        let pages = ctx.cache.pages();
        // Mean marginal across users with cached pages.
        let mut marginals = Vec::with_capacity(pages.len());
        for &p in pages {
            let u = ctx.universe.owner(p);
            let m = ctx.stats.user(u).evictions;
            marginals.push(self.costs.user(u).marginal(m));
        }
        let mean = marginals.iter().sum::<f64>() / marginals.len() as f64;

        // Sweep the clock: clear reference bits; pages of above-mean
        // tenants need two sweeps, others one.
        loop {
            self.hand = (self.hand + 1) % pages.len();
            let p = pages[self.hand];
            let idx = p.index();
            let protect = u8::from(marginals[self.hand] > mean) + self.referenced[idx];
            if protect == 0 {
                return p;
            }
            self.referenced[idx] = self.referenced[idx].saturating_sub(1);
        }
    }

    fn reset(&mut self) {
        self.referenced.clear();
        self.hand = 0;
    }
}

fn main() {
    let scenario = two_tier();
    let trace = scenario.trace(40_000, 3);
    let k = scenario.suggested_k;

    let mut suite = occ_baselines::standard_suite(&scenario.costs);
    let mut reports = compare_policies(&mut suite, &trace, k, &scenario.costs);
    let mut custom = SlaClock::new(scenario.costs.clone());
    reports.push(evaluate_policy(&mut custom, &trace, k, &scenario.costs));
    let mut ours = ConvexCaching::new(scenario.costs.clone());
    reports.push(evaluate_policy(&mut ours, &trace, k, &scenario.costs));
    reports.sort_by(|a, b| a.cost.total_cmp(&b.cost));

    let mut table = Table::new(vec!["policy", "total cost", "miss rate"]);
    for r in &reports {
        table.row(vec![
            r.name.clone(),
            fnum(r.cost),
            format!("{:.3}", r.miss_rate()),
        ]);
    }
    println!("scenario '{}', k = {k}:\n", scenario.name);
    println!("{}", table.to_markdown());
    println!(
        "a custom policy is ~60 lines: implement ReplacementPolicy, get \
         hit/miss accounting, cost evaluation and the whole comparison \
         harness for free."
    );
}
