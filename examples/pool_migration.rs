//! The paper's §5 future work, runnable: two memory pools, six tenants,
//! and a cost-aware rebalancer that migrates a suffering tenant out of a
//! contended pool — when the switching cost makes it worthwhile.
//!
//! Run with: `cargo run --release --example pool_migration`

use occ_core::{ConvexCaching, CostFn, CostProfile, Linear, Monomial};
use occ_pools::{run_pools, CostAwareRebalancer, PoolAssigner, PoolsConfig, StaticAssigner};
use occ_sim::ReplacementPolicy;
use occ_workloads::{generate_multi_tenant, AccessPattern, TenantSpec};
use std::sync::Arc;

fn main() {
    // Tenants 0 and 2 are heavy and get colocated by the round-robin
    // initial placement (both even → pool 0).
    let trace = generate_multi_tenant(
        &[
            TenantSpec::new(20, 3.0, AccessPattern::Cycle { len: 16 }),
            TenantSpec::new(8, 1.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(20, 3.0, AccessPattern::Cycle { len: 16 }),
            TenantSpec::new(8, 1.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(8, 0.5, AccessPattern::Uniform),
            TenantSpec::new(8, 0.5, AccessPattern::Uniform),
        ],
        40_000,
        5,
    );
    let costs = CostProfile::new(vec![
        Arc::new(Monomial::power(2.0)) as CostFn,
        Arc::new(Linear::new(2.0)) as CostFn,
        Arc::new(Monomial::power(2.0)) as CostFn,
        Arc::new(Linear::new(2.0)) as CostFn,
        Arc::new(Linear::unit()) as CostFn,
        Arc::new(Linear::unit()) as CostFn,
    ]);

    println!("two pools × 20 pages; 6 tenants; epoch = 2000 requests\n");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>12} {:>14}",
        "assigner", "fee", "migrations", "miss cost", "fees paid", "total cost"
    );
    for &fee in &[0.0, 1_000.0, 1e7] {
        for assigner in [
            &mut StaticAssigner as &mut dyn PoolAssigner,
            &mut CostAwareRebalancer::default(),
        ] {
            let costs_factory = costs.clone();
            let result = run_pools(
                &trace,
                PoolsConfig::uniform(2, 20, fee),
                &costs,
                assigner,
                2_000,
                move |_| {
                    Box::new(ConvexCaching::new(costs_factory.clone()))
                        as Box<dyn ReplacementPolicy>
                },
            );
            println!(
                "{:<14} {:>6.0} {:>12} {:>12.0} {:>12.0} {:>14.0}",
                assigner.name(),
                fee,
                result.migrations,
                result.miss_cost,
                result.switching_total,
                result.total_cost()
            );
        }
    }
    println!(
        "\nWith a sane fee the rebalancer pays one migration to separate the \
         colocated heavy tenants; with a prohibitive fee it correctly sits \
         still and matches the static assignment."
    );
}
