//! Shared plumbing for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one table of EXPERIMENTS.md; see DESIGN.md's
//! experiment index for the mapping to the paper's theorems and figures.

use occ_analysis::Table;
use std::path::PathBuf;

/// Common CLI handling: `--csv <dir>` dumps every printed table as a CSV
/// file into `dir` in addition to stdout markdown.
pub struct Reporter {
    csv_dir: Option<PathBuf>,
}

impl Reporter {
    /// Parse `std::env::args()` (only `--csv <dir>` is recognized).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let csv_dir = args
            .iter()
            .position(|a| a == "--csv")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create --csv output dir");
        }
        Reporter { csv_dir }
    }

    /// Print a section header.
    pub fn section(&self, title: &str) {
        println!("\n## {title}\n");
    }

    /// Print a table as markdown (and CSV if `--csv` was given).
    pub fn table(&self, slug: &str, table: &Table) {
        println!("{}", table.to_markdown());
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(format!("{slug}.csv"));
            std::fs::write(&path, table.to_csv()).expect("write csv");
            println!("(csv written to {})", path.display());
        }
    }

    /// Print a one-line note below a table.
    pub fn note(&self, text: &str) {
        println!("{text}\n");
    }
}

/// Mark experiment outcome at the end of a binary: prints PASS/FAIL and
/// sets a non-zero exit code on failure so CI can gate on experiments.
pub fn finish(name: &str, ok: bool) {
    if ok {
        println!("\n[{name}] PASS");
    } else {
        println!("\n[{name}] FAIL");
        std::process::exit(1);
    }
}
