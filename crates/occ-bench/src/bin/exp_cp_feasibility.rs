//! E6 — Figures 1 & 4: the convex programs (ICP)/(CP) and (ICP-h)/(CP-h).
//!
//! §2.1's structural claims, validated on concrete traces:
//!
//! * every algorithm run induces a feasible integer solution of (ICP);
//! * the (ICP) objective of that solution equals the algorithm's summed
//!   eviction cost;
//! * the cache-`h` program is strictly tighter (more binding
//!   constraints), and the zero solution is infeasible as soon as the
//!   distinct-page count exceeds the cache size.

use occ_analysis::{fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{Assignment, ConvexCaching, ConvexProgram, CostProfile, Monomial};
use occ_sim::{Simulator, Trace, Universe};
use occ_workloads::{generate_multi_tenant, AccessPattern, TenantSpec};

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;

    r.section("E6 — program construction and induced-solution feasibility");
    let mut t = Table::new(vec![
        "T",
        "pages",
        "k",
        "vars",
        "constraints",
        "binding",
        "induced feasible",
        "objective",
        "simulated cost",
        "equal",
    ]);
    for &(len, pages_per, k) in &[(500usize, 6u32, 4usize), (2_000, 10, 6), (8_000, 16, 8)] {
        let trace = generate_multi_tenant(
            &[
                TenantSpec::new(pages_per, 2.0, AccessPattern::Zipf { s: 0.8 }),
                TenantSpec::new(pages_per, 1.0, AccessPattern::Uniform),
            ],
            len,
            99,
        );
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let cp = ConvexProgram::new(&trace, k);
        let mut alg = ConvexCaching::new(costs.clone());
        let result = Simulator::new(k).record_events(true).run(&mut alg, &trace);
        let assignment = Assignment::from_eviction_log(&trace, result.events.as_ref().unwrap());
        let feasible = cp.check_feasible(&assignment, 1e-9).is_ok();
        let objective = cp.objective(&assignment, &costs);
        let simulated = costs.total_cost(&result.stats.eviction_vector());
        let equal = (objective - simulated).abs() < 1e-9;
        all_ok &= feasible && equal;
        t.row(vec![
            len.to_string(),
            (2 * pages_per).to_string(),
            k.to_string(),
            cp.num_vars().to_string(),
            cp.num_constraints().to_string(),
            cp.num_binding_constraints().to_string(),
            feasible.to_string(),
            fnum(objective),
            fnum(simulated),
            equal.to_string(),
        ]);
    }
    r.table("e6_icp", &t);
    r.note("objective charges evictions (the paper's accounting), hence the eviction vector.");

    r.section("E6 — Figure 4: (CP-h) is strictly tighter as h shrinks");
    let mut t = Table::new(vec![
        "h",
        "binding constraints",
        "zero-solution feasible",
        "induced(k-run) feasible",
    ]);
    let u = Universe::single_user(12);
    let pages: Vec<u32> = (0..600).map(|i| (i * 7 + 3) as u32 % 12).collect();
    let trace = Trace::from_page_indices(&u, &pages);
    let k = 8usize;
    let costs = CostProfile::uniform(1, Monomial::power(2.0));
    let mut alg = ConvexCaching::new(costs);
    let result = Simulator::new(k).record_events(true).run(&mut alg, &trace);
    let induced = Assignment::from_eviction_log(&trace, result.events.as_ref().unwrap());
    let mut prev_binding = 0usize;
    for h in [12usize, 10, 8, 6, 4, 2] {
        let cph = ConvexProgram::new(&trace, h);
        let zero_ok = cph.check_feasible(&cph.zero_assignment(), 1e-9).is_ok();
        let induced_ok = cph.check_feasible(&induced, 1e-9).is_ok();
        // Tightness is monotone: smaller h ⇒ at least as many binding rows.
        if cph.num_binding_constraints() < prev_binding {
            all_ok = false;
        }
        prev_binding = cph.num_binding_constraints();
        // The k-run's solution is feasible for h ≥ k but may fail for
        // h < k (stronger rhs) — both facts are worth printing.
        if h >= k && !induced_ok {
            all_ok = false;
        }
        t.row(vec![
            h.to_string(),
            cph.num_binding_constraints().to_string(),
            zero_ok.to_string(),
            induced_ok.to_string(),
        ]);
    }
    r.table("e6_cph", &t);
    r.note(
        "the k-cache run's solution satisfies (CP-h) only for h ≥ k; Theorem \
         1.3 compares costs, not feasibility, for h < k.",
    );

    finish("exp_cp_feasibility", all_ok);
}
