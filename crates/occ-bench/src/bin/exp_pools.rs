//! E9 — the §5 future-work system: multiple memory pools with user
//! migration and switching costs.
//!
//! Six tenants with drifting load share two pools. The sweep varies the
//! switching cost and compares assignment policies (static, cost-blind
//! load balancing, cost-aware rebalancing), with the paper's algorithm
//! as the per-pool replacement policy. Expected shape: the cost-aware
//! rebalancer wins at low-to-moderate switching costs and converges to
//! the static assigner's cost as the fee grows (it migrates less and
//! less); the cost-blind balancer migrates regardless and is penalized
//! at high fees.

use occ_analysis::{fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{ConvexCaching, CostFn, CostProfile, Linear, Monomial, PiecewiseLinear};
use occ_pools::{
    run_pools, CostAwareRebalancer, LoadBalancer, PoolAssigner, PoolsConfig, StaticAssigner,
};
use occ_sim::{ReplacementPolicy, Trace};
use occ_workloads::{generate_multi_tenant, AccessPattern, TenantSpec};
use std::sync::Arc;

fn workload() -> (Trace, CostProfile) {
    // Tenants 0 and 2 are heavy with large conflicting working sets; the
    // round-robin initial placement colocates them (both even ⇒ pool 0),
    // so a good rebalancer has something real to fix. The rest are light.
    let trace = generate_multi_tenant(
        &[
            TenantSpec::new(
                20,
                3.0,
                AccessPattern::Phased {
                    s: 1.2,
                    phase_len: 4_000,
                },
            ),
            TenantSpec::new(8, 1.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(20, 3.0, AccessPattern::Cycle { len: 16 }),
            TenantSpec::new(8, 1.0, AccessPattern::Zipf { s: 1.0 }),
            TenantSpec::new(8, 0.5, AccessPattern::Uniform),
            TenantSpec::new(8, 0.5, AccessPattern::Uniform),
        ],
        60_000,
        31,
    );
    let costs = CostProfile::new(vec![
        Arc::new(Monomial::power(2.0)) as CostFn,
        Arc::new(Linear::new(2.0)) as CostFn,
        Arc::new(PiecewiseLinear::sla(100.0, 1.0, 10.0)) as CostFn,
        Arc::new(Linear::new(2.0)) as CostFn,
        Arc::new(Linear::unit()) as CostFn,
        Arc::new(Linear::unit()) as CostFn,
    ]);
    (trace, costs)
}

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;
    let (trace, costs) = workload();
    let epoch = 2_000u64;

    r.section("E9 — two pools of 20 pages, 6 tenants, epoch = 2000 requests");
    let mut t = Table::new(vec![
        "switching cost",
        "assigner",
        "migrations",
        "miss cost",
        "switch total",
        "total cost",
    ]);
    let mut totals: Vec<(f64, String, f64)> = Vec::new();
    for &fee in &[0.0f64, 100.0, 1_000.0, 100_000.0] {
        let assigners: Vec<Box<dyn PoolAssigner>> = vec![
            Box::new(StaticAssigner),
            Box::new(LoadBalancer),
            Box::new(CostAwareRebalancer::default()),
        ];
        for mut assigner in assigners {
            let costs_factory = costs.clone();
            let result = run_pools(
                &trace,
                PoolsConfig::uniform(2, 20, fee),
                &costs,
                &mut *assigner,
                epoch,
                move |_| {
                    Box::new(ConvexCaching::new(costs_factory.clone()))
                        as Box<dyn ReplacementPolicy>
                },
            );
            totals.push((fee, assigner.name(), result.total_cost()));
            t.row(vec![
                fnum(fee),
                assigner.name(),
                result.migrations.to_string(),
                fnum(result.miss_cost),
                fnum(result.switching_total),
                fnum(result.total_cost()),
            ]);
        }
    }
    r.table("e9_pools", &t);

    // Validation: at the highest fee the cost-aware assigner must be
    // within a whisker of static (it should stop migrating)…
    let cost_of = |fee: f64, name: &str| {
        totals
            .iter()
            .find(|(f, n, _)| *f == fee && n == name)
            .map(|&(_, _, c)| c)
            .expect("row present")
    };
    let high = 100_000.0;
    if cost_of(high, "cost-aware") > cost_of(high, "static") * 1.02 {
        println!("!! cost-aware must converge to static at prohibitive fees");
        all_ok = false;
    }
    // …and at zero fee it must strictly beat static (free migrations).
    if cost_of(0.0, "cost-aware") >= cost_of(0.0, "static") {
        println!(
            "!! free migrations should help: cost-aware {} vs static {}",
            cost_of(0.0, "cost-aware"),
            cost_of(0.0, "static")
        );
        all_ok = false;
    }

    r.section("E9 — pooling gain: one big pool vs two halves (static)");
    let mut t = Table::new(vec!["configuration", "miss cost"]);
    let one_pool = run_pools(
        &trace,
        PoolsConfig::uniform(1, 40, 0.0),
        &costs,
        &mut StaticAssigner,
        epoch,
        {
            let costs = costs.clone();
            move |_| Box::new(ConvexCaching::new(costs.clone())) as Box<dyn ReplacementPolicy>
        },
    );
    let two_pools = run_pools(
        &trace,
        PoolsConfig::uniform(2, 20, 0.0),
        &costs,
        &mut StaticAssigner,
        epoch,
        {
            let costs = costs.clone();
            move |_| Box::new(ConvexCaching::new(costs.clone())) as Box<dyn ReplacementPolicy>
        },
    );
    t.row(vec!["1 × 40 pages".to_string(), fnum(one_pool.miss_cost)]);
    t.row(vec![
        "2 × 20 pages (static)".to_string(),
        fnum(two_pools.miss_cost),
    ]);
    r.table("e9_pooling_gain", &t);
    r.note(
        "statistical multiplexing: the single shared pool dominates any \
         static partition — the reason multi-tenancy pools memory at all \
         (§1.1), and the gap a good rebalancer narrows.",
    );
    if one_pool.miss_cost > two_pools.miss_cost {
        println!("!! pooling gain inverted");
        all_ok = false;
    }

    finish("exp_pools", all_ok);
}
