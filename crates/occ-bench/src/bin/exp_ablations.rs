//! E8 — ablations of the design choices DESIGN.md calls out.
//!
//! 1. Tie-breaking rule (Figure 2's unspecified "first page"): all three
//!    deterministic rules satisfy the bound; costs differ only slightly.
//! 2. Marginals: analytic derivative `f'(m+1)` vs discrete `Δf(m)`
//!    (§2.5) — near-identical on smooth costs, required for
//!    discontinuous ones.
//! 3. Accounting: fetch-counted vs eviction-counted (flush) cost — equal
//!    up to the additive cache-size term, per §2.1's dummy-user argument.

use occ_analysis::{fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{
    ConvexCaching, CostFn, CostProfile, Linear, Marginals, Monomial, PiecewiseLinear,
    ThresholdCost, TieBreak,
};
use occ_sim::{Simulator, Trace};
use occ_workloads::{generate_multi_tenant, AccessPattern, TenantSpec};
use std::sync::Arc;

fn workload() -> (Trace, CostProfile) {
    let trace = generate_multi_tenant(
        &[
            TenantSpec::new(24, 2.0, AccessPattern::Zipf { s: 0.9 }),
            TenantSpec::new(24, 1.0, AccessPattern::Cycle { len: 18 }),
            TenantSpec::new(16, 1.0, AccessPattern::Uniform),
        ],
        40_000,
        77,
    );
    let costs = CostProfile::new(vec![
        Arc::new(Monomial::power(2.0)) as CostFn,
        Arc::new(PiecewiseLinear::sla(60.0, 1.0, 12.0)) as CostFn,
        Arc::new(Linear::new(2.0)) as CostFn,
    ]);
    (trace, costs)
}

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;
    let k = 16usize;
    let (trace, costs) = workload();

    // ---- 1. tie-breaking ----
    r.section("E8.1 — tie-breaking rule");
    let mut t = Table::new(vec!["tie-break", "total cost", "misses", "evictions"]);
    let mut costs_by_tb = Vec::new();
    for tb in TieBreak::ALL {
        let mut alg = ConvexCaching::new(costs.clone()).with_tiebreak(tb);
        let res = Simulator::new(k).run(&mut alg, &trace);
        let c = costs.total_cost(&res.miss_vector());
        costs_by_tb.push(c);
        t.row(vec![
            tb.label().to_string(),
            fnum(c),
            res.total_misses().to_string(),
            res.stats.total_evictions().to_string(),
        ]);
    }
    r.table("e8_tiebreak", &t);
    let spread =
        occ_analysis::max(&costs_by_tb) / costs_by_tb.iter().copied().fold(f64::INFINITY, f64::min);
    r.note(&format!(
        "cost spread across tie-breaks: {:.3}x (ties are rare off the \
         uniform-linear case, so the rule barely matters)",
        spread
    ));
    if spread > 1.25 {
        println!("!! tie-break spread unexpectedly large");
        all_ok = false;
    }

    // ---- 2. marginals mode ----
    r.section("E8.2 — derivative vs discrete marginals (§2.5)");
    let mut t = Table::new(vec!["costs", "marginals", "total cost", "misses"]);
    let profiles: Vec<(&str, CostProfile)> = vec![
        ("smooth (x^2/sla/lin)", costs.clone()),
        (
            "discontinuous (threshold)",
            CostProfile::new(vec![
                Arc::new(ThresholdCost::new(1.0, 50, 500.0)) as CostFn,
                Arc::new(ThresholdCost::new(1.0, 200, 100.0)) as CostFn,
                Arc::new(Linear::new(1.0)) as CostFn,
            ]),
        ),
    ];
    for (name, profile) in &profiles {
        for mode in [Marginals::Derivative, Marginals::Discrete] {
            let mut alg = ConvexCaching::new(profile.clone()).with_marginals(mode);
            let res = Simulator::new(k).run(&mut alg, &trace);
            let c = profile.total_cost(&res.miss_vector());
            t.row(vec![
                name.to_string(),
                format!("{mode:?}"),
                fnum(c),
                res.total_misses().to_string(),
            ]);
        }
    }
    r.table("e8_marginals", &t);
    r.note(
        "for the discontinuous profile only the discrete mode 'sees' the \
         jump (the derivative is blind to it), which is §2.5's point.",
    );

    // ---- 3. accounting: fetches vs evictions-with-flush ----
    r.section("E8.3 — fetch-counted vs eviction-counted (flush) accounting");
    let mut t = Table::new(vec!["accounting", "per-user counts", "total cost"]);
    use occ_sim::ReplacementPolicy;
    let mut alg = ConvexCaching::new(costs.clone());
    let plain = Simulator::new(k).run(&mut alg, &trace);
    ReplacementPolicy::reset(&mut alg);
    let flushed = Simulator::new(k).flush_at_end(true).run(&mut alg, &trace);
    let fetch_cost = costs.total_cost(&plain.miss_vector());
    let evict_cost = costs.total_cost(&flushed.stats.eviction_vector());
    t.row(vec![
        "fetches (misses)".to_string(),
        format!("{:?}", plain.miss_vector()),
        fnum(fetch_cost),
    ]);
    t.row(vec![
        "evictions + flush".to_string(),
        format!("{:?}", flushed.stats.eviction_vector()),
        fnum(evict_cost),
    ]);
    r.table("e8_accounting", &t);
    // §2.1: with the flush, per-user evictions equal per-user misses.
    if plain.miss_vector() != flushed.stats.eviction_vector() {
        println!("!! flush accounting identity violated");
        all_ok = false;
    }
    if (fetch_cost - evict_cost).abs() > 1e-9 {
        println!("!! accounting costs diverge");
        all_ok = false;
    }

    finish("exp_ablations", all_ok);
}
