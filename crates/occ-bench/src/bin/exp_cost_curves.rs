//! E10 — cost versus cache size: how the convex objective decays with
//! `k` for the cost-aware algorithm versus LRU (whole miss-ratio curve
//! via Mattson's stack algorithm) and the offline references.
//!
//! This is the operator's view of the paper: for a given tenant mix and
//! SLA profile, how much memory buys how much cost, and how much of the
//! gap to offline is closed by cost-awareness at each size.

use occ_analysis::{fnum, lru_cost_curve, lru_mrc, Table};
use occ_bench::{finish, Reporter};
use occ_core::{ConvexCaching, CostProfile};
use occ_offline::best_offline_heuristic;
use occ_sim::Simulator;
use occ_workloads::two_tier;

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;

    let scenario = two_tier();
    let trace = scenario.trace(40_000, 17);
    let costs: &CostProfile = &scenario.costs;
    let max_k = 48usize;

    // Whole LRU curve in one pass.
    let mrc = lru_mrc(&trace, max_k);
    let lru_curve = lru_cost_curve(&mrc, costs);

    r.section("E10 — convex cost vs cache size (scenario 'two-tier')");
    let mut t = Table::new(vec![
        "k",
        "LRU miss ratio",
        "LRU cost",
        "convex-caching cost",
        "offline heuristic cost",
        "aware/blind",
    ]);
    let ks = [4usize, 8, 12, 16, 24, 32, 48];
    for &k in &ks {
        let mut alg = ConvexCaching::new(costs.clone());
        let ours = Simulator::new(k).run(&mut alg, &trace);
        let ours_cost = costs.total_cost(&ours.miss_vector());
        let (off_cost, _) = best_offline_heuristic(&trace, k, costs);
        let lru_cost = lru_curve[k - 1];
        t.row(vec![
            k.to_string(),
            format!("{:.3}", mrc.ratio(k)),
            fnum(lru_cost),
            fnum(ours_cost),
            fnum(off_cost),
            format!("{:.2}x", lru_cost / ours_cost),
        ]);
        // Sanity: the offline schedule can't cost more than LRU (LRU is
        // one of the candidate schedules MIN dominates in misses; the
        // heuristic takes a min with a cost-aware schedule).
        if off_cost > lru_cost * 1.0001 {
            println!("!! offline heuristic above LRU at k={k}");
            all_ok = false;
        }
    }
    r.table("e10_cost_curves", &t);
    r.note(
        "aware/blind = LRU cost / convex-caching cost. At tiny k everyone \
         thrashes and the curves converge; as k grows, cost-awareness can \
         shield the quadratic tenant almost completely while LRU keeps \
         splitting misses evenly — the ratio explodes (convexity amplifies \
         every miss LRU needlessly gives the expensive tenant).",
    );

    // Validation: cost-awareness must win at the contended sizes.
    for &k in &[8usize, 16, 24] {
        let mut alg = ConvexCaching::new(costs.clone());
        let ours = Simulator::new(k).run(&mut alg, &trace);
        let ours_cost = costs.total_cost(&ours.miss_vector());
        if ours_cost > lru_curve[k - 1] {
            println!("!! cost-aware above LRU at contended k={k}");
            all_ok = false;
        }
    }
    // And the MRC itself must be monotone.
    for k in 1..max_k {
        if mrc.misses[k] > mrc.misses[k - 1] {
            println!("!! LRU stack property violated at k={}", k + 1);
            all_ok = false;
        }
    }

    finish("exp_cost_curves", all_ok);
}
