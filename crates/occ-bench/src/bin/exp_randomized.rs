//! E11 — randomization and the lower bound (§1.3 context).
//!
//! Theorem 1.4's `Ω(k)^β` bound is for *deterministic* algorithms; the
//! paper's related work (\[3\], Bansal–Buchbinder–Naor) obtains
//! `O(log k)`-type randomized guarantees for weighted caching against
//! *oblivious* adversaries. This experiment shows both halves of that
//! story empirically:
//!
//! * on the fixed `(k+1)`-cycle (an oblivious adversary's worst case for
//!   deterministic algorithms), randomized marking hits a constant
//!   fraction of requests while every deterministic policy misses all;
//! * against the §4 *adaptive* adversary, which observes the actual
//!   cache, randomization buys nothing — every policy misses every
//!   request, so the paper's lower-bound construction is robust to
//!   randomization of this kind.

use occ_analysis::{fnum, Table};
use occ_baselines::{Lru, Marking, RandomizedMarking};
use occ_bench::{finish, Reporter};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_sim::{ReplacementPolicy, Simulator};
use occ_workloads::{cycle_trace, run_lower_bound};

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;
    let beta = 2.0;

    r.section("E11a — oblivious (k+1)-cycle: randomization dodges the fixed hole");
    let mut t = Table::new(vec!["k", "policy", "T", "misses", "miss rate"]);
    for &k in &[4usize, 8, 16] {
        let trace = cycle_trace(k as u32 + 1, 20_000);
        let costs = CostProfile::uniform(1, Monomial::power(beta));
        let det: Vec<(String, u64)> = vec![
            ("lru".into(), {
                Simulator::new(k)
                    .run(&mut Lru::new(), &trace)
                    .total_misses()
            }),
            ("marking".into(), {
                Simulator::new(k)
                    .run(&mut Marking::new(), &trace)
                    .total_misses()
            }),
            ("convex-caching".into(), {
                let mut alg = ConvexCaching::new(costs.clone());
                Simulator::new(k).run(&mut alg, &trace).total_misses()
            }),
        ];
        // Randomized marking averaged over seeds.
        let seeds = 5;
        let rand_avg: u64 = (0..seeds)
            .map(|s| {
                Simulator::new(k)
                    .run(&mut RandomizedMarking::new(s), &trace)
                    .total_misses()
            })
            .sum::<u64>()
            / seeds;
        for (name, misses) in &det {
            if *misses != 20_000 {
                println!("!! deterministic {name} must miss everything on the cycle");
                all_ok = false;
            }
            t.row(vec![
                k.to_string(),
                name.clone(),
                "20000".into(),
                misses.to_string(),
                format!("{:.3}", *misses as f64 / 20_000.0),
            ]);
        }
        t.row(vec![
            k.to_string(),
            format!("rand-marking (avg of {seeds})"),
            "20000".into(),
            rand_avg.to_string(),
            format!("{:.3}", rand_avg as f64 / 20_000.0),
        ]);
        if rand_avg >= 18_000 {
            println!("!! randomization should beat the fixed cycle at k={k}");
            all_ok = false;
        }
    }
    r.table("e11a_oblivious", &t);

    r.section("E11b — adaptive §4 adversary: randomization does not help");
    let mut t = Table::new(vec!["n", "policy", "T", "misses", "ratio vs batch offline"]);
    for &n in &[9u32, 17] {
        let t_len = (n as u64).pow(2) * 6;
        let costs = CostProfile::uniform(n, Monomial::power(beta));
        let policies: Vec<(String, Box<dyn ReplacementPolicy>)> = vec![
            ("lru".into(), Box::new(Lru::new())),
            ("rand-marking".into(), Box::new(RandomizedMarking::new(3))),
            (
                "convex-caching".into(),
                Box::new(ConvexCaching::new(costs.clone())),
            ),
        ];
        for (name, mut policy) in policies {
            let (online, trace) = run_lower_bound(&mut policy, n, t_len);
            let offline = occ_offline::batch_offline(&trace, (n - 1) as usize);
            let online_cost = costs.total_cost(&online.miss_vector());
            let offline_cost = costs.total_cost(&offline.misses);
            if online.total_misses() != t_len {
                println!("!! {name} escaped the adaptive adversary?!");
                all_ok = false;
            }
            t.row(vec![
                n.to_string(),
                name,
                t_len.to_string(),
                online.total_misses().to_string(),
                fnum(online_cost / offline_cost),
            ]);
        }
    }
    r.table("e11b_adaptive", &t);
    r.note(
        "the adaptive adversary requests exactly the missing page, so the \
         online miss count is T for every policy, randomized or not — the \
         paper's lower bound needs only determinism of the *cache state*, \
         which any algorithm exposes.",
    );

    finish("exp_randomized", all_ok);
}
