//! `bench_baseline` — the tracked throughput baseline.
//!
//! Runs a fixed policy × cache-size × workload matrix and writes
//! `BENCH_throughput.json` at the repository root with requests/second
//! and per-request latency percentiles (p50/p90/p99/p999, nanoseconds)
//! for each cell. The file is committed alongside performance work so
//! regressions show up in review as a diff, not as an anecdote. When a
//! committed baseline exists, the run also prints the throughput delta
//! per cell and flags regressions beyond 20% — this is the guard that
//! keeps the `NoopRecorder` path genuinely free.
//!
//! Matrix (fixed on purpose — comparable across commits):
//!
//! * policies: `lru`, `lru-reference`, `fifo`, `marking`, `greedy-dual`,
//!   `alg-discrete` (the paper's ConvexCaching on its convex fast path);
//! * cache sizes: `k = 1024` and `k = 4096`, universe `4k` pages;
//! * workloads: single-user Zipf(0.9) and a 4-tenant Zipf(0.8) mix.
//!
//! Throughput is the best of three full-trace replays (batch
//! [`Simulator`], `NoopRecorder` path); latency percentiles come from a
//! separate [`SteppingEngine`] pass with a timed
//! [`MetricsRecorder`] attached (the two passes are separate so
//! percentile instrumentation cannot distort the throughput number).
//! Total runtime is well under two minutes.

use occ_baselines::{Fifo, GreedyDual, Lru, LruReference, Marking};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_probe::{Json, MetricsRecorder};
use occ_sim::{ReplacementPolicy, Request, Simulator, SteppingEngine, Trace};
use occ_workloads::{generate_multi_tenant, zipf_trace, AccessPattern, TenantSpec};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

const TRACE_LEN: usize = 200_000;
const CACHE_SIZES: [usize; 2] = [1024, 4096];
const THROUGHPUT_REPS: usize = 3;

struct Workload {
    name: &'static str,
    num_users: u32,
    trace: Trace,
}

fn workloads(k: usize) -> Vec<Workload> {
    let pages = 4 * k as u32;
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| TenantSpec::new(k as u32, 1.0 + i as f64, AccessPattern::Zipf { s: 0.8 }))
        .collect();
    vec![
        Workload {
            name: "zipf-0.9",
            num_users: 1,
            trace: zipf_trace(pages, TRACE_LEN, 0.9, 11),
        },
        Workload {
            name: "tenants-4x-zipf-0.8",
            num_users: 4,
            trace: generate_multi_tenant(&tenants, TRACE_LEN, 5),
        },
    ]
}

fn policy_suite(num_users: u32) -> Vec<(&'static str, Box<dyn ReplacementPolicy>)> {
    let costs = CostProfile::uniform(num_users, Monomial::power(2.0));
    vec![
        ("lru", Box::new(Lru::new()) as Box<dyn ReplacementPolicy>),
        ("lru-reference", Box::new(LruReference::new())),
        ("fifo", Box::new(Fifo::new())),
        ("marking", Box::new(Marking::new())),
        ("greedy-dual", Box::new(GreedyDual::unweighted(num_users))),
        ("alg-discrete", Box::new(ConvexCaching::new(costs))),
    ]
}

struct Measurement {
    requests_per_sec: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    misses: u64,
}

fn measure(policy: &mut Box<dyn ReplacementPolicy>, wl: &Workload, k: usize) -> Measurement {
    // Throughput: best of N full replays (batch engine, NoopRecorder —
    // the uninstrumented path this file guards).
    let mut best = f64::INFINITY;
    let mut misses = 0;
    for _ in 0..THROUGHPUT_REPS {
        policy.reset();
        let start = Instant::now();
        let result = Simulator::new(k).run(policy, &wl.trace);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        misses = result.total_misses();
    }
    let requests_per_sec = wl.trace.len() as f64 / best;

    // Latency percentiles: a stepping pass with a timed recorder, so
    // the engine samples a clock around each request and feeds the
    // shared log-linear histogram. Timer overhead (~tens of ns) is
    // included in every sample equally.
    policy.reset();
    let requests: Vec<Request> = wl.trace.iter().map(|(_, r)| r).collect();
    let shim = PolicyShim(policy);
    let mut rec = MetricsRecorder::new();
    let mut engine =
        SteppingEngine::new(k, wl.trace.universe().clone(), shim).with_recorder(&mut rec);
    for &req in &requests {
        engine.step(req);
    }
    drop(engine);
    let lat = rec.latency_ns();
    Measurement {
        requests_per_sec,
        p50_ns: lat.p50(),
        p90_ns: lat.p90(),
        p99_ns: lat.p99(),
        p999_ns: lat.p999(),
        misses,
    }
}

/// The committed baseline's throughput per (policy, workload, k) cell,
/// if a parseable `BENCH_throughput.json` exists at `path`.
fn load_committed(path: &Path) -> Vec<(String, String, u64, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        eprintln!("warning: committed baseline does not parse; skipping delta report");
        return Vec::new();
    };
    let mut cells = Vec::new();
    if let Some(entries) = doc.get("entries").and_then(Json::as_array) {
        for e in entries {
            let get_str = |k: &str| e.get(k).and_then(Json::as_str).map(str::to_string);
            if let (Some(policy), Some(workload), Some(k), Some(rps)) = (
                get_str("policy"),
                get_str("workload"),
                e.get("k").and_then(Json::as_u64),
                e.get("requests_per_sec").and_then(Json::as_f64),
            ) {
                cells.push((policy, workload, k, rps));
            }
        }
    }
    cells
}

/// Adapter so the stepping engine can drive a `&mut Box<dyn Policy>`
/// without taking ownership.
struct PolicyShim<'a>(&'a mut Box<dyn ReplacementPolicy>);

impl ReplacementPolicy for PolicyShim<'_> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn on_hit(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_hit(ctx, page);
    }
    fn on_insert(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_insert(ctx, page);
    }
    fn choose_victim(
        &mut self,
        ctx: &occ_sim::EngineCtx,
        incoming: occ_sim::PageId,
    ) -> occ_sim::PageId {
        self.0.choose_victim(ctx, incoming)
    }
    fn on_evicted(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_evicted(ctx, page);
    }
    fn on_external_removal(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_external_removal(ctx, page);
    }
    fn reset(&mut self) {
        self.0.reset();
    }
}

fn main() {
    // crates/occ-bench/../../ = repository root, regardless of cwd.
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    let committed = load_committed(&out);
    let mut regressions = 0u32;

    let mut rows = Vec::new();
    for &k in &CACHE_SIZES {
        for wl in workloads(k) {
            for (label, mut policy) in policy_suite(wl.num_users) {
                let m = measure(&mut policy, &wl, k);
                let delta = committed
                    .iter()
                    .find(|(p, w, ck, _)| p == label && w == wl.name && *ck == k as u64)
                    .map(|&(_, _, _, old_rps)| (m.requests_per_sec - old_rps) / old_rps * 100.0);
                let delta_text = match delta {
                    Some(d) if d <= -20.0 => {
                        regressions += 1;
                        format!("   Δ {d:+.1}%  <-- REGRESSION")
                    }
                    Some(d) => format!("   Δ {d:+.1}%"),
                    None => String::new(),
                };
                println!(
                    "{label:>16}  k={k:<5} {:<20} {:>12.0} req/s   p50 {:>6} ns   p99 {:>7} ns   misses {}{delta_text}",
                    wl.name, m.requests_per_sec, m.p50_ns, m.p99_ns, m.misses
                );
                let mut row = String::new();
                write!(
                    row,
                    "    {{\"policy\": \"{label}\", \"workload\": \"{}\", \"k\": {k}, \
                     \"universe_pages\": {}, \"trace_len\": {}, \
                     \"requests_per_sec\": {:.0}, \"p50_ns\": {}, \"p90_ns\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {}, \"misses\": {}}}",
                    wl.name,
                    4 * k,
                    wl.trace.len(),
                    m.requests_per_sec,
                    m.p50_ns,
                    m.p90_ns,
                    m.p99_ns,
                    m.p999_ns,
                    m.misses
                )
                .unwrap();
                rows.push(row);
            }
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"bench_baseline\",\n  \"schema\": 2,\n  \"entries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    println!("\nwrote {}", out.display());
    if regressions > 0 {
        eprintln!(
            "warning: {regressions} cell(s) regressed more than 20% vs the committed baseline"
        );
    }
}
