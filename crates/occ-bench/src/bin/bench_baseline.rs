//! `bench_baseline` — the tracked throughput baseline.
//!
//! Runs a fixed policy × cache-size × workload matrix and writes
//! `BENCH_throughput.json` at the repository root with requests/second
//! and per-request latency percentiles (p50/p90/p99/p999, nanoseconds)
//! for each cell. The file is committed alongside performance work so
//! regressions show up in review as a diff, not as an anecdote. When a
//! committed baseline exists, the run also prints the throughput delta
//! per cell and flags regressions beyond 20% — this is the guard that
//! keeps the `NoopRecorder` path genuinely free.
//!
//! Matrix (fixed on purpose — comparable across commits):
//!
//! * policies: `lru`, `lru-reference`, `fifo`, `marking`, `greedy-dual`,
//!   `alg-discrete` (the paper's ConvexCaching on its convex fast path);
//! * cache sizes: `k = 1024` and `k = 4096`, universe `4k` pages;
//! * workloads: single-user Zipf(0.9) and a 4-tenant Zipf(0.8) mix.
//!
//! Throughput is the best of three full-trace replays (batch
//! [`Simulator`], `NoopRecorder` path); latency percentiles come from a
//! separate [`SteppingEngine`] pass with a timed
//! [`MetricsRecorder`] attached (the two passes are separate so
//! percentile instrumentation cannot distort the throughput number).
//! Total runtime is well under two minutes.
//!
//! Schema 3 adds a `mode` per entry (committed entries without one are
//! `scalar`):
//!
//! * `scalar` — the classic one-request-at-a-time replay above;
//! * `batched` — [`Simulator::run_batched`] over the same trace, miss
//!   counts asserted byte-identical to the scalar cell;
//! * `fleet` — `shards` independent caches on worker threads fed by
//!   streaming sources (`requests_per_sec` is the fleet aggregate; the
//!   1-shard fleet's misses are asserted equal to the scalar cell,
//!   since its streamed workload is byte-identical to the trace).
//!
//! `--smoke` runs a reduced matrix (lru/fifo × zipf-0.9 × k=4096,
//! scalar vs batched), asserts the miss counts match, prints a
//! `SMOKE OK` marker, and exits without touching the committed file —
//! cheap enough for CI on shared runners, and never flaky because the
//! only hard check is exact-count equality, not timing.

use occ_baselines::{Fifo, GreedyDual, Lru, LruReference, Marking};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_fleet::{run_fleet, FleetConfig};
use occ_probe::{Json, MetricsRecorder};
use occ_sim::{ReplacementPolicy, Request, Simulator, SteppingEngine, Trace, DEFAULT_BATCH_SIZE};
use occ_workloads::{generate_multi_tenant, zipf_trace, AccessPattern, PatternSource, TenantSpec};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

const TRACE_LEN: usize = 200_000;
const CACHE_SIZES: [usize; 2] = [1024, 4096];
const THROUGHPUT_REPS: usize = 3;
/// Policies that get a batched-replay entry next to their scalar one.
const BATCHED_POLICIES: [&str; 2] = ["lru", "fifo"];
/// Shard counts for the fleet entries.
const FLEET_SHARDS: [usize; 2] = [1, 4];

struct Workload {
    name: &'static str,
    num_users: u32,
    trace: Trace,
}

fn workloads(k: usize) -> Vec<Workload> {
    let pages = 4 * k as u32;
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| TenantSpec::new(k as u32, 1.0 + i as f64, AccessPattern::Zipf { s: 0.8 }))
        .collect();
    vec![
        Workload {
            name: "zipf-0.9",
            num_users: 1,
            trace: zipf_trace(pages, TRACE_LEN, 0.9, 11),
        },
        Workload {
            name: "tenants-4x-zipf-0.8",
            num_users: 4,
            trace: generate_multi_tenant(&tenants, TRACE_LEN, 5),
        },
    ]
}

fn policy_suite(num_users: u32) -> Vec<(&'static str, Box<dyn ReplacementPolicy>)> {
    let costs = CostProfile::uniform(num_users, Monomial::power(2.0));
    vec![
        ("lru", Box::new(Lru::new()) as Box<dyn ReplacementPolicy>),
        ("lru-reference", Box::new(LruReference::new())),
        ("fifo", Box::new(Fifo::new())),
        ("marking", Box::new(Marking::new())),
        ("greedy-dual", Box::new(GreedyDual::unweighted(num_users))),
        ("alg-discrete", Box::new(ConvexCaching::new(costs))),
    ]
}

struct Measurement {
    requests_per_sec: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    misses: u64,
}

fn measure(policy: &mut Box<dyn ReplacementPolicy>, wl: &Workload, k: usize) -> Measurement {
    // Throughput: best of N full replays (batch engine, NoopRecorder —
    // the uninstrumented path this file guards).
    let mut best = f64::INFINITY;
    let mut misses = 0;
    for _ in 0..THROUGHPUT_REPS {
        policy.reset();
        let start = Instant::now();
        let result = Simulator::new(k).run(policy, &wl.trace);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        misses = result.total_misses();
    }
    let requests_per_sec = wl.trace.len() as f64 / best;

    // Latency percentiles: a stepping pass with a timed recorder, so
    // the engine samples a clock around each request and feeds the
    // shared log-linear histogram. Timer overhead (~tens of ns) is
    // included in every sample equally.
    policy.reset();
    let requests: Vec<Request> = wl.trace.iter().map(|(_, r)| r).collect();
    let shim = PolicyShim(policy);
    let mut rec = MetricsRecorder::new();
    let mut engine =
        SteppingEngine::new(k, wl.trace.universe().clone(), shim).with_recorder(&mut rec);
    for &req in &requests {
        engine.step(req);
    }
    drop(engine);
    let lat = rec.latency_ns();
    Measurement {
        requests_per_sec,
        p50_ns: lat.p50(),
        p90_ns: lat.p90(),
        p99_ns: lat.p99(),
        p999_ns: lat.p999(),
        misses,
    }
}

/// One committed baseline cell: (policy, workload, k, mode, req/s).
type CommittedCell = (String, String, u64, String, f64);

/// The committed baseline's throughput per (policy, workload, k, mode)
/// cell, if a parseable `BENCH_throughput.json` exists at `path`.
/// Entries from schema ≤ 2 carry no `mode` and default to `scalar`.
fn load_committed(path: &Path) -> Vec<CommittedCell> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        eprintln!("warning: committed baseline does not parse; skipping delta report");
        return Vec::new();
    };
    let mut cells = Vec::new();
    if let Some(entries) = doc.get("entries").and_then(Json::as_array) {
        for e in entries {
            let get_str = |k: &str| e.get(k).and_then(Json::as_str).map(str::to_string);
            if let (Some(policy), Some(workload), Some(k), Some(rps)) = (
                get_str("policy"),
                get_str("workload"),
                e.get("k").and_then(Json::as_u64),
                e.get("requests_per_sec").and_then(Json::as_f64),
            ) {
                let mode = get_str("mode").unwrap_or_else(|| "scalar".into());
                cells.push((policy, workload, k, mode, rps));
            }
        }
    }
    cells
}

/// Delta line vs the committed baseline for one cell, counting ≤ −20%
/// moves as regressions.
fn delta_text(
    committed: &[CommittedCell],
    policy: &str,
    workload: &str,
    k: usize,
    mode: &str,
    rps: f64,
    regressions: &mut u32,
) -> String {
    let old = committed
        .iter()
        .find(|(p, w, ck, m, _)| p == policy && w == workload && *ck == k as u64 && m == mode)
        .map(|&(_, _, _, _, old_rps)| old_rps);
    match old.map(|o| (rps - o) / o * 100.0) {
        Some(d) if d <= -20.0 => {
            *regressions += 1;
            format!("   Δ {d:+.1}%  <-- REGRESSION")
        }
        Some(d) => format!("   Δ {d:+.1}%"),
        None => String::new(),
    }
}

/// Best-of-N batched replay of the same trace: requests/sec and misses.
fn measure_batched(policy: &mut Box<dyn ReplacementPolicy>, wl: &Workload, k: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut misses = 0;
    for _ in 0..THROUGHPUT_REPS {
        policy.reset();
        let start = Instant::now();
        let result = Simulator::new(k).run_batched(policy, &wl.trace, DEFAULT_BATCH_SIZE);
        best = best.min(start.elapsed().as_secs_f64());
        misses = result.total_misses();
    }
    (wl.trace.len() as f64 / best, misses)
}

/// One fleet run: `shards` independent LRU caches of size `k` over
/// `4k`-page universes, each fed by a streaming alias-method Zipf(0.9)
/// source (O(1) per draw — generation sits inside the timed loop, so
/// the CDF sampler's binary search would dominate the measurement).
/// Returns (aggregate req/s, total misses).
fn measure_fleet(shards: usize, k: usize) -> (f64, u64) {
    let pages = 4 * k as u32;
    let mut cfg = FleetConfig::new(k);
    cfg.record = false;
    let sources: Vec<_> = (0..shards)
        .map(|i| {
            let seed = 11 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            PatternSource::new(
                AccessPattern::ZipfAliased { s: 0.9 },
                pages,
                TRACE_LEN as u64,
                seed,
            )
        })
        .collect();
    let report = run_fleet(sources, &cfg, |_| Box::new(Lru::new()));
    (report.aggregate_requests_per_sec(), report.total_misses())
}

/// Untimed cross-check: a 1-shard fleet fed by the CDF-sampler stream
/// with the scalar workload's seed replays the materialized zipf-0.9
/// trace byte-identically, so its miss count must equal the scalar LRU
/// cell's.
fn assert_fleet_matches_scalar(k: usize, scalar_misses: u64) {
    let pages = 4 * k as u32;
    let cfg = FleetConfig::new(k);
    let source = PatternSource::new(AccessPattern::Zipf { s: 0.9 }, pages, TRACE_LEN as u64, 11);
    let report = run_fleet(vec![source], &cfg, |_| Box::new(Lru::new()));
    assert_eq!(
        report.total_misses(),
        scalar_misses,
        "streamed fleet shard must replay the scalar zipf-0.9 workload byte-identically"
    );
}

/// Adapter so the stepping engine can drive a `&mut Box<dyn Policy>`
/// without taking ownership.
struct PolicyShim<'a>(&'a mut Box<dyn ReplacementPolicy>);

impl ReplacementPolicy for PolicyShim<'_> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn on_hit(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_hit(ctx, page);
    }
    fn on_insert(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_insert(ctx, page);
    }
    fn choose_victim(
        &mut self,
        ctx: &occ_sim::EngineCtx,
        incoming: occ_sim::PageId,
    ) -> occ_sim::PageId {
        self.0.choose_victim(ctx, incoming)
    }
    fn on_evicted(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_evicted(ctx, page);
    }
    fn on_external_removal(&mut self, ctx: &occ_sim::EngineCtx, page: occ_sim::PageId) {
        self.0.on_external_removal(ctx, page);
    }
    fn reset(&mut self) {
        self.0.reset();
    }
}

/// `--smoke`: lru/fifo on zipf-0.9 at k=4096, scalar vs batched, one
/// rep each. Asserts exact miss equality (the non-flaky invariant) and
/// prints whether batched kept up — CI greps for the `SMOKE OK` line.
fn run_smoke() {
    let k = 4096;
    let wls = workloads(k);
    let wl = &wls[0];
    assert_eq!(wl.name, "zipf-0.9");
    for label in BATCHED_POLICIES {
        let mut policy: Box<dyn ReplacementPolicy> = match label {
            "lru" => Box::new(Lru::new()),
            _ => Box::new(Fifo::new()),
        };
        let start = Instant::now();
        let scalar = Simulator::new(k).run(&mut policy, &wl.trace);
        let scalar_secs = start.elapsed().as_secs_f64();
        policy.reset();
        let start = Instant::now();
        let batched = Simulator::new(k).run_batched(&mut policy, &wl.trace, DEFAULT_BATCH_SIZE);
        let batched_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            batched.total_misses(),
            scalar.total_misses(),
            "{label}: batched replay diverged from scalar"
        );
        assert_eq!(batched.stats, scalar.stats, "{label}: stats diverged");
        let speedup = scalar_secs / batched_secs;
        println!(
            "SMOKE {label}: scalar {:.1}ms, batched {:.1}ms ({speedup:.2}x), \
             misses {} (identical)",
            scalar_secs * 1e3,
            batched_secs * 1e3,
            batched.total_misses()
        );
    }
    println!("SMOKE OK: batched replay byte-identical to scalar on lru and fifo");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }

    // crates/occ-bench/../../ = repository root, regardless of cwd.
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    let committed = load_committed(&out);
    let mut regressions = 0u32;

    let mut rows = Vec::new();
    // Scalar misses per (policy, workload, k), for the batched/fleet
    // equivalence asserts below.
    let mut scalar_misses: Vec<(String, String, usize, u64)> = Vec::new();
    for &k in &CACHE_SIZES {
        for wl in workloads(k) {
            for (label, mut policy) in policy_suite(wl.num_users) {
                let m = measure(&mut policy, &wl, k);
                scalar_misses.push((label.to_string(), wl.name.to_string(), k, m.misses));
                let delta = delta_text(
                    &committed,
                    label,
                    wl.name,
                    k,
                    "scalar",
                    m.requests_per_sec,
                    &mut regressions,
                );
                println!(
                    "{label:>16}  k={k:<5} {:<20} {:>12.0} req/s   p50 {:>6} ns   p99 {:>7} ns   misses {}{delta}",
                    wl.name, m.requests_per_sec, m.p50_ns, m.p99_ns, m.misses
                );
                let mut row = String::new();
                write!(
                    row,
                    "    {{\"policy\": \"{label}\", \"workload\": \"{}\", \"k\": {k}, \
                     \"universe_pages\": {}, \"trace_len\": {}, \"mode\": \"scalar\", \
                     \"requests_per_sec\": {:.0}, \"p50_ns\": {}, \"p90_ns\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {}, \"misses\": {}}}",
                    wl.name,
                    4 * k,
                    wl.trace.len(),
                    m.requests_per_sec,
                    m.p50_ns,
                    m.p90_ns,
                    m.p99_ns,
                    m.p999_ns,
                    m.misses
                )
                .unwrap();
                rows.push(row);
            }

            // Batched twins of the scalar cells above.
            for label in BATCHED_POLICIES {
                let mut policy: Box<dyn ReplacementPolicy> = match label {
                    "lru" => Box::new(Lru::new()),
                    _ => Box::new(Fifo::new()),
                };
                let (rps, misses) = measure_batched(&mut policy, &wl, k);
                let &(_, _, _, scalar) = scalar_misses
                    .iter()
                    .find(|(p, w, ck, _)| p == label && w == wl.name && *ck == k)
                    .expect("scalar cell measured above");
                assert_eq!(
                    misses, scalar,
                    "{label}: batched misses diverged from scalar"
                );
                let delta = delta_text(
                    &committed,
                    label,
                    wl.name,
                    k,
                    "batched",
                    rps,
                    &mut regressions,
                );
                println!(
                    "{:>16}  k={k:<5} {:<20} {rps:>12.0} req/s   (batch {DEFAULT_BATCH_SIZE})                    misses {misses}{delta}",
                    format!("{label}/batched"),
                    wl.name
                );
                let mut row = String::new();
                write!(
                    row,
                    "    {{\"policy\": \"{label}\", \"workload\": \"{}\", \"k\": {k}, \
                     \"universe_pages\": {}, \"trace_len\": {}, \"mode\": \"batched\", \
                     \"batch_size\": {DEFAULT_BATCH_SIZE}, \
                     \"requests_per_sec\": {rps:.0}, \"misses\": {misses}}}",
                    wl.name,
                    4 * k,
                    wl.trace.len(),
                )
                .unwrap();
                rows.push(row);
            }
        }

        // Fleet entries: streaming zipf-0.9 shards under LRU.
        let &(_, _, _, scalar) = scalar_misses
            .iter()
            .find(|(p, w, ck, _)| p == "lru" && w == "zipf-0.9" && *ck == k)
            .expect("scalar cell measured above");
        assert_fleet_matches_scalar(k, scalar);
        for &shards in &FLEET_SHARDS {
            let (rps, misses) = measure_fleet(shards, k);
            let delta = delta_text(
                &committed,
                &format!("lru/fleet-{shards}"),
                "zipf-0.9",
                k,
                "fleet",
                rps,
                &mut regressions,
            );
            println!(
                "{:>16}  k={k:<5} {:<20} {rps:>12.0} req/s   ({shards} shard(s), aggregate)       misses {misses}{delta}",
                format!("lru/fleet-{shards}"),
                "zipf-0.9"
            );
            let mut row = String::new();
            write!(
                row,
                "    {{\"policy\": \"lru/fleet-{shards}\", \"workload\": \"zipf-0.9\", \"k\": {k}, \
                 \"universe_pages\": {}, \"trace_len\": {TRACE_LEN}, \"mode\": \"fleet\", \
                 \"shards\": {shards}, \"batch_size\": {DEFAULT_BATCH_SIZE}, \
                 \"requests_per_sec\": {rps:.0}, \"misses\": {misses}}}",
                4 * k,
            )
            .unwrap();
            rows.push(row);
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"bench_baseline\",\n  \"schema\": 3,\n  \"entries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    println!("\nwrote {}", out.display());
    if regressions > 0 {
        eprintln!(
            "warning: {regressions} cell(s) regressed more than 20% vs the committed baseline"
        );
    }
}
