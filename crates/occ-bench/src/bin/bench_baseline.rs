//! `bench_baseline` — the tracked throughput baseline.
//!
//! Runs a fixed policy × cache-size × workload matrix and writes
//! `BENCH_throughput.json` at the repository root with requests/second
//! and per-request latency percentiles (p50/p90/p99/p999, nanoseconds)
//! for each cell. The file is committed alongside performance work so
//! regressions show up in review as a diff, not as an anecdote. When a
//! committed baseline exists, the run also prints the throughput delta
//! per cell and flags regressions beyond 20% — this is the guard that
//! keeps the `NoopRecorder` path genuinely free.
//!
//! Matrix (fixed on purpose — comparable across commits):
//!
//! * policies: `lru`, `lru-reference`, `fifo`, `marking`, `greedy-dual`,
//!   `alg-discrete` (the paper's ConvexCaching on its convex fast path);
//! * cache sizes: `k = 1024` and `k = 4096`, universe `4k` pages;
//! * workloads: single-user Zipf(0.9) and a 4-tenant Zipf(0.8) mix.
//!
//! Throughput is the best of five full-trace replays (`NoopRecorder`
//! path); cells whose ratio matters — scalar vs batched, and the fleet
//! shard counts — run their reps *interleaved in one measurement
//! window*, so host-speed drift hits both sides of every ratio
//! equally. Latency percentiles come from a separate [`SteppingEngine`]
//! pass with a timed [`MetricsRecorder`] attached (the two passes are
//! separate so percentile instrumentation cannot distort the
//! throughput number). Total runtime is well under two minutes.
//!
//! Schema 3 adds a `mode` per entry (committed entries without one are
//! `scalar`):
//!
//! * `scalar` — the classic one-request-at-a-time replay above, driven
//!   through `Box<dyn ReplacementPolicy>` like the CLI does;
//! * `batched` — [`Simulator::run_batched`] over the same trace with the
//!   policy's **concrete type** (the batch kernel is a monomorphized
//!   tight loop — feeding it a trait object would measure the vtable,
//!   not the kernel), miss counts asserted byte-identical to the scalar
//!   cell; percentiles come from a second, timed stepping pass so the
//!   untimed throughput number stays clean (the untimed/timed pair);
//! * `fleet` — `shards` independent caches on worker threads, each
//!   replaying a pre-materialized Zipf(0.9) trace through the
//!   monomorphized [`run_fleet_typed`] path with recording off
//!   (`requests_per_sec` is the per-shard best-of-N composite — each
//!   shard's fastest replay window across the reps, summed — the same
//!   statistic for every shard count, so 1-shard and 4-shard cells
//!   compare fairly). Shard 0 replays the *same* trace as the scalar
//!   zipf-0.9 cell, and every shard is asserted byte-identical to its
//!   own sequential replay;
//! * `concurrent` — M worker threads contending for ONE shared k-sized
//!   cache (the `occ concurrent` engine). Before any timed rep, one
//!   recorded run's commit schedule is replayed single-threaded and
//!   asserted identical (per-user vectors, fault counters, quarantine
//!   set); the timed reps then run unrecorded and unverified.
//! * `ingest` — pure trace-ingestion throughput (decode + validation +
//!   running CRC, no cache attached) over the three binary access
//!   strategies: zero-copy `mmap` of occbin01, `buffered` chunked reads
//!   of the same file, and `packed` streaming delta/varint decode of
//!   its occbin02 twin. Before any timed rep, the same fixture is
//!   replayed *through the engine* via all three strategies and the
//!   stats asserted byte-identical to an in-memory replay of the
//!   generating trace; the timed reps then run interleaved (one rep of
//!   every strategy per round) so the mmap/buffered ratio is immune to
//!   host-speed drift. `--ingest` runs just this block on the
//!   full-sized (10M-request) fixture.
//!
//! `--smoke` runs a reduced matrix (lru/fifo/greedy-dual/alg-discrete ×
//! zipf-0.9 × both cache sizes, scalar vs batched, plus a 1-shard
//! fleet per cache size), asserts the miss counts match exactly, and —
//! when a committed baseline has matching cells — exits nonzero if any
//! smoke cell's *drift-normalized* throughput lands more than 10%
//! below it (see [`SMOKE_DELTA_GATE`]). CI greps for the `SMOKE OK`
//! marker. The exactness checks can never be flaky; the normalized
//! delta gate cancels host-speed waves instead of flapping with them.

use occ_baselines::{Fifo, GreedyDual, Lru, LruReference, Marking};
use occ_core::{ConvexCaching, CostProfile, Monomial};
use occ_fleet::{run_fleet_typed, run_shared_fleet, FleetConfig, SharedConfig};
use occ_probe::{Json, MetricsRecorder};
use occ_sim::{
    write_trace_binary, write_trace_binary_v2, Binary2TraceReader, BinarySource, BinaryTraceReader,
    MmapTraceSource, ReplacementPolicy, Request, RequestSource, SimStats, Simulator,
    SteppingEngine, Trace, TraceSource, DEFAULT_BATCH_SIZE,
};
use occ_workloads::{generate_multi_tenant, zipf_trace, AccessPattern, TenantSpec};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

const TRACE_LEN: usize = 200_000;
const CACHE_SIZES: [usize; 2] = [1024, 4096];
const THROUGHPUT_REPS: usize = 5;
/// Policies that get a batched-replay entry next to their scalar one.
const BATCHED_POLICIES: [&str; 4] = ["lru", "fifo", "greedy-dual", "alg-discrete"];
/// Shard counts for the fleet entries.
const FLEET_SHARDS: [usize; 2] = [1, 4];
/// Shared-cache concurrent cell geometry: M worker threads contending
/// for ONE k-sized cache striped over S page-table segments.
const CONCURRENT_THREADS: usize = 4;
const CONCURRENT_TABLE_SHARDS: usize = 8;
/// Ingest cells: Zipf(0.9) fixture sizes for the full grid / `--ingest`
/// run and for `--smoke`, the universe they range over (same geometry
/// as the k=4096 scalar cells), and the three access strategies under
/// comparison.
const INGEST_TRACE_LEN: usize = 10_000_000;
const SMOKE_INGEST_TRACE_LEN: usize = 1_000_000;
const INGEST_K: usize = 4096;
const INGEST_PATHS: [&str; 3] = ["mmap", "buffered", "packed"];
/// `--smoke` fails the run when a cell's *drift-normalized* throughput
/// lands this far below the committed baseline. Batched cells gate on
/// their batched/scalar ratio vs the committed ratio (both sides of the
/// ratio share one measurement window, so host-speed waves cancel);
/// the fleet cell gates on its throughput corrected by the median
/// scalar machine factor of the same smoke block. Raw absolute deltas
/// would flap on the shared CI hosts, whose throughput drifts ±30% in
/// minutes-long waves.
const SMOKE_DELTA_GATE: f64 = -10.0;

struct Workload {
    name: &'static str,
    num_users: u32,
    trace: Trace,
}

/// Spin the core to steady clock before any timed cell: frequency
/// governors ramp over tens of milliseconds, and the first cells of a
/// cold grid otherwise measure the ramp, not the engine. ~300 ms of
/// real replay work (the same kind the grid times) is plenty.
fn warm_up() {
    let trace = zipf_trace(4096, TRACE_LEN / 4, 0.9, 7);
    let deadline = Instant::now() + std::time::Duration::from_millis(300);
    while Instant::now() < deadline {
        let r = Simulator::new(1024).run(&mut Lru::new(), &trace);
        std::hint::black_box(r.total_misses());
    }
}

fn workloads(k: usize) -> Vec<Workload> {
    let pages = 4 * k as u32;
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| TenantSpec::new(k as u32, 1.0 + i as f64, AccessPattern::Zipf { s: 0.8 }))
        .collect();
    vec![
        Workload {
            name: "zipf-0.9",
            num_users: 1,
            trace: zipf_trace(pages, TRACE_LEN, 0.9, 11),
        },
        Workload {
            name: "tenants-4x-zipf-0.8",
            num_users: 4,
            trace: generate_multi_tenant(&tenants, TRACE_LEN, 5),
        },
    ]
}

fn policy_suite(num_users: u32) -> Vec<(&'static str, Box<dyn ReplacementPolicy>)> {
    let costs = CostProfile::uniform(num_users, Monomial::power(2.0));
    vec![
        ("lru", Box::new(Lru::new()) as Box<dyn ReplacementPolicy>),
        ("lru-reference", Box::new(LruReference::new())),
        ("fifo", Box::new(Fifo::new())),
        ("marking", Box::new(Marking::new())),
        ("greedy-dual", Box::new(GreedyDual::unweighted(num_users))),
        ("alg-discrete", Box::new(ConvexCaching::new(costs))),
    ]
}

struct Measurement {
    requests_per_sec: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    misses: u64,
}

fn measure(policy: &mut Box<dyn ReplacementPolicy>, wl: &Workload, k: usize) -> Measurement {
    // Throughput: best of N full replays (batch engine, NoopRecorder —
    // the uninstrumented path this file guards).
    let mut best = f64::INFINITY;
    let mut misses = 0;
    for _ in 0..THROUGHPUT_REPS {
        policy.reset();
        let start = Instant::now();
        let result = Simulator::new(k).run(policy, &wl.trace);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        misses = result.total_misses();
    }
    let requests_per_sec = wl.trace.len() as f64 / best;

    // Latency percentiles: a stepping pass with a timed recorder, so
    // the engine samples a clock around each request and feeds the
    // shared log-linear histogram. Timer overhead (~tens of ns) is
    // included in every sample equally.
    policy.reset();
    let requests: Vec<Request> = wl.trace.iter().map(|(_, r)| r).collect();
    let mut rec = MetricsRecorder::new();
    let mut engine =
        SteppingEngine::new(k, wl.trace.universe().clone(), &mut *policy).with_recorder(&mut rec);
    for &req in &requests {
        engine.step(req);
    }
    drop(engine);
    let lat = rec.latency_ns();
    Measurement {
        requests_per_sec,
        p50_ns: lat.p50(),
        p90_ns: lat.p90(),
        p99_ns: lat.p99(),
        p999_ns: lat.p999(),
        misses,
    }
}

/// One committed baseline cell: (policy, workload, k, mode, req/s).
type CommittedCell = (String, String, u64, String, f64);

/// The committed baseline's throughput per (policy, workload, k, mode)
/// cell, if a parseable `BENCH_throughput.json` exists at `path`.
/// Entries from schema ≤ 2 carry no `mode` and default to `scalar`.
fn load_committed(path: &Path) -> Vec<CommittedCell> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    // Newer baselines are sealed with a `#crc32:` trailer; older
    // trailer-less ones are still accepted, but a checksum mismatch
    // means a torn write and the file cannot be trusted.
    let body = match occ_probe::verify_trailer(&text) {
        Ok((body, _had_trailer)) => body,
        Err(e) => {
            eprintln!("warning: committed baseline corrupt ({e}); skipping delta report");
            return Vec::new();
        }
    };
    let Ok(doc) = Json::parse(body) else {
        eprintln!("warning: committed baseline does not parse; skipping delta report");
        return Vec::new();
    };
    let mut cells = Vec::new();
    if let Some(entries) = doc.get("entries").and_then(Json::as_array) {
        for e in entries {
            let get_str = |k: &str| e.get(k).and_then(Json::as_str).map(str::to_string);
            if let (Some(policy), Some(workload), Some(k), Some(rps)) = (
                get_str("policy"),
                get_str("workload"),
                e.get("k").and_then(Json::as_u64),
                e.get("requests_per_sec").and_then(Json::as_f64),
            ) {
                let mode = get_str("mode").unwrap_or_else(|| "scalar".into());
                cells.push((policy, workload, k, mode, rps));
            }
        }
    }
    cells
}

/// The committed baseline's req/s for one cell, if present.
fn committed_rps(
    committed: &[CommittedCell],
    policy: &str,
    workload: &str,
    k: usize,
    mode: &str,
) -> Option<f64> {
    committed
        .iter()
        .find(|(p, w, ck, m, _)| p == policy && w == workload && *ck == k as u64 && m == mode)
        .map(|&(_, _, _, _, rps)| rps)
}

/// Throughput delta vs the committed baseline for one cell, if present.
fn delta_vs_committed(
    committed: &[CommittedCell],
    policy: &str,
    workload: &str,
    k: usize,
    mode: &str,
    rps: f64,
) -> Option<f64> {
    committed
        .iter()
        .find(|(p, w, ck, m, _)| p == policy && w == workload && *ck == k as u64 && m == mode)
        .map(|&(_, _, _, _, old_rps)| (rps - old_rps) / old_rps * 100.0)
}

/// Delta line vs the committed baseline for one cell, counting ≤ −20%
/// moves as regressions.
fn delta_text(
    committed: &[CommittedCell],
    policy: &str,
    workload: &str,
    k: usize,
    mode: &str,
    rps: f64,
    regressions: &mut u32,
) -> String {
    match delta_vs_committed(committed, policy, workload, k, mode, rps) {
        Some(d) if d <= -20.0 => {
            *regressions += 1;
            format!("   Δ {d:+.1}%  <-- REGRESSION")
        }
        Some(d) => format!("   Δ {d:+.1}%"),
        None => String::new(),
    }
}

/// Paired scalar/batched cell: the scalar reps (`Box<dyn>`, like the
/// CLI) and the batched reps (monomorphized, with the engine *owning*
/// the policy — the zero-indirection configuration the fleet runner
/// uses, measurably faster than driving through `&mut P`) run
/// **interleaved in one measurement window**. This machine's throughput
/// drifts in minutes-long waves; pairing the reps means both sides of
/// the scalar-vs-batched ratio see the same conditions, so the ratio
/// stays meaningful even when the absolute numbers wander. Every rep
/// asserts the batched stats byte-identical to the scalar run's.
/// Percentiles come from separate *timed* stepping passes afterwards
/// (the untimed/timed pair: instrumentation never touches the
/// throughput numbers).
fn measure_pair<P: ReplacementPolicy>(
    make: impl Fn() -> P,
    policy: &mut Box<dyn ReplacementPolicy>,
    wl: &Workload,
    k: usize,
    reps: usize,
) -> (Measurement, Measurement) {
    let mut best_s = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut stats: Option<SimStats> = None;
    for _ in 0..reps {
        policy.reset();
        let start = Instant::now();
        let result = Simulator::new(k).run(policy, &wl.trace);
        best_s = best_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let mut engine = SteppingEngine::new(k, wl.trace.universe().clone(), make());
        engine.run_batched(wl.trace.requests(), DEFAULT_BATCH_SIZE);
        best_b = best_b.min(start.elapsed().as_secs_f64());

        assert_eq!(
            &result.stats,
            engine.stats(),
            "batched replay diverged from scalar"
        );
        stats = Some(result.stats);
    }
    let misses = stats.expect("at least one rep").total_misses();

    policy.reset();
    let mut rec = MetricsRecorder::new();
    let mut engine =
        SteppingEngine::new(k, wl.trace.universe().clone(), &mut **policy).with_recorder(&mut rec);
    for &req in wl.trace.requests() {
        engine.step(req);
    }
    drop(engine);
    let lat = rec.latency_ns();
    let scalar = Measurement {
        requests_per_sec: wl.trace.len() as f64 / best_s,
        p50_ns: lat.p50(),
        p90_ns: lat.p90(),
        p99_ns: lat.p99(),
        p999_ns: lat.p999(),
        misses,
    };

    let mut rec = MetricsRecorder::new();
    let mut engine =
        SteppingEngine::new(k, wl.trace.universe().clone(), make()).with_recorder(&mut rec);
    for chunk in wl.trace.requests().chunks(DEFAULT_BATCH_SIZE) {
        engine.step_batch(chunk);
    }
    drop(engine);
    let lat = rec.latency_ns();
    let batched = Measurement {
        requests_per_sec: wl.trace.len() as f64 / best_b,
        p50_ns: lat.p50(),
        p90_ns: lat.p90(),
        p99_ns: lat.p99(),
        p999_ns: lat.p999(),
        misses,
    };
    (scalar, batched)
}

/// Build the concrete policy constructor for `label` and run the paired
/// measurement — each arm instantiates [`measure_pair`] with a distinct
/// `P`, which is the whole point.
fn paired_cell(
    label: &str,
    policy: &mut Box<dyn ReplacementPolicy>,
    wl: &Workload,
    k: usize,
    reps: usize,
) -> (Measurement, Measurement) {
    match label {
        "lru" => measure_pair(Lru::new, policy, wl, k, reps),
        "fifo" => measure_pair(Fifo::new, policy, wl, k, reps),
        "greedy-dual" => measure_pair(|| GreedyDual::unweighted(wl.num_users), policy, wl, k, reps),
        "alg-discrete" => {
            let costs = CostProfile::uniform(wl.num_users, Monomial::power(2.0));
            measure_pair(|| ConvexCaching::new(costs.clone()), policy, wl, k, reps)
        }
        other => unreachable!("no concrete constructor for {other}"),
    }
}

/// Pre-materialized fleet workloads: shard 0 replays the *same*
/// zipf-0.9 trace as the scalar cell (seed 11), further shards get
/// their own seeds. Generation happens before any clock starts — the
/// timed loop measures the engine, not the sampler.
fn fleet_traces(shards: usize, k: usize) -> Vec<Trace> {
    let pages = 4 * k as u32;
    (0..shards)
        .map(|i| zipf_trace(pages, TRACE_LEN, 0.9, 11 + i as u64))
        .collect()
}

/// One fleet cell: `shards` independent LRU caches of size `k`, each
/// replaying its pre-materialized trace through the monomorphized
/// typed path with recording off. Returns (best-of-N aggregate req/s,
/// total misses).
fn measure_fleet(traces: &[Trace], k: usize) -> (f64, u64) {
    let mut cell = FleetCellTimer::new(traces.len());
    for _ in 0..THROUGHPUT_REPS {
        cell.rep(traces, k);
    }
    cell.result()
}

/// Accumulates fleet throughput as the **per-shard best-of-N
/// composite**: each shard's fastest replay window across the reps,
/// summed. For one shard this is exactly the classic best-of-N; for
/// many shards it is the *same statistic* — whereas best-of-N of the
/// run-level aggregate takes the max of a mean of several noisy shard
/// times, which sits systematically below the max of a single one and
/// makes multi-shard cells look ~2% slower than they are on this
/// machine.
struct FleetCellTimer {
    best: Vec<f64>,
    served: u64,
    misses: u64,
}

impl FleetCellTimer {
    fn new(shards: usize) -> Self {
        FleetCellTimer {
            best: vec![f64::INFINITY; shards],
            served: 0,
            misses: 0,
        }
    }

    /// One timed fleet replay (recording off).
    fn rep(&mut self, traces: &[Trace], k: usize) {
        let mut cfg = FleetConfig::new(k);
        cfg.record = false;
        let sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
        let report = run_fleet_typed(sources, &cfg, |_| Lru::new());
        self.served = report.total_requests;
        self.misses = report.total_misses();
        for (b, s) in self.best.iter_mut().zip(&report.shards) {
            *b = b.min(s.elapsed.as_secs_f64());
        }
    }

    fn result(&self) -> (f64, u64) {
        (
            self.served as f64 / self.best.iter().sum::<f64>(),
            self.misses,
        )
    }
}

/// Untimed cross-check on the recording path: every fleet shard must be
/// byte-identical to a sequential replay of its own trace, and shard
/// 0's misses must equal the scalar zipf-0.9 LRU cell's (same trace).
/// Returns the expected total misses for the timed fleet cell.
fn assert_fleet_matches_scalar(traces: &[Trace], k: usize, scalar_misses: u64) -> u64 {
    let cfg = FleetConfig::new(k);
    let sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
    let report = run_fleet_typed(sources, &cfg, |_| Lru::new());
    for (shard, trace) in report.shards.iter().zip(traces) {
        let seq = Simulator::new(k).run(&mut Lru::new(), trace);
        assert_eq!(
            shard.stats, seq.stats,
            "fleet shard {} diverged from its sequential replay",
            shard.shard
        );
    }
    assert_eq!(
        report.shards[0].stats.total_misses(),
        scalar_misses,
        "fleet shard 0 must replay the scalar zipf-0.9 workload byte-identically"
    );
    report.total_misses()
}

/// Per-thread multi-tenant traces for the shared-cache concurrent cell
/// — same 4-tenant Zipf(0.8) geometry as the grid's multi-tenant
/// workload, decorrelated per-thread seeds, one shared universe.
/// Materialized before any clock starts.
fn concurrent_traces(k: usize) -> Vec<Trace> {
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| TenantSpec::new(k as u32, 1.0 + i as f64, AccessPattern::Zipf { s: 0.8 }))
        .collect();
    (0..CONCURRENT_THREADS)
        .map(|t| generate_multi_tenant(&tenants, TRACE_LEN, 5 + t as u64))
        .collect()
}

/// One concurrent shared-cache cell: M worker threads replay their
/// pre-materialized traces against a single k-sized LRU cache. The
/// miss-identity gate runs FIRST and untimed — one recorded run whose
/// commit schedule is replayed single-threaded and asserted identical
/// (per-user vectors, fault counters, quarantine set) — so no
/// throughput number can exist for a run the replay would reject. The
/// timed reps then use the uninstrumented path (recording and
/// verification off; the schedule is still recorded, its length is the
/// commit count). Returns (best-of-N req/s, commits per rep).
fn measure_concurrent(traces: &[Trace], k: usize, reps: usize) -> (f64, u64) {
    let universe = traces[0].universe().clone();
    let mut cfg = SharedConfig::new(k);
    cfg.table_shards = CONCURRENT_TABLE_SHARDS;
    let mut sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
    let verified = run_shared_fleet(universe.clone(), &cfg, &mut sources, |_| Lru::new())
        .expect("concurrent run diverged from its single-thread replay");
    let commits = verified.outcome.schedule.len() as u64;

    cfg.record = false;
    cfg.verify = false;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
        let report = run_shared_fleet(universe.clone(), &cfg, &mut sources, |_| Lru::new())
            .expect("unverified concurrent runs cannot fail");
        assert_eq!(
            report.outcome.schedule.len() as u64,
            commits,
            "concurrent rep consumed a different number of records"
        );
        best = best.min(report.wall.as_secs_f64());
    }
    (commits as f64 / best, commits)
}

/// Temp-file fixture for the ingest cells: one Zipf(0.9) trace
/// materialized as a fixed-width occbin01 file and its packed occbin02
/// twin, deleted on drop. Generation and encoding happen before any
/// clock starts.
struct IngestFixture {
    trace: Trace,
    v1: PathBuf,
    v2: PathBuf,
    v1_bytes: u64,
    v2_bytes: u64,
}

impl IngestFixture {
    fn materialize(len: usize) -> IngestFixture {
        let pages = 4 * INGEST_K as u32;
        let trace = zipf_trace(pages, len, 0.9, 11);
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let v1 = dir.join(format!("occ-bench-ingest-{pid}-{len}.occbin01"));
        let v2 = dir.join(format!("occ-bench-ingest-{pid}-{len}.occbin02"));
        let mut w = std::io::BufWriter::new(File::create(&v1).expect("create occbin01 fixture"));
        write_trace_binary(&trace, &mut w).expect("encode occbin01 fixture");
        w.flush().expect("flush occbin01 fixture");
        let mut w = std::io::BufWriter::new(File::create(&v2).expect("create occbin02 fixture"));
        write_trace_binary_v2(&trace, &mut w).expect("encode occbin02 fixture");
        w.flush().expect("flush occbin02 fixture");
        let size = |p: &Path| std::fs::metadata(p).expect("stat fixture").len();
        let (v1_bytes, v2_bytes) = (size(&v1), size(&v2));
        IngestFixture {
            trace,
            v1,
            v2,
            v1_bytes,
            v2_bytes,
        }
    }
}

impl Drop for IngestFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.v1);
        let _ = std::fs::remove_file(&self.v2);
    }
}

/// Open the fixture under one specific access strategy. `BinarySource::
/// open` would pick mmap on its own whenever it can; the bench needs
/// the buffered path *forced* so the two can be compared on the same
/// file.
fn open_ingest_source(fx: &IngestFixture, strategy: &str) -> BinarySource {
    let src = match strategy {
        "mmap" => BinarySource::Mmap(MmapTraceSource::open(&fx.v1).expect("map occbin01 fixture")),
        "buffered" => {
            let r = BufReader::new(File::open(&fx.v1).expect("open occbin01 fixture"));
            BinarySource::Buffered(BinaryTraceReader::new(r).expect("parse occbin01 header"))
        }
        _ => {
            let r = BufReader::new(File::open(&fx.v2).expect("open occbin02 fixture"));
            BinarySource::Packed(Binary2TraceReader::new(r).expect("parse occbin02 header"))
        }
    };
    assert_eq!(
        src.strategy(),
        strategy,
        "fixture opened under the wrong strategy"
    );
    src
}

/// Miss-identity gate for the ingest cells: replay the fixture through
/// the engine via every access strategy and assert the stats
/// byte-identical to an in-memory replay of the generating trace.
/// Untimed, and runs before any throughput number can exist.
fn assert_ingest_identity(fx: &IngestFixture, k: usize) {
    let reference = Simulator::new(k).run(&mut Lru::new(), &fx.trace);
    for strategy in INGEST_PATHS {
        let mut src = open_ingest_source(fx, strategy);
        let mut engine = SteppingEngine::new(k, src.universe().clone(), Lru::new());
        loop {
            if let Some(run) = src.next_page_run(DEFAULT_BATCH_SIZE) {
                engine.step_page_batch(run);
                continue;
            }
            if let Some(run) = src.next_run(DEFAULT_BATCH_SIZE) {
                engine.step_batch(run);
                continue;
            }
            break;
        }
        src.finish().expect("ingest identity replay ended early");
        assert_eq!(
            engine.stats(),
            &reference.stats,
            "{strategy} replay diverged from the in-memory trace"
        );
    }
}

/// Drain a source to exhaustion without a cache attached — decode,
/// validation and the running CRC are the work being timed. Returns the
/// number of requests served.
fn drain_ingest(src: &mut BinarySource) -> u64 {
    let mut served = 0u64;
    loop {
        if let Some(run) = src.next_page_run(DEFAULT_BATCH_SIZE) {
            served += run.len() as u64;
            std::hint::black_box(run.last().copied());
            continue;
        }
        if let Some(run) = src.next_run(DEFAULT_BATCH_SIZE) {
            served += run.len() as u64;
            std::hint::black_box(run.last().copied());
            continue;
        }
        return served;
    }
}

/// Timed ingest reps, interleaved — one rep of every strategy per round,
/// so host-speed drift hits all three equally and the ratios stay
/// meaningful. Each rep re-opens its source (header parse included in
/// the timing: it is part of ingestion, and identical per strategy) and
/// must drain the full stream and pass the footer check before its time
/// counts. Returns `(strategy, req/s)` per strategy.
fn measure_ingest(fx: &IngestFixture, reps: usize) -> Vec<(&'static str, f64)> {
    let len = fx.trace.len() as u64;
    let mut best = [f64::INFINITY; 3];
    for _ in 0..reps {
        for (slot, strategy) in INGEST_PATHS.iter().enumerate() {
            let start = Instant::now();
            let mut src = open_ingest_source(fx, strategy);
            let served = drain_ingest(&mut src);
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(served, len, "{strategy} drain served a short stream");
            src.finish()
                .expect("drained fixture must pass its footer check");
            best[slot] = best[slot].min(secs);
        }
    }
    INGEST_PATHS
        .iter()
        .zip(best)
        .map(|(&s, b)| (s, len as f64 / b))
        .collect()
}

/// Run the full ingest block: gate, timed cells, the mmap/buffered and
/// occbin02/occbin01 headline ratios. Prints one line per cell (with
/// `prefix` in front, so `--smoke` emits greppable `SMOKE ingest/...`
/// rows) and returns JSON rows for the baseline file.
fn ingest_block(
    len: usize,
    reps: usize,
    prefix: &str,
    committed: &[CommittedCell],
    regressions: &mut u32,
) -> Vec<String> {
    let fx = IngestFixture::materialize(len);
    assert_ingest_identity(&fx, INGEST_K);
    let cells = measure_ingest(&fx, reps);
    let mut rows = Vec::new();
    let rps_of = |s: &str| {
        cells
            .iter()
            .find(|(c, _)| *c == s)
            .map(|&(_, r)| r)
            .expect("all three strategies measured")
    };
    for (strategy, rps) in &cells {
        let label = format!("ingest/{strategy}");
        let bytes = if *strategy == "packed" {
            fx.v2_bytes
        } else {
            fx.v1_bytes
        };
        let delta = delta_text(
            committed,
            &label,
            "zipf-0.9",
            INGEST_K,
            "ingest",
            *rps,
            regressions,
        );
        println!(
            "{prefix}{label:>16}  k={INGEST_K:<5} {:<20} {rps:>12.0} req/s   (decode only, {bytes} B, miss-identity ok){delta}",
            "zipf-0.9"
        );
        let mut row = String::new();
        write!(
            row,
            "    {{\"policy\": \"{label}\", \"workload\": \"zipf-0.9\", \"k\": {INGEST_K}, \
             \"universe_pages\": {}, \"trace_len\": {len}, \"mode\": \"ingest\", \
             \"requests_per_sec\": {rps:.0}, \"file_bytes\": {bytes}}}",
            4 * INGEST_K,
        )
        .unwrap();
        rows.push(row);
    }
    let ratio = rps_of("mmap") / rps_of("buffered");
    let size_ratio = fx.v2_bytes as f64 / fx.v1_bytes as f64;
    println!(
        "{prefix}ingest ratios: mmap {ratio:.2}x buffered; occbin02 {} B = {size_ratio:.2}x \
         occbin01 {} B ({len} requests)",
        fx.v2_bytes, fx.v1_bytes
    );
    rows
}

/// `--ingest`: just the ingest block, on the full-sized fixture. The
/// baseline file is left untouched — this mode exists for iterating on
/// the ingestion paths without re-running the whole grid.
fn run_ingest(committed: &[CommittedCell]) {
    warm_up();
    let mut regressions = 0u32;
    ingest_block(
        INGEST_TRACE_LEN,
        THROUGHPUT_REPS,
        "",
        committed,
        &mut regressions,
    );
    if regressions > 0 {
        eprintln!(
            "warning: {regressions} ingest cell(s) regressed more than 20% vs the committed baseline"
        );
    }
    println!("INGEST OK: all three strategies replay miss-identical to the in-memory trace");
}

/// `--smoke`: lru/fifo/greedy-dual/alg-discrete on zipf-0.9 at both
/// cache sizes, scalar vs monomorphized batched (paired best of
/// three), plus a 1-shard trace-fed fleet. Asserts exact miss/stat
/// equality (the non-flaky invariant), gates the *drift-normalized*
/// batched and fleet throughput at [`SMOKE_DELTA_GATE`] vs any
/// matching committed cells, and prints `SMOKE OK` for CI.
fn run_smoke(committed: &[CommittedCell]) {
    warm_up();
    const SMOKE_REPS: usize = 3;
    let mut gate_failures = 0u32;
    for k in CACHE_SIZES {
        let wls = workloads(k);
        let wl = &wls[0];
        assert_eq!(wl.name, "zipf-0.9");
        let mut lru_scalar_misses = 0u64;
        // How fast this host runs right now relative to the machine
        // that produced the committed file, one sample per policy:
        // measured scalar over committed scalar.
        let mut scalar_factors: Vec<f64> = Vec::new();
        for label in BATCHED_POLICIES {
            let mut policy: Box<dyn ReplacementPolicy> = match label {
                "lru" => Box::new(Lru::new()),
                "fifo" => Box::new(Fifo::new()),
                "greedy-dual" => Box::new(GreedyDual::unweighted(wl.num_users)),
                _ => Box::new(ConvexCaching::new(CostProfile::uniform(
                    wl.num_users,
                    Monomial::power(2.0),
                ))),
            };
            // Same paired (interleaved, stats-asserted) measurement as
            // the grid cells — the Δ gate below compares like with like.
            let (ms, mb) = paired_cell(label, &mut policy, wl, k, SMOKE_REPS);
            if label == "lru" {
                lru_scalar_misses = ms.misses;
            }
            let speedup = mb.requests_per_sec / ms.requests_per_sec;
            let ref_scalar = committed_rps(committed, label, wl.name, k, "scalar");
            let ref_batched = committed_rps(committed, label, wl.name, k, "batched");
            if let Some(f) = ref_scalar.map(|r| ms.requests_per_sec / r) {
                scalar_factors.push(f);
            }
            // Gate on the batched/scalar ratio vs the committed ratio:
            // both sides of each ratio shared a measurement window, so
            // host-speed waves cancel and what remains is a real change
            // in the batched kernel's advantage.
            let delta = match (ref_scalar, ref_batched) {
                (Some(rs), Some(rb)) => {
                    let d = (speedup / (rb / rs) - 1.0) * 100.0;
                    if d <= SMOKE_DELTA_GATE {
                        gate_failures += 1;
                        format!(", ratio Δ {d:+.1}% <-- below gate")
                    } else {
                        format!(", ratio Δ {d:+.1}%")
                    }
                }
                _ => String::new(),
            };
            println!(
                "SMOKE {label} k={k}: scalar {:.0} req/s, batched {:.0} req/s \
                 ({speedup:.2}x, paired best-of-{SMOKE_REPS}), misses {} (identical){delta}",
                ms.requests_per_sec, mb.requests_per_sec, ms.misses
            );
        }

        // 1-shard trace-fed fleet: exactness against the scalar lru
        // cell, then the throughput gate. The fleet cell has no scalar
        // twin in its own window, so correct it by the median machine
        // factor observed across this block's scalar cells (one-sided:
        // only a shortfall can fail the gate).
        let traces = fleet_traces(1, k);
        let expected = assert_fleet_matches_scalar(&traces, k, lru_scalar_misses);
        let (rps, misses) = measure_fleet(&traces, k);
        assert_eq!(misses, expected, "fleet-1 misses diverged from scalar");
        scalar_factors.sort_by(|a, b| a.total_cmp(b));
        let factor = scalar_factors
            .get(scalar_factors.len() / 2)
            .copied()
            .unwrap_or(1.0);
        let delta = match committed_rps(committed, "lru/fleet-1", wl.name, k, "fleet") {
            Some(rf) => {
                let d = (rps / factor / rf - 1.0) * 100.0;
                if d <= SMOKE_DELTA_GATE {
                    gate_failures += 1;
                    format!(", drift-corrected Δ {d:+.1}% <-- below gate")
                } else {
                    format!(", drift-corrected Δ {d:+.1}%")
                }
            }
            None => String::new(),
        };
        println!("SMOKE lru/fleet-1 k={k}: {rps:.0} req/s, misses {misses} (identical){delta}");

        // Shared-cache concurrent cell: replay identity is asserted
        // inside `measure_concurrent` before its first timed rep; the
        // throughput gate reuses the fleet cell's drift correction.
        let label = format!("lru/concurrent-{CONCURRENT_THREADS}x{CONCURRENT_TABLE_SHARDS}");
        let traces = concurrent_traces(k);
        let (rps, commits) = measure_concurrent(&traces, k, SMOKE_REPS);
        let delta = match committed_rps(committed, &label, "tenants-4x-zipf-0.8", k, "concurrent") {
            Some(rf) => {
                let d = (rps / factor / rf - 1.0) * 100.0;
                if d <= SMOKE_DELTA_GATE {
                    gate_failures += 1;
                    format!(", drift-corrected Δ {d:+.1}% <-- below gate")
                } else {
                    format!(", drift-corrected Δ {d:+.1}%")
                }
            }
            None => String::new(),
        };
        println!(
            "SMOKE {label} k={k}: {rps:.0} req/s, {commits} commits (replay-identical){delta}"
        );
    }

    // Ingest cell, reduced fixture: the miss-identity assert inside
    // `ingest_block` is the non-flaky invariant; the throughput rows
    // are informational (CI greps for them, the Δ gate would flap on a
    // 1M-request drain).
    let mut ingest_regressions = 0u32;
    ingest_block(
        SMOKE_INGEST_TRACE_LEN,
        SMOKE_REPS,
        "SMOKE ",
        committed,
        &mut ingest_regressions,
    );

    if gate_failures > 0 {
        eprintln!(
            "SMOKE FAILED: {gate_failures} cell(s) more than {}% below the committed baseline",
            -SMOKE_DELTA_GATE
        );
        std::process::exit(1);
    }
    println!(
        "SMOKE OK: batched, fleet and ingest replay byte-identical to scalar on \
         lru, fifo, greedy-dual, alg-discrete"
    );
}

fn main() {
    // crates/occ-bench/../../ = repository root, regardless of cwd.
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    let committed = load_committed(&out);

    if std::env::args().any(|a| a == "--smoke") {
        run_smoke(&committed);
        return;
    }
    if std::env::args().any(|a| a == "--ingest") {
        run_ingest(&committed);
        return;
    }

    warm_up();
    let mut regressions = 0u32;

    let mut rows = Vec::new();
    // Scalar misses per (policy, workload, k), for the batched/fleet
    // equivalence asserts below.
    let mut scalar_misses: Vec<(String, String, usize, u64)> = Vec::new();
    for &k in &CACHE_SIZES {
        for wl in workloads(k) {
            // Policies with a batched twin get the paired (interleaved)
            // measurement so the scalar-vs-batched ratio is immune to
            // machine-speed drift between cells; the rest measure
            // scalar-only.
            let mut batched_pending: Vec<(&'static str, Measurement)> = Vec::new();
            for (label, mut policy) in policy_suite(wl.num_users) {
                let m = if BATCHED_POLICIES.contains(&label) {
                    let (ms, mb) = paired_cell(label, &mut policy, &wl, k, THROUGHPUT_REPS);
                    batched_pending.push((label, mb));
                    ms
                } else {
                    measure(&mut policy, &wl, k)
                };
                scalar_misses.push((label.to_string(), wl.name.to_string(), k, m.misses));
                let delta = delta_text(
                    &committed,
                    label,
                    wl.name,
                    k,
                    "scalar",
                    m.requests_per_sec,
                    &mut regressions,
                );
                println!(
                    "{label:>16}  k={k:<5} {:<20} {:>12.0} req/s   p50 {:>6} ns   p99 {:>7} ns   misses {}{delta}",
                    wl.name, m.requests_per_sec, m.p50_ns, m.p99_ns, m.misses
                );
                let mut row = String::new();
                write!(
                    row,
                    "    {{\"policy\": \"{label}\", \"workload\": \"{}\", \"k\": {k}, \
                     \"universe_pages\": {}, \"trace_len\": {}, \"mode\": \"scalar\", \
                     \"requests_per_sec\": {:.0}, \"p50_ns\": {}, \"p90_ns\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {}, \"misses\": {}}}",
                    wl.name,
                    4 * k,
                    wl.trace.len(),
                    m.requests_per_sec,
                    m.p50_ns,
                    m.p90_ns,
                    m.p99_ns,
                    m.p999_ns,
                    m.misses
                )
                .unwrap();
                rows.push(row);
            }

            // Batched twins of the scalar cells above, measured paired
            // with them (stats byte-identity asserted on every rep
            // inside `measure_pair`).
            for (label, m) in batched_pending {
                let &(_, _, _, scalar) = scalar_misses
                    .iter()
                    .find(|(p, w, ck, _)| p == label && w == wl.name && *ck == k)
                    .expect("scalar cell measured above");
                assert_eq!(
                    m.misses, scalar,
                    "{label}: batched misses diverged from scalar"
                );
                let delta = delta_text(
                    &committed,
                    label,
                    wl.name,
                    k,
                    "batched",
                    m.requests_per_sec,
                    &mut regressions,
                );
                println!(
                    "{:>16}  k={k:<5} {:<20} {:>12.0} req/s   p50 {:>6} ns   p99 {:>7} ns   misses {}{delta}",
                    format!("{label}/batched"),
                    wl.name,
                    m.requests_per_sec,
                    m.p50_ns,
                    m.p99_ns,
                    m.misses
                );
                let mut row = String::new();
                write!(
                    row,
                    "    {{\"policy\": \"{label}\", \"workload\": \"{}\", \"k\": {k}, \
                     \"universe_pages\": {}, \"trace_len\": {}, \"mode\": \"batched\", \
                     \"batch_size\": {DEFAULT_BATCH_SIZE}, \
                     \"requests_per_sec\": {:.0}, \"p50_ns\": {}, \"p90_ns\": {}, \
                     \"p99_ns\": {}, \"p999_ns\": {}, \"misses\": {}}}",
                    wl.name,
                    4 * k,
                    wl.trace.len(),
                    m.requests_per_sec,
                    m.p50_ns,
                    m.p90_ns,
                    m.p99_ns,
                    m.p999_ns,
                    m.misses
                )
                .unwrap();
                rows.push(row);
            }
        }

        // Fleet entries: LRU shards replaying pre-materialized zipf-0.9
        // traces through the typed (monomorphized, unrecorded) path.
        let &(_, _, _, scalar) = scalar_misses
            .iter()
            .find(|(p, w, ck, _)| p == "lru" && w == "zipf-0.9" && *ck == k)
            .expect("scalar cell measured above");
        // Exactness first (untimed), then the timed reps for the two
        // shard counts *interleaved* — their ratio is a headline number
        // and must not be skewed by machine-speed drift between cells.
        let cells: Vec<(usize, Vec<Trace>, u64)> = FLEET_SHARDS
            .iter()
            .map(|&shards| {
                let traces = fleet_traces(shards, k);
                let expected = assert_fleet_matches_scalar(&traces, k, scalar);
                (shards, traces, expected)
            })
            .collect();
        let mut timers: Vec<FleetCellTimer> = cells
            .iter()
            .map(|(shards, _, _)| FleetCellTimer::new(*shards))
            .collect();
        for _ in 0..THROUGHPUT_REPS {
            for ((_, traces, _), timer) in cells.iter().zip(timers.iter_mut()) {
                timer.rep(traces, k);
            }
        }
        for ((shards, _, expected), (rps, misses)) in
            cells.iter().zip(timers.iter().map(|t| t.result()))
        {
            let (shards, expected) = (*shards, *expected);
            assert_eq!(
                misses, expected,
                "fleet-{shards} misses diverged from the per-shard scalar replays"
            );
            let delta = delta_text(
                &committed,
                &format!("lru/fleet-{shards}"),
                "zipf-0.9",
                k,
                "fleet",
                rps,
                &mut regressions,
            );
            println!(
                "{:>16}  k={k:<5} {:<20} {rps:>12.0} req/s   ({shards} shard(s), aggregate)       misses {misses}{delta}",
                format!("lru/fleet-{shards}"),
                "zipf-0.9"
            );
            let mut row = String::new();
            write!(
                row,
                "    {{\"policy\": \"lru/fleet-{shards}\", \"workload\": \"zipf-0.9\", \"k\": {k}, \
                 \"universe_pages\": {}, \"trace_len\": {TRACE_LEN}, \"mode\": \"fleet\", \
                 \"shards\": {shards}, \"batch_size\": {DEFAULT_BATCH_SIZE}, \
                 \"requests_per_sec\": {rps:.0}, \"misses\": {misses}}}",
                4 * k,
            )
            .unwrap();
            rows.push(row);
        }

        // Concurrent shared-cache entry: M threads, one cache. The
        // replay-identity gate inside `measure_concurrent` runs before
        // the first timed rep, so this row can only exist for runs the
        // single-thread replay certified.
        let label = format!("lru/concurrent-{CONCURRENT_THREADS}x{CONCURRENT_TABLE_SHARDS}");
        let traces = concurrent_traces(k);
        let (rps, commits) = measure_concurrent(&traces, k, THROUGHPUT_REPS);
        let delta = delta_text(
            &committed,
            &label,
            "tenants-4x-zipf-0.8",
            k,
            "concurrent",
            rps,
            &mut regressions,
        );
        println!(
            "{label:>16}  k={k:<5} {:<20} {rps:>12.0} req/s   ({CONCURRENT_THREADS} threads, 1 shared cache)   commits {commits}{delta}",
            "tenants-4x-zipf-0.8"
        );
        let mut row = String::new();
        write!(
            row,
            "    {{\"policy\": \"{label}\", \"workload\": \"tenants-4x-zipf-0.8\", \"k\": {k}, \
             \"universe_pages\": {}, \"trace_len\": {TRACE_LEN}, \"mode\": \"concurrent\", \
             \"threads\": {CONCURRENT_THREADS}, \"table_shards\": {CONCURRENT_TABLE_SHARDS}, \
             \"requests_per_sec\": {rps:.0}, \"commits\": {commits}}}",
            4 * k,
        )
        .unwrap();
        rows.push(row);
    }

    // Ingest cells: decode-only throughput of the three binary access
    // strategies, full-sized fixture, miss-identity asserted first.
    rows.extend(ingest_block(
        INGEST_TRACE_LEN,
        THROUGHPUT_REPS,
        "",
        &committed,
        &mut regressions,
    ));

    let json = format!(
        "{{\n  \"benchmark\": \"bench_baseline\",\n  \"schema\": 3,\n  \"entries\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    occ_probe::write_atomic_with_trailer(&out, &json).expect("write BENCH_throughput.json");
    println!("\nwrote {}", out.display());
    if regressions > 0 {
        eprintln!(
            "warning: {regressions} cell(s) regressed more than 20% vs the committed baseline"
        );
    }
}
