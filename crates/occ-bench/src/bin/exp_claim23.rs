//! E4 — Claim 2.3: numeric verification of the curvature inequality.
//!
//! `f'(Σx)·Σx ≤ α·Σ_j x_j·f'(Σ_{i≤j} x_i)` for convex increasing `f`
//! with `f(0)=0`. Swept over function families and random partitions;
//! the table reports the worst (smallest) observed slack ratio rhs/lhs —
//! it must never fall below 1.

use occ_analysis::{fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::theory::claim23::check_inequality_6;
use occ_core::{check_claim_2_3, CostFn, Linear, Monomial, PiecewiseLinear, Polynomial};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_partitions(rng: &mut StdRng, trials: usize) -> Vec<Vec<f64>> {
    (0..trials)
        .map(|_| {
            let n = rng.gen_range(1..=12);
            (0..n).map(|_| rng.gen_range(0.0..5.0)).collect()
        })
        .collect()
}

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;
    let mut rng = StdRng::seed_from_u64(2015);

    let functions: Vec<(&str, CostFn)> = vec![
        ("linear w=3", Arc::new(Linear::new(3.0))),
        ("x^1.5", Arc::new(Monomial::power(1.5))),
        ("x^2", Arc::new(Monomial::power(2.0))),
        ("x^4", Arc::new(Monomial::power(4.0))),
        ("2x + x^3", Arc::new(Polynomial::new(vec![2.0, 0.0, 1.0]))),
        (
            "sla(tol=5, 1→10)",
            Arc::new(PiecewiseLinear::sla(5.0, 1.0, 10.0)),
        ),
    ];

    r.section("E4 — Claim 2.3 over function families × 2000 random partitions");
    let mut t = Table::new(vec![
        "f",
        "alpha",
        "trials",
        "min slack rhs/lhs",
        "violations",
        "ineq(6) violations",
    ]);
    for (name, f) in &functions {
        let partitions = random_partitions(&mut rng, 2000);
        let mut min_slack = f64::INFINITY;
        let mut violations = 0usize;
        let mut ineq6_violations = 0usize;
        for xs in &partitions {
            let out = check_claim_2_3(&**f, xs, None);
            if !out.holds(1e-9) {
                violations += 1;
            }
            if out.slack_ratio.is_finite() {
                min_slack = min_slack.min(out.slack_ratio);
            }
            // The proof's intermediate inequality (6).
            let (weighted, total_f) = check_inequality_6(&**f, xs);
            if weighted + 1e-9 < total_f {
                ineq6_violations += 1;
            }
        }
        all_ok &= violations == 0 && ineq6_violations == 0 && min_slack >= 1.0 - 1e-9;
        t.row(vec![
            name.to_string(),
            fnum(f.alpha().expect("families chosen with finite α")),
            partitions.len().to_string(),
            fnum(min_slack),
            violations.to_string(),
            ineq6_violations.to_string(),
        ]);
    }
    r.table("e4_claim23", &t);
    r.note(
        "min slack = smallest rhs/lhs observed; 1.0 means the inequality is \
         tight (attained by single-element partitions of linear f).",
    );

    // Tightness demonstration: single-element partitions with linear f.
    let tight = check_claim_2_3(&Linear::new(2.0), &[4.0], None);
    if (tight.slack_ratio - 1.0).abs() > 1e-9 {
        println!("!! expected exact tightness for linear single-element case");
        all_ok = false;
    }

    finish("exp_claim23", all_ok);
}
