//! E2 — Theorem 1.3: the bi-criteria guarantee.
//!
//! The same online algorithm (cache `k`) is compared against offline
//! optima with *smaller* caches `h ≤ k`; the guarantee tightens from
//! `α·k` to `α·k/(k−h+1)` as `h` shrinks. Single-user instances so the
//! offline reference (Belady with cache `h`) is the exact optimum.
//!
//! Expected shape: bound satisfied for every `h`; the measured ratio
//! *drops* as `h` decreases (the handicapped offline misses more), while
//! the theorem factor drops too — the interesting row is `h = k` where
//! the factor is the full `α·k`.

use occ_analysis::{check_theorem_1_3, fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{theorem_1_3_factor, ConvexCaching, CostProfile, Monomial};
use occ_offline::belady_miss_vector;
use occ_sim::Simulator;
use occ_workloads::{cycle_trace, zipf_trace};

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;
    let len = 20_000;

    for &beta in &[1.0f64, 2.0] {
        r.section(&format!("E2 — Theorem 1.3 sweep over h (f = x^{beta})"));
        let mut t = Table::new(vec![
            "workload",
            "k",
            "h",
            "factor αk/(k−h+1)",
            "online misses",
            "OPT(h) misses",
            "online cost",
            "Thm1.3 rhs",
            "bound ok",
        ]);
        let k = 12usize;
        let costs = CostProfile::uniform(1, Monomial::power(beta));
        let workloads = vec![
            ("cycle(k+1)", cycle_trace(k as u32 + 1, len)),
            ("zipf(0.9)", zipf_trace(48, len, 0.9, 3)),
        ];
        for (name, trace) in workloads {
            let mut alg = ConvexCaching::new(costs.clone());
            let a = Simulator::new(k).run(&mut alg, &trace).miss_vector();
            for h in [1usize, 2, 4, 6, 8, 10, 12] {
                let b = belady_miss_vector(&trace, h);
                let check = check_theorem_1_3(&costs, &a, &b, beta, k, h);
                all_ok &= check.satisfied;
                t.row(vec![
                    name.to_string(),
                    k.to_string(),
                    h.to_string(),
                    fnum(theorem_1_3_factor(beta, k, h)),
                    a[0].to_string(),
                    b[0].to_string(),
                    fnum(check.online_cost),
                    fnum(check.rhs),
                    check.satisfied.to_string(),
                ]);
            }
        }
        r.table(&format!("e2_bicriteria_beta{beta}"), &t);
    }
    r.note(
        "The algorithm is oblivious to h (Theorem 1.3 uses the SAME run of \
         ALG-DISCRETE for every row); only the offline reference changes.",
    );

    finish("exp_bicriteria", all_ok);
}
