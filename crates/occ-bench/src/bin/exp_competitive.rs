//! E1 — Theorem 1.1 / Corollary 1.2: measured competitive behavior of
//! ALG-DISCRETE against offline references, versus the proven bounds.
//!
//! Part A (exact): small instances where `occ_offline::exact_opt` gives
//! the true optimum of the convex objective; verifies
//! `Σ f_i(a_i) ≤ Σ f_i(α·k·b_i)` (Theorem 1.1) and reports the plain
//! cost ratio against the `β^β k^β` factor of Corollary 1.2.
//!
//! Part B (scale): single-user traces where Belady's MIN *is* the exact
//! offline optimum (one user ⇒ the objective is monotone in the miss
//! count), swept over `k` and `β` on cyclic / Zipf / uniform workloads.
//!
//! Expected shape: every bound satisfied; measured ratios orders of
//! magnitude below the worst-case factor on benign workloads, and
//! approaching `Θ(k^β)` on the adversarial cycle.

use occ_analysis::{check_theorem_1_1, fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{corollary_1_2_factor, ConvexCaching, CostProfile, Monomial};
use occ_offline::{belady_miss_vector, exact_opt};
use occ_sim::{Simulator, Trace, Universe};
use occ_workloads::{cycle_trace, uniform_trace, zipf_trace};

fn online_misses(costs: &CostProfile, trace: &Trace, k: usize) -> Vec<u64> {
    let mut alg = ConvexCaching::new(costs.clone());
    Simulator::new(k).run(&mut alg, trace).miss_vector()
}

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;

    // ---------- Part A: exact OPT on small instances ----------
    r.section("E1a — Theorem 1.1 against the exact convex OPT (small instances)");
    let mut t = Table::new(vec![
        "users",
        "k",
        "beta",
        "trace",
        "online cost",
        "OPT cost",
        "ratio",
        "Thm1.1 rhs",
        "bound ok",
    ]);
    for &beta in &[1.0f64, 2.0, 3.0] {
        for &k in &[2usize, 3] {
            for seed in 0..4u32 {
                let universe = Universe::uniform(2, 2);
                let pages: Vec<u32> = (0..12).map(|i| (i * 5 + seed * 3 + i * i) % 4).collect();
                let trace = Trace::from_page_indices(&universe, &pages);
                let costs = CostProfile::uniform(2, Monomial::power(beta));
                let a = online_misses(&costs, &trace, k);
                let opt = exact_opt(&trace, k, &costs);
                let check = check_theorem_1_1(&costs, &a, &opt.misses, beta, k);
                all_ok &= check.satisfied;
                t.row(vec![
                    "2".to_string(),
                    k.to_string(),
                    fnum(beta),
                    format!("rand#{seed}"),
                    fnum(check.online_cost),
                    fnum(check.offline_cost),
                    fnum(check.ratio),
                    fnum(check.rhs),
                    check.satisfied.to_string(),
                ]);
            }
        }
    }
    r.table("e1a_exact", &t);
    r.note("OPT: exact convex-objective optimum by memoized search.");

    // ---------- Part B: single-user scale (Belady = exact OPT) ----------
    r.section("E1b — Corollary 1.2 at scale (single user; MIN is exact OPT)");
    let mut t = Table::new(vec![
        "workload",
        "k",
        "beta",
        "online misses",
        "OPT misses",
        "cost ratio",
        "Cor1.2 factor",
        "bound ok",
    ]);
    let len = 20_000;
    for &beta in &[1.0f64, 2.0, 3.0] {
        for &k in &[4usize, 8, 16] {
            let workloads: Vec<(&str, Trace)> = vec![
                ("cycle(k+1)", cycle_trace(k as u32 + 1, len)),
                ("zipf(0.9)", zipf_trace(4 * k as u32, len, 0.9, 7)),
                ("uniform", uniform_trace(2 * k as u32, len, 7)),
            ];
            for (name, trace) in workloads {
                let costs = CostProfile::uniform(1, Monomial::power(beta));
                let a = online_misses(&costs, &trace, k);
                let b = belady_miss_vector(&trace, k);
                let check = check_theorem_1_1(&costs, &a, &b, beta, k);
                all_ok &= check.satisfied;
                t.row(vec![
                    name.to_string(),
                    k.to_string(),
                    fnum(beta),
                    a[0].to_string(),
                    b[0].to_string(),
                    fnum(check.ratio),
                    fnum(corollary_1_2_factor(beta, k)),
                    check.satisfied.to_string(),
                ]);
            }
        }
    }
    r.table("e1b_scale", &t);
    r.note(
        "cost ratio = Σf(a)/Σf(b); the worst case over workloads stays below \
         β^β·k^β, with the adversarial cycle the closest.",
    );

    // ---------- Part C: multi-tenant with the offline heuristic ----------
    r.section("E1c — multi-tenant Theorem 1.1 form (offline = best heuristic)");
    let mut t = Table::new(vec![
        "tenants",
        "k",
        "beta",
        "online cost",
        "offline cost",
        "Thm1.1 rhs",
        "bound ok",
    ]);
    for &beta in &[1.0f64, 2.0] {
        for &k in &[8usize, 16] {
            let trace = occ_workloads::generate_multi_tenant(
                &[
                    occ_workloads::TenantSpec::new(
                        24,
                        2.0,
                        occ_workloads::AccessPattern::Zipf { s: 0.9 },
                    ),
                    occ_workloads::TenantSpec::new(
                        24,
                        1.0,
                        occ_workloads::AccessPattern::Cycle { len: 20 },
                    ),
                    occ_workloads::TenantSpec::new(16, 1.0, occ_workloads::AccessPattern::Uniform),
                ],
                30_000,
                13,
            );
            let costs = CostProfile::uniform(3, Monomial::power(beta));
            let a = online_misses(&costs, &trace, k);
            let (off_cost, b) = occ_offline::best_offline_heuristic(&trace, k, &costs);
            let check = check_theorem_1_1(&costs, &a, &b, beta, k);
            all_ok &= check.satisfied;
            t.row(vec![
                "3".to_string(),
                k.to_string(),
                fnum(beta),
                fnum(check.online_cost),
                fnum(off_cost),
                fnum(check.rhs),
                check.satisfied.to_string(),
            ]);
        }
    }
    r.table("e1c_multitenant", &t);
    r.note(
        "offline = min(Belady, cost-aware Belady): an upper bound on OPT, so \
         'bound ok' is a necessary check of Theorem 1.1 at scale.",
    );

    finish("exp_competitive", all_ok);
}
