//! E3 — Theorem 1.4: the `Ω(k)^β` deterministic lower bound, realized.
//!
//! The §4 adaptive adversary (n single-page users, cache `k = n−1`)
//! forces *every* online algorithm to miss every request; the §4 batch
//! offline schedule pays ~`T/⌊(n−1)/2⌋` misses spread evenly. The
//! measured online/offline cost ratio must grow like `(n/4)^β` — it does,
//! for our algorithm and for every cost-blind baseline alike.

use occ_analysis::{fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{theorem_1_4_lower, ConvexCaching, CostProfile, Monomial};
use occ_offline::batch_offline;
use occ_sim::ReplacementPolicy;
use occ_workloads::run_lower_bound;

fn ratio_for<P: ReplacementPolicy>(mut policy: P, n: u32, t: u64, beta: f64) -> (f64, f64, f64) {
    let costs = CostProfile::uniform(n, Monomial::power(beta));
    let (online, trace) = run_lower_bound(&mut policy, n, t);
    let online_cost = costs.total_cost(&online.miss_vector());
    let offline = batch_offline(&trace, (n - 1) as usize);
    let offline_cost = costs.total_cost(&offline.misses).max(f64::MIN_POSITIVE);
    (online_cost, offline_cost, online_cost / offline_cost)
}

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;

    r.section("E3 — Theorem 1.4 lower-bound instance (adaptive adversary vs §4 batch offline)");
    let mut t = Table::new(vec![
        "n",
        "k",
        "beta",
        "T",
        "policy",
        "online cost",
        "offline cost",
        "ratio",
        "(n/4)^beta ref",
    ]);
    // T scales with n so each instance has many batches.
    for &beta in &[1.0f64, 2.0, 3.0] {
        for &n in &[5u32, 9, 17, 33] {
            let t_len = (n as u64) * (n as u64) * 8;
            let costs_ref = theorem_1_4_lower(n as usize, beta);
            let entries: Vec<(&str, (f64, f64, f64))> = vec![
                (
                    "convex-caching",
                    ratio_for(
                        ConvexCaching::new(CostProfile::uniform(n, Monomial::power(beta))),
                        n,
                        t_len,
                        beta,
                    ),
                ),
                ("lru", ratio_for(occ_baselines::Lru::new(), n, t_len, beta)),
                (
                    "fifo",
                    ratio_for(occ_baselines::Fifo::new(), n, t_len, beta),
                ),
            ];
            for (name, (on, off, ratio)) in entries {
                t.row(vec![
                    n.to_string(),
                    (n - 1).to_string(),
                    fnum(beta),
                    t_len.to_string(),
                    name.to_string(),
                    fnum(on),
                    fnum(off),
                    fnum(ratio),
                    fnum(costs_ref),
                ]);
            }
        }
    }
    r.table("e3_lower_bound", &t);
    r.note(
        "Every policy pays a ratio growing with n and β — no online algorithm \
         escapes the adversary (Theorem 1.4). The reference column is the \
         paper's analytic (n/4)^β.",
    );

    // Validation: the measured ratio must grow along n for each β and
    // for the paper's algorithm must be within a constant of the
    // reference growth (check monotonicity and a loose sandwich).
    for &beta in &[1.0f64, 2.0] {
        let mut prev = 0.0;
        for &n in &[5u32, 9, 17, 33] {
            let t_len = (n as u64) * (n as u64) * 8;
            let (_, _, ratio) = ratio_for(
                ConvexCaching::new(CostProfile::uniform(n, Monomial::power(beta))),
                n,
                t_len,
                beta,
            );
            if ratio <= prev {
                println!("!! ratio not growing at n={n}, beta={beta}: {ratio} ≤ {prev}");
                all_ok = false;
            }
            if ratio < theorem_1_4_lower(n as usize, beta) / 4.0 {
                println!("!! ratio {ratio} far below lower-bound reference at n={n}, beta={beta}");
                all_ok = false;
            }
            prev = ratio;
        }
    }

    finish("exp_lower_bound", all_ok);
}
