//! E5 — Figures 2 & 3: ALG-CONT ≡ ALG-DISCRETE, and the §2.3 invariants.
//!
//! Three implementations of the paper's algorithm — the fast closed-form
//! `ConvexCaching`, the literal Figure 3 `DiscreteReference`, and the
//! continuous primal–dual `run_continuous` — must produce identical
//! eviction sequences on identical inputs. The continuous run's recorded
//! dual trajectory must satisfy every invariant of §2.3 (under the §2.1
//! dummy-flush convention for gradient condition (3a)).

use occ_analysis::{fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::{
    check_invariants, run_continuous, with_dummy_flush, ConvexCaching, CostFn, CostProfile,
    DiscreteReference, Linear, Marginals, Monomial, PiecewiseLinear, TieBreak,
};
use occ_sim::{ReplacementPolicy, Simulator, Trace, Universe};
use std::sync::Arc;

fn pseudo_pages(len: usize, universe_pages: u32, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % universe_pages as u64) as u32
        })
        .collect()
}

fn evictions<P: ReplacementPolicy>(p: &mut P, trace: &Trace, k: usize) -> Vec<(u64, u32)> {
    Simulator::new(k)
        .record_events(true)
        .run(p, trace)
        .events
        .unwrap()
        .eviction_sequence()
        .iter()
        .map(|&(t, pg)| (t, pg.0))
        .collect()
}

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;

    r.section("E5 — implementation equivalence (fast vs Figure 3 vs Figure 2)");
    let mut t = Table::new(vec![
        "costs",
        "users",
        "k",
        "T",
        "seed",
        "evictions",
        "fast==fig3",
        "fast==fig2",
    ]);
    let profiles: Vec<(&str, CostProfile)> = vec![
        ("uniform x^2", CostProfile::uniform(3, Monomial::power(2.0))),
        (
            "mixed lin/quad/sla",
            CostProfile::new(vec![
                Arc::new(Linear::new(2.0)) as CostFn,
                Arc::new(Monomial::power(2.0)) as CostFn,
                Arc::new(PiecewiseLinear::sla(4.0, 1.0, 8.0)) as CostFn,
            ]),
        ),
    ];
    for (cname, costs) in &profiles {
        for &k in &[3usize, 6] {
            for seed in 1..=4u64 {
                let universe = Universe::uniform(3, 3);
                let trace = Trace::from_page_indices(&universe, &pseudo_pages(2_000, 9, seed));
                let mut fast = ConvexCaching::new(costs.clone());
                let mut fig3 = DiscreteReference::new(costs.clone());
                let e_fast = evictions(&mut fast, &trace, k);
                let e_fig3 = evictions(&mut fig3, &trace, k);
                let cont = run_continuous(
                    &trace,
                    k,
                    costs,
                    Marginals::Derivative,
                    TieBreak::OldestRequest,
                );
                let e_fig2: Vec<(u64, u32)> = cont
                    .eviction_sequence
                    .iter()
                    .map(|&(t, p)| (t, p.0))
                    .collect();
                let eq3 = e_fast == e_fig3;
                let eq2 = e_fast == e_fig2;
                all_ok &= eq3 && eq2;
                t.row(vec![
                    cname.to_string(),
                    "3".to_string(),
                    k.to_string(),
                    trace.len().to_string(),
                    seed.to_string(),
                    e_fast.len().to_string(),
                    eq3.to_string(),
                    eq2.to_string(),
                ]);
            }
        }
    }
    r.table("e5_equivalence", &t);

    r.section("E5 — §2.3 invariants of the recorded primal–dual trajectory");
    let mut t = Table::new(vec![
        "costs",
        "marginals",
        "k",
        "primal(1a)",
        "dual≥0(1c)",
        "slack(2a)",
        "tight(2b)",
        "grad(3a)",
        "max |2b residual|",
        "min 3a slack",
    ]);
    for (cname, costs) in &profiles {
        for mode in [Marginals::Derivative, Marginals::Discrete] {
            let k = 4usize;
            let universe = Universe::uniform(3, 3);
            let trace = Trace::from_page_indices(&universe, &pseudo_pages(1_500, 9, 42));
            let (ft, fc) = with_dummy_flush(&trace, costs, k);
            let run = run_continuous(&ft, k, &fc, mode, TieBreak::OldestRequest);
            let report = check_invariants(&ft, k, &fc, mode, &run, true, 1e-6);
            all_ok &= report.all_ok();
            t.row(vec![
                cname.to_string(),
                format!("{mode:?}"),
                k.to_string(),
                report.primal_feasible.to_string(),
                report.dual_nonneg.to_string(),
                report.comp_slack_z.to_string(),
                report.tightness_at_eviction.to_string(),
                report.gradient_ok.to_string(),
                fnum(report.max_tightness_residual),
                fnum(report.min_gradient_slack),
            ]);
        }
    }
    r.table("e5_invariants", &t);
    r.note("All conditions must hold exactly (residuals at float precision).");

    finish("exp_equivalence", all_ok);
}
