//! E7 — the §1.1 motivation: multi-tenant buffer-pool sharing under SLA
//! costs (the SQLVM scenario of \[14\], simulated).
//!
//! Compares the paper's cost-aware algorithm against the cost-blind and
//! myopic baselines on the preset scenarios. Expected shape (matching
//! what \[14\] reports for real workloads): the cost-aware algorithm pays
//! the lowest total SLA cost, because it shifts misses from tenants in
//! the steep region of their refund curve onto tenants whose marginal
//! cost is flat.

use occ_analysis::{compare_policies, evaluate_policy, fnum, Table};
use occ_bench::{finish, Reporter};
use occ_core::ConvexCaching;
use occ_workloads::all_scenarios;

fn main() {
    let r = Reporter::from_args();
    let mut all_ok = true;
    let len = 60_000;

    for scenario in all_scenarios() {
        let trace = scenario.trace(len, 2024);
        let k = scenario.suggested_k;
        r.section(&format!(
            "E7 — scenario '{}' (k = {k}, T = {len}, {} tenants)",
            scenario.name,
            scenario.tenants.len()
        ));

        let mut suite = occ_baselines::standard_suite(&scenario.costs);
        let mut reports = compare_policies(&mut suite, &trace, k, &scenario.costs);
        let mut ours = ConvexCaching::new(scenario.costs.clone());
        reports.push(evaluate_policy(&mut ours, &trace, k, &scenario.costs));
        reports.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        let best_cost = reports[0].cost;
        let mut t = Table::new(vec![
            "policy",
            "total SLA cost",
            "vs best",
            "miss rate",
            "per-tenant misses",
        ]);
        for rep in &reports {
            t.row(vec![
                rep.name.clone(),
                fnum(rep.cost),
                format!("{:.2}x", rep.cost / best_cost),
                format!("{:.3}", rep.miss_rate()),
                format!("{:?}", rep.misses),
            ]);
        }
        r.table(&format!("e7_{}", scenario.name), &t);

        // Pass criteria (honest to the theory: ALG-DISCRETE is a
        // worst-case algorithm, so we require competitiveness, not
        // dominance): within 1.3× of the best policy on every scenario.
        let ours_cost = reports
            .iter()
            .find(|rep| rep.name.starts_with("convex-caching"))
            .expect("our policy ran")
            .cost;
        if ours_cost > best_cost * 1.5 {
            println!(
                "!! convex-caching not competitive on '{}': {} vs best {}",
                scenario.name, ours_cost, best_cost
            );
            all_ok = false;
        }

        // And the headline claim of [14]: where cost asymmetry matters,
        // cost-awareness must beat every cost-blind policy.
        let cost_blind_best = reports
            .iter()
            .filter(|rep| {
                matches!(
                    rep.name.as_str(),
                    "lru" | "fifo" | "lfu" | "marking" | "lru-2" | "random"
                )
            })
            .map(|rep| rep.cost)
            .fold(f64::INFINITY, f64::min);
        if matches!(scenario.name, "sqlvm-like" | "two-tier") && ours_cost > cost_blind_best {
            println!(
                "!! cost-awareness should beat every cost-blind policy on '{}': {} vs {}",
                scenario.name, ours_cost, cost_blind_best
            );
            all_ok = false;
        }
        if scenario.name == "two-tier" && ours_cost * 2.0 > cost_blind_best {
            println!(
                "!! cost-awareness should win ≥2x on '{}': {} vs blind best {}",
                scenario.name, ours_cost, cost_blind_best
            );
            all_ok = false;
        }
        println!(
            "summary[{}]: ours={:.3e}, best={:.3e}, best cost-blind={:.3e}",
            scenario.name, ours_cost, best_cost, cost_blind_best
        );
    }

    finish("exp_multitenant_sla", all_ok);
}
