//! P2 — offline machinery scaling: Belady, the cost-aware heuristic,
//! exact OPT, convex-program construction, and the ALG-CONT reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use occ_core::{run_continuous, ConvexProgram, CostProfile, Marginals, Monomial, TieBreak};
use occ_offline::{belady_total_misses, cost_belady_miss_vector, exact_opt};
use occ_sim::{Trace, Universe};
use occ_workloads::zipf_trace;

fn bench_belady(c: &mut Criterion) {
    let mut group = c.benchmark_group("belady");
    for &len in &[10_000usize, 50_000] {
        let trace = zipf_trace(256, len, 0.9, 1);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("min", len), &len, |b, _| {
            b.iter(|| belady_total_misses(&trace, 64));
        });
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        group.bench_with_input(BenchmarkId::new("cost-aware", len), &len, |b, _| {
            b.iter(|| cost_belady_miss_vector(&trace, 64, &costs));
        });
    }
    group.finish();
}

fn bench_exact_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_opt");
    group.sample_size(10);
    for &t_len in &[8usize, 12] {
        let u = Universe::uniform(2, 2);
        let pages: Vec<u32> = (0..t_len)
            .map(|i| (i as u32 * 5 + 1 + (i as u32 * i as u32)) % 4)
            .collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        group.bench_with_input(BenchmarkId::new("T", t_len), &t_len, |b, _| {
            b.iter(|| exact_opt(&trace, 2, &costs));
        });
    }
    group.finish();
}

fn bench_cp_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_construction");
    for &len in &[1_000usize, 5_000] {
        let trace = zipf_trace(64, len, 0.8, 2);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("build", len), &len, |b, _| {
            b.iter(|| ConvexProgram::new(&trace, 16));
        });
    }
    group.finish();
}

fn bench_continuous_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg_cont_reference");
    group.sample_size(20);
    for &len in &[2_000usize, 8_000] {
        let trace = zipf_trace(48, len, 0.8, 4);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("T", len), &len, |b, _| {
            b.iter(|| {
                run_continuous(
                    &trace,
                    12,
                    &costs,
                    Marginals::Derivative,
                    TieBreak::OldestRequest,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_belady,
    bench_exact_opt,
    bench_cp_construction,
    bench_continuous_reference
);
criterion_main!(benches);
