//! P1 — engine + policy throughput (requests/second).
//!
//! Sweeps cache size, tenant count, and policy. The headline comparison:
//! the closed-form `ConvexCaching` must stay within a small constant of
//! LRU's throughput (both are `O(log k)` per request), while the literal
//! Figure 3 `DiscreteReference` degrades with `k` (its `O(k)` sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use occ_baselines::{
    Fifo, FifoReference, GreedyDual, Lru, LruK, LruKReference, LruReference, Marking,
    MarkingReference, RandomizedMarking, RandomizedMarkingReference,
};
use occ_core::{ConvexCaching, CostProfile, DiscreteReference, Monomial};
use occ_sim::{ReplacementPolicy, Simulator, Trace};
use occ_workloads::{generate_multi_tenant, zipf_trace, AccessPattern, TenantSpec};

fn run_policy<P: ReplacementPolicy>(policy: &mut P, trace: &Trace, k: usize) -> u64 {
    policy.reset();
    Simulator::new(k).run(policy, trace).total_misses()
}

fn bench_policies_vs_k(c: &mut Criterion) {
    let len = 50_000usize;
    let mut group = c.benchmark_group("policy_throughput_vs_k");
    group.throughput(Throughput::Elements(len as u64));
    for &k in &[16usize, 64, 256] {
        let trace = zipf_trace(4 * k as u32, len, 0.9, 11);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));

        group.bench_with_input(BenchmarkId::new("convex-caching", k), &k, |b, &k| {
            let mut alg = ConvexCaching::new(costs.clone());
            b.iter(|| run_policy(&mut alg, &trace, k));
        });
        group.bench_with_input(BenchmarkId::new("figure3-reference", k), &k, |b, &k| {
            let mut alg = DiscreteReference::new(costs.clone());
            b.iter(|| run_policy(&mut alg, &trace, k));
        });
        group.bench_with_input(BenchmarkId::new("lru", k), &k, |b, &k| {
            let mut alg = Lru::new();
            b.iter(|| run_policy(&mut alg, &trace, k));
        });
        group.bench_with_input(BenchmarkId::new("greedy-dual", k), &k, |b, &k| {
            let mut alg = GreedyDual::unweighted(1);
            b.iter(|| run_policy(&mut alg, &trace, k));
        });
    }
    group.finish();
}

/// Each `O(1)`/`O(log k)` default policy against its retained reference
/// implementation, on the same trace: the measured gap is the payoff of
/// the intrusive-list / dense-pool / flat-ring ports.
fn bench_fast_vs_reference(c: &mut Criterion) {
    let len = 50_000usize;
    let mut group = c.benchmark_group("fast_vs_reference");
    group.throughput(Throughput::Elements(len as u64));
    for &k in &[256usize, 4096] {
        let trace = zipf_trace(4 * k as u32, len, 0.9, 11);
        let mut pairs: Vec<(Box<dyn ReplacementPolicy>, Box<dyn ReplacementPolicy>)> = vec![
            (Box::new(Lru::new()), Box::new(LruReference::new())),
            (Box::new(Fifo::new()), Box::new(FifoReference::new())),
            (Box::new(Marking::new()), Box::new(MarkingReference::new())),
            (Box::new(LruK::new(2)), Box::new(LruKReference::new(2))),
            (
                Box::new(RandomizedMarking::new(7)),
                Box::new(RandomizedMarkingReference::new(7)),
            ),
        ];
        for (fast, reference) in &mut pairs {
            let fast_name = fast.name();
            group.bench_with_input(BenchmarkId::new(fast_name, k), &k, |b, &k| {
                b.iter(|| run_policy(fast, &trace, k));
            });
            let ref_name = reference.name();
            group.bench_with_input(BenchmarkId::new(ref_name, k), &k, |b, &k| {
                b.iter(|| run_policy(reference, &trace, k));
            });
        }
    }
    group.finish();
}

fn bench_tenant_scaling(c: &mut Criterion) {
    let len = 50_000usize;
    let mut group = c.benchmark_group("convex_caching_vs_tenants");
    group.throughput(Throughput::Elements(len as u64));
    for &n in &[2usize, 8, 32] {
        let specs: Vec<TenantSpec> = (0..n)
            .map(|i| TenantSpec::new(16, 1.0 + (i % 3) as f64, AccessPattern::Zipf { s: 0.8 }))
            .collect();
        let trace = generate_multi_tenant(&specs, len, 5);
        let costs = CostProfile::uniform(n as u32, Monomial::power(2.0));
        group.bench_with_input(BenchmarkId::new("tenants", n), &n, |b, _| {
            let mut alg = ConvexCaching::new(costs.clone());
            b.iter(|| run_policy(&mut alg, &trace, 64));
        });
    }
    group.finish();
}

fn bench_engine_overhead(c: &mut Criterion) {
    // Pure engine cost: a policy that does nothing but FIFO pops.
    let len = 100_000usize;
    let trace = zipf_trace(256, len, 0.9, 3);
    let mut group = c.benchmark_group("engine_overhead");
    group.throughput(Throughput::Elements(len as u64));
    group.bench_function("fifo_baseline", |b| {
        let mut fifo = occ_baselines::Fifo::new();
        b.iter(|| run_policy(&mut fifo, &trace, 64));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policies_vs_k,
    bench_fast_vs_reference,
    bench_tenant_scaling,
    bench_engine_overhead
);
criterion_main!(benches);
