//! SLA refund-schedule coverage for the pool layer.
//!
//! The pools subsystem prices migrations against the same per-user cost
//! functions the paper's algorithm optimises, and the motivating shape
//! (§1.1) is the SLA refund schedule: a gentle slope up to a tolerated
//! number of misses, then a steep penalty beyond it. These tests pin the
//! contract that every SLA-shaped profile the pool experiments use is a
//! legal paper cost function — convex, increasing, `f(0) = 0` — and that
//! its curvature constant `α = sup x·f'(x)/f(x)` matches the closed
//! form, both for piecewise-linear refunds and for `x^β` segments.

use occ_core::{alpha_numeric, CostFunction, CostProfile, Monomial, PiecewiseLinear};
use occ_pools::EpochView;
use occ_sim::UserId;

/// A representative family of SLA refund schedules: (tolerance, base
/// slope, penalty slope).
fn sla_family() -> Vec<(f64, f64, f64)> {
    vec![
        (10.0, 1.0, 20.0),
        (4.0, 1.0, 10.0),
        (25.0, 0.5, 3.0),
        (1.0, 2.0, 2.0), // degenerate: penalty == base, i.e. linear
        (100.0, 0.1, 50.0),
    ]
}

#[test]
fn sla_refunds_are_convex_increasing_and_zero_at_origin() {
    for (tol, base, penalty) in sla_family() {
        let f = PiecewiseLinear::sla(tol, base, penalty);
        assert!(f.is_convex(), "{}", f.describe());
        assert_eq!(f.eval(0.0), 0.0, "{}: refund at zero misses", f.describe());
        // Increasing, with a convex (non-decreasing) derivative, on a grid
        // spanning well past the tolerance knee.
        let xmax = 4.0 * tol;
        let mut prev_v = 0.0;
        let mut prev_d = 0.0;
        for i in 1..=400 {
            let x = xmax * i as f64 / 400.0;
            let v = f.eval(x);
            let d = f.deriv(x);
            assert!(v >= prev_v, "{}: f not increasing at x={x}", f.describe());
            assert!(d >= prev_d, "{}: f' decreased at x={x}", f.describe());
            assert!(d >= 0.0);
            prev_v = v;
            prev_d = d;
        }
    }
}

#[test]
fn sla_alpha_matches_the_closed_form() {
    // For sla(T, s, p): the ratio x·f'(x)/f(x) is 1 on the base segment
    // and maximised just past the knee, where f(T) = s·T and f' = p, so
    //   α = p·T / (s·T) = p / s.
    for (tol, base, penalty) in sla_family() {
        let f = PiecewiseLinear::sla(tol, base, penalty);
        let alpha = f.alpha().expect("positive base slope ⇒ finite α");
        let closed_form = penalty / base;
        assert!(
            (alpha - closed_form).abs() < 1e-9 * closed_form,
            "{}: α = {alpha}, closed form p/s = {closed_form}",
            f.describe()
        );
        // The sup is attained exactly at the knee: right-derivative p,
        // f(T) = s·T.
        let at_knee = tol * f.deriv(tol) / f.eval(tol);
        assert!(
            (at_knee - alpha).abs() < 1e-9 * alpha,
            "{}: ratio at the knee {at_knee} vs α {alpha}",
            f.describe()
        );
        // The numeric estimator is a sampled *lower* bound on the sup: it
        // must never exceed the analytic value, and its log grid lands
        // close enough to the knee to recover most of it.
        let est = alpha_numeric(&f, 4.0 * tol, 20_000).expect("finite samples");
        assert!(
            est <= alpha + 1e-6 && est >= 0.5 * alpha,
            "{}: numeric α {est} should bracket analytic {alpha} from below",
            f.describe()
        );
    }
}

#[test]
fn multi_tier_refund_alpha_is_the_worst_knee() {
    // A three-tier refund schedule: the sup of x·f'(x)/f(x) is attained
    // just past one of the knees; alpha() must pick the worst of them.
    let f = PiecewiseLinear::new(vec![1.0, 4.0, 6.0], vec![10.0, 30.0]);
    // Knee 1: f(10) = 10, ratio → 4·10/10 = 4.
    // Knee 2: f(30) = 10 + 4·20 = 90, ratio → 6·30/90 = 2.
    let alpha = f.alpha().expect("finite α");
    assert!((alpha - 4.0).abs() < 1e-12, "α = {alpha}");
    // And the pointwise ratio never exceeds it.
    for i in 1..4000 {
        let x = i as f64 * 0.025;
        let ratio = x * f.deriv(x) / f.eval(x);
        assert!(ratio <= alpha + 1e-9, "ratio {ratio} at x={x}");
    }
}

#[test]
fn monomial_segments_have_alpha_beta() {
    // For f(x) = c·x^β the ratio x·f'(x)/f(x) is identically β, so the
    // closed form is exact for every scale and the numeric estimate
    // matches tightly.
    for beta in [1.0, 1.5, 2.0, 3.0] {
        for scale in [0.5, 1.0, 7.0] {
            let f = Monomial::new(scale, beta);
            let alpha = f.alpha().expect("monomials have analytic α");
            assert!(
                (alpha - beta).abs() < 1e-12,
                "{}: α = {alpha}, expected β = {beta}",
                f.describe()
            );
            let est = alpha_numeric(&f, 50.0, 1000).expect("finite samples");
            assert!((est - beta).abs() < 1e-6, "numeric α {est} vs β {beta}");
        }
    }
}

#[test]
fn flat_tolerance_band_makes_alpha_unbounded() {
    // A refund that charges *nothing* inside the tolerance breaks the
    // paper's guarantee machinery: f(T) = 0 makes x·f'(x)/f(x) blow up
    // just past the knee, so alpha() must refuse a value rather than
    // report a finite underestimate (the conformance harness marks such
    // cells VACUOUS for the same reason).
    let f = PiecewiseLinear::new(vec![0.0, 5.0], vec![3.0]);
    assert_eq!(f.alpha(), None);
    assert!(f.is_convex());
    assert_eq!(f.eval(0.0), 0.0);
}

#[test]
fn epoch_pressure_tracks_the_refund_schedule() {
    // The pool rebalancer's "pressure" for a user is f(m+e) − f(m): inside
    // the tolerance it grows at the base slope, across the knee it picks
    // up the penalty slope — exactly the refund the provider would owe for
    // repeating last epoch's misses.
    let costs = CostProfile::new(vec![
        std::sync::Arc::new(PiecewiseLinear::sla(10.0, 1.0, 20.0)),
        std::sync::Arc::new(PiecewiseLinear::sla(10.0, 1.0, 20.0)),
    ]);
    let assignment = [0usize, 1];
    let pool_sizes = [4usize, 4];
    let epoch_misses = [4u64, 4];
    let epoch_requests = [10u64, 10];
    // User 0 sits inside the tolerance (2 + 4 ≤ 10); user 1 straddles the
    // knee (8 + 4 = 12 > 10).
    let total_misses = [2u64, 8];
    let view = EpochView {
        epoch: 0,
        assignment: &assignment,
        pool_sizes: &pool_sizes,
        epoch_misses: &epoch_misses,
        epoch_requests: &epoch_requests,
        total_misses: &total_misses,
        costs: &costs,
        switching_cost: 0.0,
    };
    // f(6) − f(2) = 6 − 2 = 4 (all base slope).
    assert!((view.pressure(UserId(0)) - 4.0).abs() < 1e-12);
    // f(12) − f(8) = (10 + 2·20) − 8 = 42: two base steps + two penalty.
    assert!((view.pressure(UserId(1)) - 42.0).abs() < 1e-12);
    // The straddling user is under strictly more pressure — this ordering
    // is what CostAwareRebalancer keys its migration choice on.
    assert!(view.pressure(UserId(1)) > view.pressure(UserId(0)));
    // Sanity: the profile exposes the same functions the checks above
    // validated.
    assert_eq!(costs.user(UserId(1)).alpha(), Some(20.0));
}
