//! User→pool assignment policies.
//!
//! The runner invokes the assigner once at the start (initial placement)
//! and once per epoch boundary with a summary of the last epoch; the
//! assigner returns migrations, which the runner applies (each one
//! charging the switching cost and dropping the user's cached pages).

use occ_core::CostProfile;
use occ_sim::UserId;

/// Epoch summary handed to [`PoolAssigner::rebalance`].
pub struct EpochView<'a> {
    /// Zero-based index of the epoch that just ended.
    pub epoch: u64,
    /// Current user→pool assignment.
    pub assignment: &'a [usize],
    /// Cache size of each pool.
    pub pool_sizes: &'a [usize],
    /// Per-user misses during the last epoch.
    pub epoch_misses: &'a [u64],
    /// Per-user requests during the last epoch.
    pub epoch_requests: &'a [u64],
    /// Per-user cumulative misses since the start.
    pub total_misses: &'a [u64],
    /// Per-user cost functions.
    pub costs: &'a CostProfile,
    /// Flat fee per migration.
    pub switching_cost: f64,
}

impl EpochView<'_> {
    /// Requests per pool during the last epoch.
    pub fn pool_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.pool_sizes.len()];
        for (u, &pool) in self.assignment.iter().enumerate() {
            loads[pool] += self.epoch_requests[u];
        }
        loads
    }

    /// Estimated marginal cost pressure of a user: the cost of repeating
    /// last epoch's misses at the user's current position on its cost
    /// curve, `f(m + e) − f(m)`.
    pub fn pressure(&self, user: UserId) -> f64 {
        let f = self.costs.user(user);
        let m = self.total_misses[user.index()] as f64;
        let e = self.epoch_misses[user.index()] as f64;
        f.eval(m + e) - f.eval(m)
    }
}

/// Decides initial placement and per-epoch migrations.
pub trait PoolAssigner {
    /// Name for experiment tables.
    fn name(&self) -> String;

    /// Initial user→pool assignment.
    fn initial(&mut self, num_users: u32, num_pools: usize) -> Vec<usize>;

    /// Called at each epoch boundary; returns `(user, destination pool)`
    /// migrations to apply.
    fn rebalance(&mut self, _view: &EpochView) -> Vec<(UserId, usize)> {
        Vec::new()
    }
}

/// Round-robin initial placement, never migrates.
#[derive(Debug, Default)]
pub struct StaticAssigner;

impl PoolAssigner for StaticAssigner {
    fn name(&self) -> String {
        "static".into()
    }

    fn initial(&mut self, num_users: u32, num_pools: usize) -> Vec<usize> {
        (0..num_users as usize).map(|u| u % num_pools).collect()
    }
}

/// Balances request load: each epoch, moves the heaviest user of the most
/// loaded pool to the least loaded pool when the imbalance exceeds a
/// factor of two — a classic load-balancer oblivious to cost functions.
#[derive(Debug, Default)]
pub struct LoadBalancer;

impl PoolAssigner for LoadBalancer {
    fn name(&self) -> String {
        "load-balance".into()
    }

    fn initial(&mut self, num_users: u32, num_pools: usize) -> Vec<usize> {
        (0..num_users as usize).map(|u| u % num_pools).collect()
    }

    fn rebalance(&mut self, view: &EpochView) -> Vec<(UserId, usize)> {
        let loads = view.pool_loads();
        let (max_pool, &max_load) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)
            .expect("at least one pool");
        let (min_pool, &min_load) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("at least one pool");
        if max_pool == min_pool || max_load < 2 * min_load.max(1) {
            return Vec::new();
        }
        // Heaviest user in the overloaded pool.
        let user = view
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == max_pool)
            .max_by_key(|&(u, _)| view.epoch_requests[u])
            .map(|(u, _)| UserId(u as u32));
        match user {
            Some(u) => vec![(u, min_pool)],
            None => Vec::new(),
        }
    }
}

/// Cost-aware rebalancer: migrates only when *contention* (request load
/// per cache slot) is genuinely asymmetric across pools, and then moves
/// the hot pool's highest-cost-pressure user to the calmest pool if the
/// estimated relief clears the switching fee.
///
/// The split of roles is deliberate: contention decides *whether* a
/// migration can help at all (a user with intrinsically growing convex
/// cost suffers in any pool — relocating it buys nothing and drops its
/// cached pages), while cost pressure decides *who* is worth the fee.
/// Using cost pressure as the trigger instead causes flapping: a
/// quadratic tenant's pressure grows with its cumulative misses, so its
/// pool always looks "hot" and the rebalancer would shuttle it forever.
#[derive(Debug, Default)]
pub struct CostAwareRebalancer {
    /// Cooldown: do not move the same user twice in a row.
    last_moved: Option<u32>,
}

impl PoolAssigner for CostAwareRebalancer {
    fn name(&self) -> String {
        "cost-aware".into()
    }

    fn initial(&mut self, num_users: u32, num_pools: usize) -> Vec<usize> {
        (0..num_users as usize).map(|u| u % num_pools).collect()
    }

    fn rebalance(&mut self, view: &EpochView) -> Vec<(UserId, usize)> {
        let num_pools = view.pool_sizes.len();
        if num_pools < 2 {
            return Vec::new();
        }
        // Contention = request load per cache slot.
        let loads = view.pool_loads();
        let contention: Vec<f64> = loads
            .iter()
            .zip(view.pool_sizes)
            .map(|(&l, &s)| l as f64 / s.max(1) as f64)
            .collect();
        let (src, src_c) = contention
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &c)| (i, c))
            .expect("at least one pool");
        let (dest, dest_c) = contention
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &c)| (i, c))
            .expect("at least one pool");
        // Guard 1: migration only relieves *asymmetric* contention.
        if src == dest || src_c < 2.0 * dest_c.max(1.0) {
            return Vec::new();
        }

        // Candidate: the highest-cost-pressure user of the hot pool
        // (skipping the cooldown user) — the one whose misses are most
        // expensive is the one most worth protecting.
        let candidate = view
            .assignment
            .iter()
            .enumerate()
            .filter(|&(u, &p)| p == src && Some(u as u32) != self.last_moved)
            .max_by(|a, b| {
                view.pressure(UserId(a.0 as u32))
                    .total_cmp(&view.pressure(UserId(b.0 as u32)))
            })
            .map(|(u, _)| UserId(u as u32));
        let Some(user) = candidate else {
            return Vec::new();
        };
        // Guard 2: the fee must be recoverable from the candidate's own
        // pressure (conservatively, half of it).
        let relief = 0.5 * view.pressure(user);
        if relief > view.switching_cost {
            self.last_moved = Some(user.0);
            vec![(user, dest)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_core::{CostProfile, Monomial};

    fn view<'a>(
        assignment: &'a [usize],
        pool_sizes: &'a [usize],
        epoch_misses: &'a [u64],
        epoch_requests: &'a [u64],
        total_misses: &'a [u64],
        costs: &'a CostProfile,
        switching_cost: f64,
    ) -> EpochView<'a> {
        EpochView {
            epoch: 0,
            assignment,
            pool_sizes,
            epoch_misses,
            epoch_requests,
            total_misses,
            costs,
            switching_cost,
        }
    }

    #[test]
    fn static_assigner_round_robins_and_never_moves() {
        let mut a = StaticAssigner;
        assert_eq!(a.initial(5, 2), vec![0, 1, 0, 1, 0]);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let v = view(&[0, 1], &[4, 4], &[10, 0], &[100, 1], &[10, 0], &costs, 0.0);
        assert!(a.rebalance(&v).is_empty());
    }

    #[test]
    fn load_balancer_moves_heaviest_from_hot_pool() {
        let mut a = LoadBalancer;
        let costs = CostProfile::uniform(4, Monomial::power(1.0));
        // Pool 0 has users 0,1 with heavy load; pool 1 has 2,3 idle.
        let v = view(
            &[0, 0, 1, 1],
            &[4, 4],
            &[5, 5, 0, 0],
            &[90, 40, 3, 2],
            &[5, 5, 0, 0],
            &costs,
            1.0,
        );
        let moves = a.rebalance(&v);
        assert_eq!(moves, vec![(UserId(0), 1)]);
    }

    #[test]
    fn load_balancer_tolerates_mild_imbalance() {
        let mut a = LoadBalancer;
        let costs = CostProfile::uniform(2, Monomial::power(1.0));
        let v = view(&[0, 1], &[4, 4], &[1, 1], &[30, 20], &[1, 1], &costs, 1.0);
        assert!(a.rebalance(&v).is_empty());
    }

    #[test]
    fn cost_aware_respects_switching_fee() {
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        // Pool 0 is contended (25 req/slot vs 5) and user 0 is suffering.
        let mk = |fee| {
            let mut a = CostAwareRebalancer::default();
            let v = view(
                &[0, 1],
                &[4, 4],
                &[10, 0],
                &[100, 20],
                &[20, 0],
                &costs,
                fee,
            );
            a.rebalance(&v)
        };
        // pressure = f(30) − f(20) = 900 − 400 = 500; relief 250.
        assert_eq!(mk(100.0), vec![(UserId(0), 1)]);
        assert!(mk(1_000.0).is_empty(), "fee dwarfs the relief");
    }

    #[test]
    fn cost_aware_needs_contention_asymmetry() {
        // Even a suffering user stays put when pools are equally loaded:
        // its pressure is intrinsic, not caused by colocation.
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let mut a = CostAwareRebalancer::default();
        let v = view(&[0, 1], &[4, 4], &[10, 0], &[50, 50], &[20, 0], &costs, 0.0);
        assert!(a.rebalance(&v).is_empty());
    }

    #[test]
    fn cost_aware_cooldown_prevents_flapping() {
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let mut a = CostAwareRebalancer::default();
        let assignment = [0usize, 1];
        let v = view(
            &assignment,
            &[4, 4],
            &[10, 0],
            &[100, 20],
            &[20, 0],
            &costs,
            1.0,
        );
        let first = a.rebalance(&v);
        assert_eq!(first, vec![(UserId(0), 1)]);
        // Both users now share pool 1: it is the contended pool, but the
        // only non-cooldown candidate (user 1) has zero pressure.
        let v2 = view(&[1, 1], &[4, 4], &[10, 0], &[0, 120], &[30, 0], &costs, 1.0);
        assert!(a.rebalance(&v2).is_empty());
    }

    #[test]
    fn epoch_view_helpers() {
        let costs = CostProfile::uniform(3, Monomial::power(2.0));
        let v = view(
            &[0, 0, 1],
            &[4, 4],
            &[2, 0, 1],
            &[10, 5, 7],
            &[4, 0, 1],
            &costs,
            0.0,
        );
        assert_eq!(v.pool_loads(), vec![15, 7]);
        // pressure(u0) = f(6) − f(4) = 36 − 16 = 20.
        assert_eq!(v.pressure(UserId(0)), 20.0);
        assert_eq!(v.pressure(UserId(1)), 0.0);
    }
}
