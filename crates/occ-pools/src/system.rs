//! The multi-pool cache system: several independent caches, each running
//! its own replacement policy; every user is assigned to exactly one
//! pool; moving a user between pools costs a switching fee and drops the
//! user's cached pages (they were physically resident in the old pool).
//!
//! This is the model sketched in the paper's conclusion (§5): *"the case
//! of multiple memory pools (e.g., each pool corresponds to a single
//! physical server), where each user has to be assigned to a single
//! pool, with potentially switching cost incurred for migrating users
//! between servers."*

use occ_core::CostProfile;
use occ_sim::{ReplacementPolicy, Request, StepOutcome, SteppingEngine, Universe, UserId};

/// Static configuration of a multi-pool system.
#[derive(Clone, Debug)]
pub struct PoolsConfig {
    /// Cache size of each pool.
    pub pool_sizes: Vec<usize>,
    /// Flat cost charged per user migration.
    pub switching_cost: f64,
}

impl PoolsConfig {
    /// Uniform pools: `num_pools` pools of `size` pages each.
    pub fn uniform(num_pools: usize, size: usize, switching_cost: f64) -> Self {
        assert!(num_pools >= 1 && size >= 1);
        assert!(switching_cost >= 0.0);
        PoolsConfig {
            pool_sizes: vec![size; num_pools],
            switching_cost,
        }
    }

    /// Number of pools.
    pub fn num_pools(&self) -> usize {
        self.pool_sizes.len()
    }
}

/// A running multi-pool system.
pub struct PoolSystem {
    config: PoolsConfig,
    universe: Universe,
    engines: Vec<SteppingEngine<Box<dyn ReplacementPolicy>>>,
    /// `assignment[user]` = current pool of the user.
    assignment: Vec<usize>,
    migrations: u64,
    /// Pages dropped from caches by migrations (each will re-miss).
    dropped_pages: u64,
}

impl PoolSystem {
    /// Build a system. `make_policy(pool)` constructs the replacement
    /// policy of each pool; `initial_assignment[user]` must name a valid
    /// pool for every user of `universe`.
    pub fn new(
        config: PoolsConfig,
        universe: Universe,
        initial_assignment: Vec<usize>,
        mut make_policy: impl FnMut(usize) -> Box<dyn ReplacementPolicy>,
    ) -> Self {
        assert_eq!(
            initial_assignment.len(),
            universe.num_users() as usize,
            "one pool per user"
        );
        assert!(
            initial_assignment.iter().all(|&p| p < config.num_pools()),
            "assignment references a pool that does not exist"
        );
        let engines = (0..config.num_pools())
            .map(|i| SteppingEngine::new(config.pool_sizes[i], universe.clone(), make_policy(i)))
            .collect();
        PoolSystem {
            config,
            universe,
            engines,
            assignment: initial_assignment,
            migrations: 0,
            dropped_pages: 0,
        }
    }

    /// Serve one request: routed to the owner's current pool.
    pub fn serve(&mut self, req: Request) -> StepOutcome {
        let pool = self.assignment[req.user.index()];
        self.engines[pool].step(req)
    }

    /// Migrate `user` to `to_pool`: the user's cached pages are dropped
    /// from the old pool (freeing space there) and the switching fee is
    /// charged. No-op if the user is already there.
    pub fn migrate(&mut self, user: UserId, to_pool: usize) {
        assert!(to_pool < self.config.num_pools(), "no such pool");
        let from = self.assignment[user.index()];
        if from == to_pool {
            return;
        }
        let dropped = self.engines[from].remove_user_externally(user);
        self.dropped_pages += dropped as u64;
        self.assignment[user.index()] = to_pool;
        self.migrations += 1;
    }

    /// Per-user total miss counts, aggregated across pools (a user only
    /// ever misses in its current pool, but history spans pools).
    pub fn miss_vector(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.universe.num_users() as usize];
        for eng in &self.engines {
            for (u, s) in eng.stats().per_user().iter().enumerate() {
                v[u] += s.misses;
            }
        }
        v
    }

    /// Total objective: `Σ_i f_i(misses_i) + switching_cost × migrations`.
    pub fn total_cost(&self, costs: &CostProfile) -> f64 {
        costs.total_cost(&self.miss_vector()) + self.config.switching_cost * self.migrations as f64
    }

    /// Number of migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Pages dropped from caches by migrations so far.
    pub fn dropped_pages(&self) -> u64 {
        self.dropped_pages
    }

    /// Current user→pool assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The configuration.
    pub fn config(&self) -> &PoolsConfig {
        &self.config
    }

    /// The universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Cached-page count per pool (occupancy).
    pub fn occupancy(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.cache().len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_core::{CostProfile, Monomial};
    use occ_sim::PageId;

    fn lru_factory(_: usize) -> Box<dyn ReplacementPolicy> {
        Box::new(Lru::new())
    }

    fn system(switching: f64) -> PoolSystem {
        // 4 users × 2 pages; 2 pools of 3 pages.
        PoolSystem::new(
            PoolsConfig::uniform(2, 3, switching),
            Universe::uniform(4, 2),
            vec![0, 0, 1, 1],
            lru_factory,
        )
    }

    #[test]
    fn requests_route_to_assigned_pool() {
        let mut s = system(1.0);
        let u = s.universe().clone();
        // User 0 (pool 0) and user 2 (pool 1) fill separate caches.
        s.serve(u.request(PageId(0)));
        s.serve(u.request(PageId(4)));
        assert_eq!(s.occupancy(), vec![1, 1]);
        assert_eq!(s.miss_vector(), vec![1, 0, 1, 0]);
    }

    #[test]
    fn migration_drops_pages_and_charges_fee() {
        let mut s = system(10.0);
        let u = s.universe().clone();
        s.serve(u.request(PageId(0)));
        s.serve(u.request(PageId(1)));
        assert_eq!(s.occupancy(), vec![2, 0]);
        s.migrate(UserId(0), 1);
        assert_eq!(s.occupancy(), vec![0, 0]);
        assert_eq!(s.migrations(), 1);
        assert_eq!(s.dropped_pages(), 2);
        // Re-request: misses again, now in pool 1.
        s.serve(u.request(PageId(0)));
        assert_eq!(s.occupancy(), vec![0, 1]);
        let costs = CostProfile::uniform(4, Monomial::power(1.0));
        // 3 misses + 1 migration × 10.
        assert_eq!(s.total_cost(&costs), 3.0 + 10.0);
    }

    #[test]
    fn migrate_to_same_pool_is_free() {
        let mut s = system(10.0);
        s.migrate(UserId(0), 0);
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn pools_are_isolated() {
        // Thrashing in pool 0 never evicts pool 1's pages.
        let mut s = system(0.0);
        let u = s.universe().clone();
        s.serve(u.request(PageId(4))); // user 2 → pool 1
        for _ in 0..5 {
            for p in [0u32, 1, 2, 3] {
                s.serve(u.request(PageId(p))); // users 0,1 churn pool 0
            }
        }
        // User 2's page is still resident: a re-request hits.
        let before = s.miss_vector()[2];
        s.serve(u.request(PageId(4)));
        assert_eq!(s.miss_vector()[2], before);
    }

    #[test]
    #[should_panic(expected = "no such pool")]
    fn migrate_to_missing_pool_panics() {
        system(0.0).migrate(UserId(0), 9);
    }
}
