#![warn(missing_docs)]
//! Multiple memory pools with user migration — the paper's §5 future
//! work, built out:
//!
//! > *"An interesting direction for future work is to consider the case
//! > of multiple memory pools (e.g., each pool corresponds to a single
//! > physical server), where each user has to be assigned to a single
//! > pool, with potentially switching cost incurred for migrating users
//! > between servers."*
//!
//! * [`PoolSystem`] — several independent caches (each with its own
//!   replacement policy, typically the paper's
//!   [`occ_core::ConvexCaching`]), request routing by user assignment,
//!   and migration that drops the migrating user's cached pages and
//!   charges a switching fee;
//! * [`PoolAssigner`] — the placement/rebalancing interface, with
//!   [`StaticAssigner`], [`LoadBalancer`] (cost-blind) and
//!   [`CostAwareRebalancer`] (moves the user under the highest convex
//!   cost pressure when the estimated relief clears the fee);
//! * [`run_pools`] — epoch-driven execution over a trace.
//!
//! The `exp_pools` binary in `occ-bench` sweeps switching costs and
//! compares assigners; see EXPERIMENTS.md.
//!
//! ```
//! use occ_core::{ConvexCaching, CostProfile, Monomial};
//! use occ_pools::{run_pools, PoolsConfig, StaticAssigner};
//! use occ_sim::{ReplacementPolicy, Trace, Universe};
//!
//! // Four single-page users served by two pools of 2 pages each.
//! let universe = Universe::uniform(4, 1);
//! let trace = Trace::from_page_indices(&universe, &[0, 1, 2, 3, 0, 1, 2, 3]);
//! let costs = CostProfile::uniform(4, Monomial::power(2.0));
//!
//! let result = run_pools(
//!     &trace,
//!     PoolsConfig::uniform(2, 2, 10.0),
//!     &costs,
//!     &mut StaticAssigner,
//!     4, // epoch length
//!     |_pool| Box::new(ConvexCaching::new(
//!         CostProfile::uniform(4, Monomial::power(2.0)),
//!     )) as Box<dyn ReplacementPolicy>,
//! );
//! // Round-robin placement gives each pool two single-page users: all
//! // eight requests fit, so only the four compulsory misses occur.
//! assert_eq!(result.misses, vec![1, 1, 1, 1]);
//! assert_eq!(result.migrations, 0);
//! ```

pub mod assigner;
pub mod runner;
pub mod system;

pub use assigner::{CostAwareRebalancer, EpochView, LoadBalancer, PoolAssigner, StaticAssigner};
pub use runner::{run_pools, PoolsRunResult};
pub use system::{PoolSystem, PoolsConfig};
