//! Epoch-driven execution of a multi-pool system over a trace.

use crate::assigner::{EpochView, PoolAssigner};
use crate::system::{PoolSystem, PoolsConfig};
use occ_core::CostProfile;
use occ_sim::{ReplacementPolicy, Trace};

/// Outcome of a multi-pool run.
#[derive(Clone, Debug)]
pub struct PoolsRunResult {
    /// Per-user miss counts (aggregated over pools).
    pub misses: Vec<u64>,
    /// Migrations performed.
    pub migrations: u64,
    /// Pages dropped from caches by migrations.
    pub dropped_pages: u64,
    /// `Σ_i f_i(misses_i)`.
    pub miss_cost: f64,
    /// `switching_cost × migrations`.
    pub switching_total: f64,
    /// Final user→pool assignment.
    pub final_assignment: Vec<usize>,
}

impl PoolsRunResult {
    /// The full objective: miss cost plus switching fees.
    pub fn total_cost(&self) -> f64 {
        self.miss_cost + self.switching_total
    }
}

/// Run `trace` through a multi-pool system, invoking `assigner` at every
/// `epoch_len`-request boundary.
pub fn run_pools(
    trace: &Trace,
    config: PoolsConfig,
    costs: &CostProfile,
    assigner: &mut dyn PoolAssigner,
    epoch_len: u64,
    make_policy: impl FnMut(usize) -> Box<dyn ReplacementPolicy>,
) -> PoolsRunResult {
    assert!(epoch_len >= 1);
    let universe = trace.universe().clone();
    let num_users = universe.num_users() as usize;
    let initial = assigner.initial(universe.num_users(), config.num_pools());
    let switching_cost = config.switching_cost;
    let mut system = PoolSystem::new(config, universe, initial, make_policy);

    let mut epoch = 0u64;
    let mut epoch_requests = vec![0u64; num_users];
    let mut misses_at_epoch_start = vec![0u64; num_users];

    for (t, req) in trace.iter() {
        system.serve(req);
        epoch_requests[req.user.index()] += 1;

        if (t + 1) % epoch_len == 0 {
            let total_misses = system.miss_vector();
            let epoch_misses: Vec<u64> = total_misses
                .iter()
                .zip(&misses_at_epoch_start)
                .map(|(&now, &then)| now - then)
                .collect();
            let moves = {
                let view = EpochView {
                    epoch,
                    assignment: system.assignment(),
                    pool_sizes: &system.config().pool_sizes,
                    epoch_misses: &epoch_misses,
                    epoch_requests: &epoch_requests,
                    total_misses: &total_misses,
                    costs,
                    switching_cost,
                };
                assigner.rebalance(&view)
            };
            for (user, pool) in moves {
                system.migrate(user, pool);
            }
            epoch += 1;
            epoch_requests.iter_mut().for_each(|r| *r = 0);
            misses_at_epoch_start = system.miss_vector();
        }
    }

    let misses = system.miss_vector();
    PoolsRunResult {
        miss_cost: costs.total_cost(&misses),
        switching_total: switching_cost * system.migrations() as f64,
        migrations: system.migrations(),
        dropped_pages: system.dropped_pages(),
        final_assignment: system.assignment().to_vec(),
        misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assigner::{CostAwareRebalancer, StaticAssigner};
    use occ_baselines::Lru;
    use occ_core::{ConvexCaching, CostProfile, Monomial};
    use occ_sim::{Trace, Universe};

    fn lru_factory(_: usize) -> Box<dyn occ_sim::ReplacementPolicy> {
        Box::new(Lru::new())
    }

    /// Four users; users 0 and 1 cycle over big working sets (conflict
    /// when colocated), users 2 and 3 are quiet.
    fn conflict_trace() -> Trace {
        let universe = Universe::uniform(4, 4);
        let mut pages = Vec::new();
        for i in 0..4_000u32 {
            pages.push(i % 4); // user 0, all 4 pages
            pages.push(4 + (i % 4)); // user 1, all 4 pages
            if i % 8 == 0 {
                pages.push(8); // user 2, single page
                pages.push(12); // user 3, single page
            }
        }
        Trace::from_page_indices(&universe, &pages)
    }

    #[test]
    fn static_colocation_thrashes_but_rebalancer_escapes() {
        let trace = conflict_trace();
        let costs = CostProfile::uniform(4, Monomial::power(2.0));
        // Round-robin initial placement puts users 0 and 2 in pool 0,
        // users 1 and 3 in pool 1 — already separated; force the bad
        // placement by a custom static assigner.
        struct Colocate;
        impl PoolAssigner for Colocate {
            fn name(&self) -> String {
                "colocate".into()
            }
            fn initial(&mut self, _n: u32, _p: usize) -> Vec<usize> {
                vec![0, 0, 1, 1] // both heavy users share pool 0
            }
        }
        let cfg = || PoolsConfig::uniform(2, 5, 50.0);
        let colocated = run_pools(&trace, cfg(), &costs, &mut Colocate, 500, lru_factory);
        let mut rebal = CostAwareRebalancer::default();
        struct ColocateRebal(CostAwareRebalancer);
        impl PoolAssigner for ColocateRebal {
            fn name(&self) -> String {
                "colocate+rebalance".into()
            }
            fn initial(&mut self, _n: u32, _p: usize) -> Vec<usize> {
                vec![0, 0, 1, 1]
            }
            fn rebalance(&mut self, view: &EpochView) -> Vec<(occ_sim::UserId, usize)> {
                self.0.rebalance(view)
            }
        }
        let rebalanced = run_pools(
            &trace,
            cfg(),
            &costs,
            &mut ColocateRebal(std::mem::take(&mut rebal)),
            500,
            lru_factory,
        );
        assert!(rebalanced.migrations >= 1, "rebalancer must act");
        assert!(
            rebalanced.total_cost() < colocated.total_cost(),
            "escaping colocation must pay off: {} vs {}",
            rebalanced.total_cost(),
            colocated.total_cost()
        );
    }

    #[test]
    fn static_assignment_never_migrates() {
        let trace = conflict_trace();
        let costs = CostProfile::uniform(4, Monomial::power(2.0));
        let r = run_pools(
            &trace,
            PoolsConfig::uniform(2, 5, 1.0),
            &costs,
            &mut StaticAssigner,
            500,
            lru_factory,
        );
        assert_eq!(r.migrations, 0);
        assert_eq!(r.switching_total, 0.0);
        assert_eq!(r.final_assignment, vec![0, 1, 0, 1]);
    }

    #[test]
    fn convex_caching_works_inside_pools() {
        let trace = conflict_trace();
        let costs = CostProfile::uniform(4, Monomial::power(2.0));
        let costs_for_factory = costs.clone();
        let r = run_pools(
            &trace,
            PoolsConfig::uniform(2, 5, 1.0),
            &costs,
            &mut StaticAssigner,
            500,
            move |_| Box::new(ConvexCaching::new(costs_for_factory.clone())),
        );
        assert!(r.miss_cost > 0.0);
        assert_eq!(r.misses.len(), 4);
    }

    #[test]
    fn infinite_switching_cost_freezes_cost_aware_assigner() {
        let trace = conflict_trace();
        let costs = CostProfile::uniform(4, Monomial::power(2.0));
        let mut assigner = CostAwareRebalancer::default();
        let r = run_pools(
            &trace,
            PoolsConfig::uniform(2, 5, 1e18),
            &costs,
            &mut assigner,
            500,
            lru_factory,
        );
        assert_eq!(r.migrations, 0, "no relief can clear an infinite fee");
    }

    #[test]
    fn single_pool_system_degenerates_to_plain_cache() {
        // One pool of size k must reproduce the plain simulator exactly.
        let trace = conflict_trace();
        let costs = CostProfile::uniform(4, Monomial::power(2.0));
        let pooled = run_pools(
            &trace,
            PoolsConfig::uniform(1, 6, 0.0),
            &costs,
            &mut StaticAssigner,
            1_000,
            lru_factory,
        );
        let mut lru = Lru::new();
        let flat = occ_sim::Simulator::new(6).run(&mut lru, &trace);
        assert_eq!(pooled.misses, flat.miss_vector());
    }
}
