//! Shared helpers for the policies' checkpoint implementations
//! ([`save_state`] / [`load_state`]): lossless encoding of page
//! sequences and the validation every loader shares. Loaders must reject
//! corrupt bags with typed errors instead of panicking, and the intrusive
//! list structures panic on duplicate links, so decoding checks range,
//! cache membership, and duplicates before any structure is touched.
//!
//! [`save_state`]: occ_sim::ReplacementPolicy::save_state
//! [`load_state`]: occ_sim::ReplacementPolicy::load_state

use occ_sim::{EngineCtx, PageId, SnapshotError};

/// Encode a front→back page sequence as checkpoint integers.
pub(crate) fn encode_pages(pages: impl Iterator<Item = PageId>) -> Vec<u64> {
    pages.map(|p| p.0 as u64).collect()
}

/// Decodes page sequences while tracking duplicates *across* sequences,
/// so multi-list policies (marking's unmarked + marked) can guarantee a
/// page appears in at most one restored list.
pub(crate) struct PageDecoder {
    seen: Vec<bool>,
}

impl PageDecoder {
    /// A decoder for the restored engine's page universe.
    pub(crate) fn new(ctx: &EngineCtx) -> Self {
        PageDecoder {
            seen: vec![false; ctx.universe.num_pages() as usize],
        }
    }

    /// Decode one page sequence, requiring every page to be in range,
    /// currently cached, and not yet decoded by this decoder.
    pub(crate) fn cached_pages(
        &mut self,
        ctx: &EngineCtx,
        raw: &[u64],
        key: &str,
    ) -> Result<Vec<PageId>, SnapshotError> {
        raw.iter()
            .map(|&v| {
                let page = u32::try_from(v)
                    .map(PageId)
                    .map_err(|_| corrupt(key, format!("page id {v} overflows u32")))?;
                if page.0 >= ctx.universe.num_pages() {
                    return Err(corrupt(key, format!("page {} out of range", page.0)));
                }
                if !ctx.cache.contains(page) {
                    return Err(corrupt(key, format!("page {} is not cached", page.0)));
                }
                if std::mem::replace(&mut self.seen[page.index()], true) {
                    return Err(corrupt(key, format!("page {} listed twice", page.0)));
                }
                Ok(page)
            })
            .collect()
    }
}

/// Decode a `u32` vector stored as checkpoint `u64`s.
pub(crate) fn decode_u32s(raw: &[u64], key: &str) -> Result<Vec<u32>, SnapshotError> {
    raw.iter()
        .map(|&v| u32::try_from(v).map_err(|_| corrupt(key, format!("{v} overflows u32"))))
        .collect()
}

/// Decode the four xoshiro words of a checkpointed RNG.
pub(crate) fn decode_rng(raw: &[u64], key: &str) -> Result<[u64; 4], SnapshotError> {
    <[u64; 4]>::try_from(raw)
        .map_err(|_| corrupt(key, format!("{} RNG words, expected 4", raw.len())))
}

/// A `policy.<key>: …` corruption error.
pub(crate) fn corrupt(key: &str, what: String) -> SnapshotError {
    SnapshotError::Corrupt(format!("policy.{key}: {what}"))
}
