//! LFU — evict the least-frequently-used page (ties by recency).

use crate::state_util::corrupt;
use occ_sim::{EngineCtx, PageId, PolicyState, ReplacementPolicy, SnapshotError};
use std::collections::BTreeSet;

/// Least-frequently-used replacement; frequency counts persist across a
/// page's evictions (classic "perfect LFU").
#[derive(Debug, Default)]
pub struct Lfu {
    seq: u64,
    /// Lifetime reference count per page.
    count: Vec<u64>,
    /// Last-use stamp per page.
    stamp: Vec<u64>,
    /// Cached pages ordered by (count, stamp): lowest count first, oldest
    /// first within a count.
    order: BTreeSet<(u64, u64, u32)>,
}

impl Lfu {
    /// A fresh LFU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId, cached_before: bool) {
        let n = ctx.universe.num_pages() as usize;
        if self.count.len() < n {
            self.count.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        if cached_before {
            self.order
                .remove(&(self.count[page.index()], self.stamp[page.index()], page.0));
        }
        self.seq += 1;
        self.count[page.index()] += 1;
        self.stamp[page.index()] = self.seq;
        self.order
            .insert((self.count[page.index()], self.stamp[page.index()], page.0));
    }
}

impl ReplacementPolicy for Lfu {
    fn name(&self) -> String {
        "lfu".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, true);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, false);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let &entry = self.order.first().expect("cache is full");
        self.order.remove(&entry);
        PageId(entry.2)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order
            .remove(&(self.count[page.index()], self.stamp[page.index()], page.0));
    }

    fn reset(&mut self) {
        self.seq = 0;
        self.count.clear();
        self.stamp.clear();
        self.order.clear();
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64("seq", self.seq);
        s.set_u64s("count", self.count.clone());
        s.set_u64s("stamp", self.stamp.clone());
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        let seq = state.u64("seq")?;
        let count = state.u64s("count")?;
        let stamp = state.u64s_len("stamp", count.len())?;
        if count.len() > ctx.universe.num_pages() as usize {
            return Err(corrupt(
                "count",
                format!(
                    "{} entries for {} pages",
                    count.len(),
                    ctx.universe.num_pages()
                ),
            ));
        }
        // The order set holds exactly the cached pages keyed by the saved
        // counters, so it is rebuilt rather than stored.
        if let Some(p) = ctx.cache.iter().find(|p| p.index() >= count.len()) {
            return Err(corrupt(
                "count",
                format!("no entry for cached page {}", p.0),
            ));
        }
        self.seq = seq;
        self.count = count.to_vec();
        self.stamp = stamp.to_vec();
        self.order = ctx
            .cache
            .iter()
            .map(|p| (self.count[p.index()], self.stamp[p.index()], p.0))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn evicts_lowest_frequency() {
        // 0 0 0 1 2: when 2 arrives, counts are 0:3, 1:1 → evict 1.
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 0, 0, 1, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Lfu::new(), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(4, PageId(1))]);
    }

    #[test]
    fn frequency_survives_eviction() {
        // Build frequency for 0, evict it, bring it back: its count
        // should still protect it.
        let u = Universe::single_user(3);
        // 0×3, 1, 2 (evicts 1: count 0=3 beats 1=1), then 1 again evicts 2.
        let trace = Trace::from_page_indices(&u, &[0, 0, 0, 1, 2, 1]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Lfu::new(), &trace);
        let ev = r.events.unwrap().eviction_sequence();
        assert_eq!(ev, vec![(4, PageId(1)), (5, PageId(2))]);
    }

    #[test]
    fn ties_broken_by_oldest() {
        let u = Universe::single_user(3);
        // 0 and 1 both count 1; 0 older → evicted.
        let trace = Trace::from_page_indices(&u, &[0, 1, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Lfu::new(), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(2, PageId(0))]);
    }
}
