//! Cost-aware greedy — a myopic baseline between cost-blind LRU and the
//! paper's primal–dual algorithm.
//!
//! On every eviction it charges users their *current marginal* cost only:
//! victim = the page of the user with the smallest next-eviction marginal
//! `Δf_u(m_u)`, LRU within the user. Unlike ALG-DISCRETE it carries no
//! dual state across requests, so a user whose marginal is temporarily
//! lowest absorbs *every* eviction until its marginal catches up — the
//! precise failure mode the budget mechanism exists to smooth. Keeping
//! this baseline in the experiment suite shows the dual accounting (and
//! not mere cost-awareness) is what earns the guarantee.

use occ_core::{CostProfile, Marginals};
use occ_sim::{EngineCtx, PageId, ReplacementPolicy, UserId};
use std::collections::VecDeque;

/// Myopic marginal-cost eviction (LRU within the chosen user).
#[derive(Debug)]
pub struct CostGreedy {
    costs: CostProfile,
    mode: Marginals,
    /// Per-user recency queue of (page, seq); lazily invalidated.
    queues: Vec<VecDeque<(u32, u64)>>,
    last_seq: Vec<u64>,
    seq: u64,
}

impl CostGreedy {
    /// Create from the per-user cost profile.
    pub fn new(costs: CostProfile) -> Self {
        CostGreedy {
            costs,
            mode: Marginals::Derivative,
            queues: Vec::new(),
            last_seq: Vec::new(),
            seq: 0,
        }
    }

    /// Use discrete marginals instead of derivatives.
    pub fn with_marginals(mut self, mode: Marginals) -> Self {
        self.mode = mode;
        self
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        let users = ctx.universe.num_users() as usize;
        let pages = ctx.universe.num_pages() as usize;
        if self.queues.len() < users {
            self.queues.resize_with(users, VecDeque::new);
        }
        if self.last_seq.len() < pages {
            self.last_seq.resize(pages, 0);
        }
        self.seq += 1;
        self.last_seq[page.index()] = self.seq;
        self.queues[ctx.universe.owner(page).index()].push_back((page.0, self.seq));
    }
}

impl ReplacementPolicy for CostGreedy {
    fn name(&self) -> String {
        "cost-greedy".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let mut best: Option<(f64, u64, u32, usize)> = None;
        for u in 0..self.queues.len() {
            // Pop entries that are stale (page evicted or re-requested).
            while let Some(&(p, s)) = self.queues[u].front() {
                if self.last_seq[p as usize] != s || !ctx.cache.contains(PageId(p)) {
                    self.queues[u].pop_front();
                } else {
                    break;
                }
            }
            let Some(&(p, s)) = self.queues[u].front() else {
                continue;
            };
            // m(u, t−1) from the engine's pre-eviction stats.
            let m = ctx.stats.per_user()[u].evictions;
            let marginal = self
                .costs
                .next_eviction_cost(self.mode, UserId(u as u32), m);
            let better = match best {
                None => true,
                Some((bm, bs, bp, _)) => {
                    (marginal, s, p).partial_cmp(&(bm, bs, bp)) == Some(std::cmp::Ordering::Less)
                }
            };
            if better {
                best = Some((marginal, s, p, u));
            }
        }
        let (_, _, page, user) = best.expect("cache is full");
        self.queues[user].pop_front();
        PageId(page)
    }

    fn reset(&mut self) {
        self.queues.clear();
        self.last_seq.clear();
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_core::{CostFn, Linear, Monomial};
    use occ_sim::{Simulator, Trace, Universe};
    use std::sync::Arc;

    #[test]
    fn always_charges_cheapest_marginal_user() {
        // u0 quadratic, u1 linear(10): early on u0's marginal f'(1)=2 is
        // far below 10, so u0 absorbs the first evictions even as they
        // accumulate — the myopic behavior described in the module docs.
        let u = Universe::uniform(2, 3);
        let costs = CostProfile::new(vec![
            Arc::new(Monomial::power(2.0)) as CostFn,
            Arc::new(Linear::new(10.0)) as CostFn,
        ]);
        let mut pages = Vec::new();
        for i in 0..12u32 {
            pages.push(i % 3); // u0
            pages.push(3 + (i % 3)); // u1
        }
        let trace = Trace::from_page_indices(&u, &pages);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut CostGreedy::new(costs), &trace);
        let evs = r.events.unwrap().eviction_sequence();
        // The first victims must be u0 pages (ids < 3): marginals 2, 4 are
        // below u1's flat 10. (With k=2 u0 runs out of cached pages after
        // that, so only the first two evictions are forced.)
        let first_u0: Vec<bool> = evs.iter().take(2).map(|&(_, p)| p.0 < 3).collect();
        assert!(first_u0.iter().all(|&b| b), "evictions: {evs:?}");
    }

    #[test]
    fn uniform_linear_reduces_to_lru() {
        use crate::lru::Lru;
        let u = Universe::uniform(2, 3);
        let costs = CostProfile::uniform(2, Linear::unit());
        let pages: Vec<u32> = (0..200u32).map(|i| (i * 7 + 5) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let a = Simulator::new(3)
            .record_events(true)
            .run(&mut CostGreedy::new(costs), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        let b = Simulator::new(3)
            .record_events(true)
            .run(&mut Lru::new(), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        assert_eq!(a, b);
    }
}
