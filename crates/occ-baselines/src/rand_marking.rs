//! Randomized marking — the classical `O(log k)`-competitive randomized
//! paging algorithm (Fiat et al.), referenced by the paper via Bansal,
//! Buchbinder & Naor \[3\], who bring randomization to *weighted* caching.
//!
//! Identical phase structure to deterministic [`crate::Marking`], but the
//! victim is a *uniformly random* unmarked page. Against oblivious
//! adversaries this breaks the `Ω(k)` deterministic barrier; against the
//! §4 *adaptive* adversary it does not (the adversary sees the cache) —
//! both facts are exercised by the experiment suite.
//!
//! [`RandomizedMarking`] (the default) keeps the unmarked cached pages in
//! a dense swap-remove pool with a per-page position index: marking,
//! victim sampling, and removal are all `O(1)` with no per-eviction
//! allocation, and the `O(k)` pool rebuild at a phase reset amortizes to
//! `O(1)` per request because a phase spans at least `k` requests.
//! [`RandomizedMarkingReference`] is the original form that collects the
//! unmarked pages into a fresh `Vec` on every eviction. The two draw from
//! the *same* uniform distribution but index differently-ordered arrays,
//! so runs with equal seeds pick different (equally valid) victims —
//! equivalence tests are therefore behavioral (victims always unmarked,
//! seeded reproducibility, forced-choice traces identical) rather than
//! byte-identical.

use crate::state_util::{corrupt, decode_rng, PageDecoder};
use occ_sim::{EngineCtx, PageId, PolicyState, ReplacementPolicy, SnapshotError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NIL: u32 = u32::MAX;

/// Randomized marking with a seeded RNG (reproducible runs) and `O(1)`
/// amortized victim selection.
#[derive(Debug)]
pub struct RandomizedMarking {
    seed: u64,
    rng: StdRng,
    marked: Vec<bool>,
    /// Dense pool of unmarked cached pages.
    pool: Vec<u32>,
    /// Position of each page in `pool`, or `NIL`.
    pos: Vec<u32>,
}

impl RandomizedMarking {
    /// Create with an explicit RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomizedMarking {
            seed,
            rng: StdRng::seed_from_u64(seed),
            marked: Vec::new(),
            pool: Vec::new(),
            pos: Vec::new(),
        }
    }

    fn ensure(&mut self, ctx: &EngineCtx) {
        let n = ctx.universe.num_pages() as usize;
        if self.marked.len() < n {
            self.marked.resize(n, false);
            self.pos.resize(n, NIL);
        }
    }

    /// Swap-remove `page` from the unmarked pool.
    #[inline]
    fn pool_remove(&mut self, page: PageId) {
        let i = self.pos[page.index()] as usize;
        let last = self.pool.pop().expect("pool holds the page being removed");
        if i < self.pool.len() {
            self.pool[i] = last;
            self.pos[last as usize] = i as u32;
        }
        self.pos[page.index()] = NIL;
    }

    #[inline]
    fn mark(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure(ctx);
        if self.pos[page.index()] != NIL {
            self.pool_remove(page);
        }
        self.marked[page.index()] = true;
    }
}

impl ReplacementPolicy for RandomizedMarking {
    fn name(&self) -> String {
        "rand-marking".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.mark(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.mark(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        if self.pool.is_empty() {
            // New phase: unmark everything cached and rebuild the pool,
            // reusing its capacity.
            for p in ctx.cache.iter() {
                self.marked[p.index()] = false;
                self.pos[p.index()] = self.pool.len() as u32;
                self.pool.push(p.0);
            }
        }
        let i = self.rng.gen_range(0..self.pool.len());
        let victim = PageId(self.pool[i]);
        self.pool_remove(victim);
        victim
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        if page.index() < self.pos.len() && self.pos[page.index()] != NIL {
            self.pool_remove(page);
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.marked.clear();
        self.pool.clear();
        self.pos.clear();
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64("seed", self.seed);
        s.set_u64s("rng", self.rng.state().to_vec());
        s.set_u64s("marked", self.marked.iter().map(|&m| m as u64).collect());
        s.set_u64s("pool", self.pool.iter().map(|&p| p as u64).collect());
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        let seed = state.u64("seed")?;
        let rng = decode_rng(state.u64s("rng")?, "rng")?;
        let marked_raw = state.u64s("marked")?;
        if marked_raw.len() > ctx.universe.num_pages() as usize {
            return Err(corrupt(
                "marked",
                format!(
                    "{} entries for {} pages",
                    marked_raw.len(),
                    ctx.universe.num_pages()
                ),
            ));
        }
        let marked: Vec<bool> = marked_raw
            .iter()
            .map(|&m| match m {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(corrupt("marked", format!("flag {other} is not 0/1"))),
            })
            .collect::<Result<_, _>>()?;
        let pool = PageDecoder::new(ctx).cached_pages(ctx, state.u64s("pool")?, "pool")?;
        // `pos` is derived: each pool member's index, NIL elsewhere.
        let mut pos = vec![NIL; marked.len()];
        for (i, p) in pool.iter().enumerate() {
            if p.index() >= marked.len() {
                return Err(corrupt("pool", format!("page {} has no marked flag", p.0)));
            }
            if marked[p.index()] {
                return Err(corrupt("pool", format!("page {} is marked", p.0)));
            }
            pos[p.index()] = i as u32;
        }
        self.seed = seed;
        self.rng = StdRng::from_state(rng);
        self.marked = marked;
        self.pool = pool.iter().map(|p| p.0).collect();
        self.pos = pos;
        Ok(())
    }
}

/// The original collect-then-sample randomized marking (a fresh `Vec`
/// per eviction), retained as the behavioral oracle and benchmark
/// baseline for [`RandomizedMarking`].
#[derive(Debug)]
pub struct RandomizedMarkingReference {
    seed: u64,
    rng: StdRng,
    marked: Vec<bool>,
}

impl RandomizedMarkingReference {
    /// Create with an explicit RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomizedMarkingReference {
            seed,
            rng: StdRng::seed_from_u64(seed),
            marked: Vec::new(),
        }
    }

    fn mark(&mut self, ctx: &EngineCtx, page: PageId) {
        let n = ctx.universe.num_pages() as usize;
        if self.marked.len() < n {
            self.marked.resize(n, false);
        }
        self.marked[page.index()] = true;
    }
}

impl ReplacementPolicy for RandomizedMarkingReference {
    fn name(&self) -> String {
        "rand-marking-reference".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.mark(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.mark(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        if ctx.cache.iter().all(|p| self.marked[p.index()]) {
            for p in ctx.cache.iter() {
                self.marked[p.index()] = false;
            }
        }
        let unmarked: Vec<PageId> = ctx
            .cache
            .iter()
            .filter(|p| !self.marked[p.index()])
            .collect();
        unmarked[self.rng.gen_range(0..unmarked.len())]
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.marked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn marked_pages_are_never_victims() {
        let u = Universe::single_user(6);
        let pages: Vec<u32> = (0..400u32).map(|i| (i * 7 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        // The engine itself would panic if a non-cached page were chosen;
        // here we check the run completes and is reproducible.
        let mut p = RandomizedMarking::new(3);
        let a = Simulator::new(3).run(&mut p, &trace).total_misses();
        p.reset();
        let b = Simulator::new(3).run(&mut p, &trace).total_misses();
        assert_eq!(a, b);
    }

    #[test]
    fn beats_deterministic_marking_on_oblivious_cycle_in_expectation() {
        // The (k+1)-cycle is the deterministic worst case: deterministic
        // marking misses everything. Randomized marking hits sometimes
        // because the adversary cannot aim at its random hole.
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..2_000u32).map(|i| i % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let det = Simulator::new(4)
            .run(&mut crate::Marking::new(), &trace)
            .total_misses();
        assert_eq!(det, 2_000, "deterministic marking misses every request");
        let mut total = 0u64;
        for seed in 0..5 {
            total += Simulator::new(4)
                .run(&mut RandomizedMarking::new(seed), &trace)
                .total_misses();
        }
        let avg = total / 5;
        assert!(
            avg < 1_500,
            "randomization must dodge a fixed cycle: avg {avg} misses"
        );
    }

    #[test]
    fn adaptive_adversary_still_wins() {
        // Against the §4 adversary (which observes the cache) randomness
        // does not help: every request still misses.
        use occ_sim::{AdaptiveSource, RequestSource};
        let u = Universe::uniform(5, 1);
        let mut remaining = 200;
        let mut src = AdaptiveSource::new(u, move |cached: &[PageId]| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            (0..5).map(PageId).find(|p| !cached.contains(p))
        });
        let r = Simulator::new(4).run_source(&mut RandomizedMarking::new(1), &mut src);
        assert_eq!(r.total_misses(), 200);
        let _ = &src as &dyn RequestSource;
    }

    #[test]
    fn forced_choices_match_reference_exactly() {
        // With k=1 the unmarked pool always has exactly one entry at each
        // eviction, so both implementations are forced to the same victim
        // and consume one RNG draw per eviction: the eviction sequences
        // must be byte-identical despite the differing pool layouts.
        let u = Universe::single_user(7);
        let pages: Vec<u32> = (0..500u32).map(|i| (i * 3 + 2) % 7).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let a = Simulator::new(1)
            .record_events(true)
            .run(&mut RandomizedMarking::new(42), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        let b = Simulator::new(1)
            .record_events(true)
            .run(&mut RandomizedMarkingReference::new(42), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        assert_eq!(a, b);
    }

    #[test]
    fn same_miss_profile_shape_as_reference() {
        // Pool layout changes which victim a given draw picks, but both
        // sample uniformly from the same unmarked set: averaged over seeds
        // the miss counts on a fixed cycle should be close.
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..2_000u32).map(|i| i % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let avg = |mk: &dyn Fn(u64) -> Box<dyn ReplacementPolicy>| -> u64 {
            let mut total = 0;
            for seed in 0..8 {
                let mut policy = mk(seed);
                total += Simulator::new(4).run(&mut policy, &trace).total_misses();
            }
            total / 8
        };
        let fast = avg(&|s| Box::new(RandomizedMarking::new(s)));
        let reference = avg(&|s| Box::new(RandomizedMarkingReference::new(s)));
        let diff = fast.abs_diff(reference);
        assert!(
            diff < 300,
            "distributions diverged: fast {fast} vs reference {reference}"
        );
    }
}
