//! Randomized marking — the classical `O(log k)`-competitive randomized
//! paging algorithm (Fiat et al.), referenced by the paper via Bansal,
//! Buchbinder & Naor \[3\], who bring randomization to *weighted* caching.
//!
//! Identical phase structure to deterministic [`crate::Marking`], but the
//! victim is a *uniformly random* unmarked page. Against oblivious
//! adversaries this breaks the `Ω(k)` deterministic barrier; against the
//! §4 *adaptive* adversary it does not (the adversary sees the cache) —
//! both facts are exercised by the experiment suite.

use occ_sim::{EngineCtx, PageId, ReplacementPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomized marking with a seeded RNG (reproducible runs).
#[derive(Debug)]
pub struct RandomizedMarking {
    seed: u64,
    rng: StdRng,
    marked: Vec<bool>,
}

impl RandomizedMarking {
    /// Create with an explicit RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomizedMarking {
            seed,
            rng: StdRng::seed_from_u64(seed),
            marked: Vec::new(),
        }
    }

    fn mark(&mut self, ctx: &EngineCtx, page: PageId) {
        let n = ctx.universe.num_pages() as usize;
        if self.marked.len() < n {
            self.marked.resize(n, false);
        }
        self.marked[page.index()] = true;
    }
}

impl ReplacementPolicy for RandomizedMarking {
    fn name(&self) -> String {
        "rand-marking".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.mark(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.mark(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        if ctx.cache.iter().all(|p| self.marked[p.index()]) {
            for p in ctx.cache.iter() {
                self.marked[p.index()] = false;
            }
        }
        let unmarked: Vec<PageId> = ctx
            .cache
            .iter()
            .filter(|p| !self.marked[p.index()])
            .collect();
        unmarked[self.rng.gen_range(0..unmarked.len())]
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.marked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn marked_pages_are_never_victims() {
        let u = Universe::single_user(6);
        let pages: Vec<u32> = (0..400u32).map(|i| (i * 7 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        // The engine itself would panic if a non-cached page were chosen;
        // here we check the run completes and is reproducible.
        let mut p = RandomizedMarking::new(3);
        let a = Simulator::new(3).run(&mut p, &trace).total_misses();
        p.reset();
        let b = Simulator::new(3).run(&mut p, &trace).total_misses();
        assert_eq!(a, b);
    }

    #[test]
    fn beats_deterministic_marking_on_oblivious_cycle_in_expectation() {
        // The (k+1)-cycle is the deterministic worst case: deterministic
        // marking misses everything. Randomized marking hits sometimes
        // because the adversary cannot aim at its random hole.
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..2_000u32).map(|i| i % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let det = Simulator::new(4)
            .run(&mut crate::Marking::new(), &trace)
            .total_misses();
        assert_eq!(det, 2_000, "deterministic marking misses every request");
        let mut total = 0u64;
        for seed in 0..5 {
            total += Simulator::new(4)
                .run(&mut RandomizedMarking::new(seed), &trace)
                .total_misses();
        }
        let avg = total / 5;
        assert!(
            avg < 1_500,
            "randomization must dodge a fixed cycle: avg {avg} misses"
        );
    }

    #[test]
    fn adaptive_adversary_still_wins() {
        // Against the §4 adversary (which observes the cache) randomness
        // does not help: every request still misses.
        use occ_sim::{AdaptiveSource, RequestSource};
        let u = Universe::uniform(5, 1);
        let mut remaining = 200;
        let mut src = AdaptiveSource::new(u, move |cached: &[PageId]| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            (0..5).map(PageId).find(|p| !cached.contains(p))
        });
        let r = Simulator::new(4).run_source(&mut RandomizedMarking::new(1), &mut src);
        assert_eq!(r.total_misses(), 200);
        let _ = &src as &dyn RequestSource;
    }
}
