//! Random replacement — evict a uniformly random cached page.
//!
//! Deterministically seeded so experiment runs are reproducible.

use crate::state_util::decode_rng;
use occ_sim::{EngineCtx, PageId, PolicyState, ReplacementPolicy, SnapshotError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random eviction with a fixed seed.
#[derive(Debug)]
pub struct RandomEvict {
    seed: u64,
    rng: StdRng,
}

impl RandomEvict {
    /// Create with an explicit RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomEvict {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ReplacementPolicy for RandomEvict {
    fn name(&self) -> String {
        "random".into()
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let pages = ctx.cache.pages();
        pages[self.rng.gen_range(0..pages.len())]
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64("seed", self.seed);
        s.set_u64s("rng", self.rng.state().to_vec());
        Some(s)
    }

    fn load_state(&mut self, _ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        self.seed = state.u64("seed")?;
        self.rng = StdRng::from_state(decode_rng(state.u64s("rng")?, "rng")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn deterministic_given_seed() {
        let u = Universe::single_user(6);
        let pages: Vec<u32> = (0..100).map(|i| (i * 5 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let run = |seed| {
            Simulator::new(3)
                .record_events(true)
                .run(&mut RandomEvict::new(seed), &trace)
                .events
                .unwrap()
                .eviction_sequence()
        };
        assert_eq!(run(7), run(7));
        // Different seeds should usually differ on a 100-step trace.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn reset_restores_seed() {
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..50).map(|i| (i * 3 + 2) % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let mut p = RandomEvict::new(11);
        let a = Simulator::new(2)
            .record_events(true)
            .run(&mut p, &trace)
            .events
            .unwrap()
            .eviction_sequence();
        p.reset();
        let b = Simulator::new(2)
            .record_events(true)
            .run(&mut p, &trace)
            .events
            .unwrap()
            .eviction_sequence();
        assert_eq!(a, b);
    }
}
