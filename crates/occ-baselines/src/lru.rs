//! LRU — evict the least-recently-used page.
//!
//! Sleator & Tarjan \[19\] showed LRU is `k`-competitive for unweighted
//! paging, which is the single-user linear special case of the paper's
//! model. LRU is also the cost-blind default that the cost-aware
//! algorithm is measured against in the multi-tenant experiments.
//!
//! Two implementations live here: [`Lru`], the default, keeps recency in
//! an intrusive [`PageList`] — `O(1)` per request, no allocation on the
//! hot path — and [`LruReference`] keeps the original
//! `BTreeSet<(stamp, page)>` form at `O(log k)` per request. They make
//! byte-identical eviction decisions (see the equivalence tests here and
//! the property suite in `tests/equivalence.rs`); the reference exists as
//! the oracle for those tests and as the baseline of the throughput
//! benchmarks.

use crate::state_util::{encode_pages, PageDecoder};
use occ_sim::{EngineCtx, PageId, PageList, PolicyState, ReplacementPolicy, SnapshotError};
use std::collections::BTreeSet;

/// Least-recently-used replacement in `O(1)` per operation via an
/// intrusive recency list.
#[derive(Debug, Default)]
pub struct Lru {
    /// Cached pages, oldest use at the front.
    order: PageList,
}

impl Lru {
    /// A fresh LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        self.order.ensure(ctx.universe.num_pages() as usize);
        self.order.move_to_back(page);
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> String {
        "lru".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        self.order.pop_front().expect("cache is full")
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order.remove_if_linked(page);
    }

    fn prefetch_hint(&self, page: PageId) {
        self.order.prefetch(page);
    }

    fn reset(&mut self) {
        self.order.reset();
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64s("order", encode_pages(self.order.iter()));
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        let pages = PageDecoder::new(ctx).cached_pages(ctx, state.u64s("order")?, "order")?;
        self.order.reset();
        self.order.ensure(ctx.universe.num_pages() as usize);
        for p in pages {
            self.order.push_back(p);
        }
        Ok(())
    }
}

/// The original ordered-set LRU (`O(log k)` per operation), retained as
/// the equivalence oracle and benchmark baseline for [`Lru`].
#[derive(Debug, Default)]
pub struct LruReference {
    /// Monotone counter stamping each request.
    seq: u64,
    /// Last-use stamp per page (lazily sized).
    stamp: Vec<u64>,
    /// Cached pages ordered by last-use stamp.
    order: BTreeSet<(u64, u32)>,
}

impl LruReference {
    /// A fresh reference LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId, cached_before: bool) {
        if self.stamp.len() < ctx.universe.num_pages() as usize {
            self.stamp.resize(ctx.universe.num_pages() as usize, 0);
        }
        if cached_before {
            self.order.remove(&(self.stamp[page.index()], page.0));
        }
        self.seq += 1;
        self.stamp[page.index()] = self.seq;
        self.order.insert((self.seq, page.0));
    }
}

impl ReplacementPolicy for LruReference {
    fn name(&self) -> String {
        "lru-reference".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, true);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, false);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let &(stamp, page) = self.order.first().expect("cache is full");
        self.order.remove(&(stamp, page));
        PageId(page)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order.remove(&(self.stamp[page.index()], page.0));
    }

    fn reset(&mut self) {
        self.seq = 0;
        self.stamp.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    fn misses(pages: &[u32], num_pages: u32, k: usize) -> u64 {
        let u = Universe::single_user(num_pages);
        let trace = Trace::from_page_indices(&u, pages);
        Simulator::new(k)
            .run(&mut Lru::new(), &trace)
            .total_misses()
    }

    #[test]
    fn classic_lru_behavior() {
        // 0 1 2 0 3: at 3, LRU order is 1,2,0 → evict 1.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 3]);
        let r = Simulator::new(3)
            .record_events(true)
            .run(&mut Lru::new(), &trace);
        let ev = r.events.unwrap().eviction_sequence();
        assert_eq!(ev, vec![(4, PageId(1))]);
    }

    #[test]
    fn sequential_scan_thrashes() {
        // The classic (k+1)-cycle worst case: every request misses.
        let pages: Vec<u32> = (0..40).map(|i| i % 4).collect();
        assert_eq!(misses(&pages, 4, 3), 40);
    }

    #[test]
    fn working_set_fits() {
        let pages: Vec<u32> = (0..30).map(|i| i % 3).collect();
        assert_eq!(misses(&pages, 3, 3), 3);
    }

    #[test]
    fn hit_refreshes_recency() {
        // 0 1 0 2 → evicting for 2 picks 1 (0 was refreshed).
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 0, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Lru::new(), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(3, PageId(1))]);
    }

    #[test]
    fn reset_clears_state() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0]);
        let mut lru = Lru::new();
        let a = Simulator::new(2).run(&mut lru, &trace).total_misses();
        lru.reset();
        let b = Simulator::new(2).run(&mut lru, &trace).total_misses();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_reference_eviction_for_eviction() {
        // Deterministic pseudo-random trace: the intrusive-list LRU and
        // the ordered-set LRU must evict the same pages at the same times.
        let u = Universe::single_user(16);
        let mut state = 0x9E3779B97F4A7C15u64;
        let pages: Vec<u32> = (0..3_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 16) as u32
            })
            .collect();
        let trace = Trace::from_page_indices(&u, &pages);
        for k in [1, 2, 5, 8, 15] {
            let a = Simulator::new(k)
                .record_events(true)
                .run(&mut Lru::new(), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            let b = Simulator::new(k)
                .record_events(true)
                .run(&mut LruReference::new(), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            assert_eq!(a, b, "diverged at k={k}");
        }
    }
}
