//! FIFO — evict the page that entered the cache earliest.

use occ_sim::{EngineCtx, PageId, ReplacementPolicy};
use std::collections::VecDeque;

/// First-in-first-out replacement.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<PageId>,
}

impl Fifo {
    /// A fresh FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> String {
        "fifo".into()
    }

    fn on_insert(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.queue.push_back(page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        // Skip entries whose page is no longer cached (externally removed
        // in a multi-pool system); the queue is lazily self-cleaning.
        loop {
            let p = self.queue.pop_front().expect("cache is full");
            if ctx.cache.contains(p) {
                return p;
            }
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn evicts_in_insertion_order_ignoring_hits() {
        // 0 1 0 2: FIFO evicts 0 (oldest insert) even though it just hit.
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 0, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Fifo::new(), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(3, PageId(0))]);
    }

    #[test]
    fn cycle_thrashes() {
        let u = Universe::single_user(4);
        let pages: Vec<u32> = (0..20).map(|i| i % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let r = Simulator::new(3).run(&mut Fifo::new(), &trace);
        assert_eq!(r.total_misses(), 20);
    }

    #[test]
    fn reusable_after_reset() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 1, 0]);
        let mut f = Fifo::new();
        let a = Simulator::new(2).run(&mut f, &trace).total_misses();
        f.reset();
        let b = Simulator::new(2).run(&mut f, &trace).total_misses();
        assert_eq!(a, b);
    }
}
