//! FIFO — evict the page that entered the cache earliest.
//!
//! [`Fifo`] (the default) keeps insertion order in an intrusive
//! [`PageList`]: `O(1)` per operation with no allocation and no stale
//! entries, because external removals unlink eagerly. [`FifoReference`]
//! is the original `VecDeque` form whose queue is lazily self-cleaning;
//! both make byte-identical eviction decisions.

use crate::state_util::{encode_pages, PageDecoder};
use occ_sim::{EngineCtx, PageId, PageList, PolicyState, ReplacementPolicy, SnapshotError};
use std::collections::VecDeque;

/// First-in-first-out replacement over an intrusive insertion-order list.
#[derive(Debug, Default)]
pub struct Fifo {
    /// Cached pages, earliest insert at the front.
    queue: PageList,
}

impl Fifo {
    /// A fresh FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> String {
        "fifo".into()
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.queue.ensure(ctx.universe.num_pages() as usize);
        self.queue.push_back(page);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        self.queue.pop_front().expect("cache is full")
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.queue.remove_if_linked(page);
    }

    fn prefetch_hint(&self, page: PageId) {
        self.queue.prefetch(page);
    }

    fn reset(&mut self) {
        self.queue.reset();
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64s("queue", encode_pages(self.queue.iter()));
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        let pages = PageDecoder::new(ctx).cached_pages(ctx, state.u64s("queue")?, "queue")?;
        self.queue.reset();
        self.queue.ensure(ctx.universe.num_pages() as usize);
        for p in pages {
            self.queue.push_back(p);
        }
        Ok(())
    }
}

/// The original `VecDeque` FIFO, retained as the equivalence oracle and
/// benchmark baseline for [`Fifo`].
#[derive(Debug, Default)]
pub struct FifoReference {
    queue: VecDeque<PageId>,
}

impl FifoReference {
    /// A fresh reference FIFO policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for FifoReference {
    fn name(&self) -> String {
        "fifo-reference".into()
    }

    fn on_insert(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.queue.push_back(page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        // Skip entries whose page is no longer cached (externally removed
        // in a multi-pool system); the queue is lazily self-cleaning.
        loop {
            let p = self.queue.pop_front().expect("cache is full");
            if ctx.cache.contains(p) {
                return p;
            }
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn evicts_in_insertion_order_ignoring_hits() {
        // 0 1 0 2: FIFO evicts 0 (oldest insert) even though it just hit.
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 0, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Fifo::new(), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(3, PageId(0))]);
    }

    #[test]
    fn cycle_thrashes() {
        let u = Universe::single_user(4);
        let pages: Vec<u32> = (0..20).map(|i| i % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let r = Simulator::new(3).run(&mut Fifo::new(), &trace);
        assert_eq!(r.total_misses(), 20);
    }

    #[test]
    fn reusable_after_reset() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 1, 0]);
        let mut f = Fifo::new();
        let a = Simulator::new(2).run(&mut f, &trace).total_misses();
        f.reset();
        let b = Simulator::new(2).run(&mut f, &trace).total_misses();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_reference_eviction_for_eviction() {
        let u = Universe::single_user(12);
        let mut state = 0xDEADBEEFu64;
        let pages: Vec<u32> = (0..2_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 12) as u32
            })
            .collect();
        let trace = Trace::from_page_indices(&u, &pages);
        for k in [1, 3, 7, 11] {
            let a = Simulator::new(k)
                .record_events(true)
                .run(&mut Fifo::new(), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            let b = Simulator::new(k)
                .record_events(true)
                .run(&mut FifoReference::new(), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            assert_eq!(a, b, "diverged at k={k}");
        }
    }
}
