//! Landlord / GreedyDual — the classical *weighted* caching algorithm
//! (Young \[20\]).
//!
//! Each page receives credit equal to its (static) weight when requested;
//! on eviction the minimum credit `δ` is charged to every cached page and
//! a zero-credit page is evicted. This is the `k`-competitive primal–dual
//! algorithm for linear costs — exactly the `α = 1` special case of the
//! paper. Accordingly, `GreedyDual` with per-user weights `w_i` must make
//! the *same decisions* as [`occ_core::ConvexCaching`] with
//! `f_i(x) = w_i·x` (cross-validated in the tests below), while being an
//! independent implementation with the textbook lazy-offset structure.

use occ_sim::{EngineCtx, PageId, ReplacementPolicy, UserId};
use std::collections::BTreeSet;

/// Totally ordered f64 (no NaNs in this module).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// GreedyDual/Landlord with per-user weights and a lazy global offset.
#[derive(Debug)]
pub struct GreedyDual {
    /// Per-user page weight.
    weights: Vec<f64>,
    /// Global charged offset `Σ δ`.
    offset: f64,
    seq: u64,
    /// Per-page stored credit key (`credit + offset-at-set`).
    key: Vec<f64>,
    stamp: Vec<u64>,
    /// Cached pages ordered by absolute key.
    order: BTreeSet<(Key, u64, u32)>,
}

impl GreedyDual {
    /// Create with one weight per user (`weights[i]` > 0).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        GreedyDual {
            weights,
            offset: 0.0,
            seq: 0,
            key: Vec::new(),
            stamp: Vec::new(),
            order: BTreeSet::new(),
        }
    }

    /// Uniform weight 1 for `n` users — plain unweighted paging.
    pub fn unweighted(n: u32) -> Self {
        Self::new(vec![1.0; n as usize])
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId, cached_before: bool) {
        let n = ctx.universe.num_pages() as usize;
        if self.key.len() < n {
            self.key.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        if cached_before {
            self.order.remove(&(
                Key(self.key[page.index()]),
                self.stamp[page.index()],
                page.0,
            ));
        }
        let user: UserId = ctx.universe.owner(page);
        self.seq += 1;
        // credit := weight ⇒ stored key = weight + current offset.
        self.key[page.index()] = self.weights[user.index()] + self.offset;
        self.stamp[page.index()] = self.seq;
        self.order.insert((
            Key(self.key[page.index()]),
            self.stamp[page.index()],
            page.0,
        ));
    }
}

impl ReplacementPolicy for GreedyDual {
    fn name(&self) -> String {
        "greedy-dual".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, true);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, false);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let &(key, stamp, page) = self.order.first().expect("cache is full");
        self.order.remove(&(key, stamp, page));
        // Charge δ = remaining credit of the victim to everyone (lazily).
        self.offset = key.0;
        PageId(page)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order.remove(&(
            Key(self.key[page.index()]),
            self.stamp[page.index()],
            page.0,
        ));
    }

    fn reset(&mut self) {
        self.offset = 0.0;
        self.seq = 0;
        self.key.clear();
        self.stamp.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_core::{ConvexCaching, CostFn, CostProfile, Linear};
    use occ_sim::{Simulator, Trace, Universe};
    use std::sync::Arc;

    fn pseudo_pages(len: usize, universe_pages: u32, seed: u64) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % universe_pages as u64) as u32
            })
            .collect()
    }

    #[test]
    fn unweighted_greedy_dual_is_lru() {
        use crate::lru::Lru;
        let u = Universe::single_user(6);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(300, 6, 1));
        let a = Simulator::new(3)
            .record_events(true)
            .run(&mut GreedyDual::unweighted(1), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        let b = Simulator::new(3)
            .record_events(true)
            .run(&mut Lru::new(), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        assert_eq!(a, b);
    }

    #[test]
    fn matches_convex_caching_with_linear_costs() {
        // The paper's algorithm degenerates to weighted caching when all
        // costs are linear: both implementations must agree decision for
        // decision.
        let u = Universe::uniform(3, 3);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(500, 9, 2));
        let weights = vec![1.0, 4.0, 2.0];
        let costs = CostProfile::new(
            weights
                .iter()
                .map(|&w| Arc::new(Linear::new(w)) as CostFn)
                .collect(),
        );
        for k in [2, 4, 6] {
            let a = Simulator::new(k)
                .record_events(true)
                .run(&mut GreedyDual::new(weights.clone()), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            let b = Simulator::new(k)
                .record_events(true)
                .run(&mut ConvexCaching::new(costs.clone()), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            assert_eq!(a, b, "divergence at k={k}");
        }
    }

    #[test]
    fn heavy_user_pages_survive() {
        let u = Universe::uniform(2, 2); // u0 heavy, u1 light
        let trace = Trace::from_page_indices(&u, &[0, 2, 3, 2, 3, 2, 3]);
        let mut gd = GreedyDual::new(vec![100.0, 1.0]);
        let r = Simulator::new(2).record_events(true).run(&mut gd, &trace);
        // p0 (weight 100) should never be the victim.
        for (_, victim) in r.events.unwrap().eviction_sequence() {
            assert_ne!(victim, PageId(0));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        GreedyDual::new(vec![0.0]);
    }
}
