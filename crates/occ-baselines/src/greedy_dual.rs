//! Landlord / GreedyDual — the classical *weighted* caching algorithm
//! (Young \[20\]).
//!
//! Each page receives credit equal to its (static) weight when requested;
//! on eviction the minimum credit `δ` is charged to every cached page and
//! a zero-credit page is evicted. This is the `k`-competitive primal–dual
//! algorithm for linear costs — exactly the `α = 1` special case of the
//! paper. Accordingly, [`GreedyDual`] with per-user weights `w_i` must
//! make the *same decisions* as [`occ_core::ConvexCaching`] with
//! `f_i(x) = w_i·x` (cross-validated in the tests below), while being an
//! independent implementation with the textbook lazy-offset structure.
//!
//! # Two implementations
//!
//! [`GreedyDualReference`] is the textbook structure: an ordered set of
//! `(key, stamp, page)` over all cached pages, `O(log k)` per request.
//! [`GreedyDual`] is the production implementation on flat arrays and
//! per-user intrusive recency lists ([`occ_sim::PageLists`]), `O(1)` per
//! request plus an `O(n)`-users eviction scan — the same memory layout
//! as the paper's ALG-DISCRETE fast path, with no ordered set and no
//! per-request allocation.
//!
//! The flat port is **bit-identical** to the reference, by the landlord
//! invariant: every cached key is `≥` the current offset (credit is
//! non-negative), so the offset — always set to the minimum cached key —
//! is non-decreasing. Within one user the weight term of
//! `key = w_u + offset_at_touch` is constant, so key order equals
//! touch-recency order and the per-user minimum is the recency-list
//! front; the global victim is the minimum over `n` list fronts under
//! the reference's exact comparator `(key via total order, stamp,
//! page)`. Keys are computed lazily from the same two `f64` operands
//! (`w_u + offset_at_touch`) the reference stores, so every comparison
//! sees the same bits. A property test in
//! `tests/policy_equivalence_property.rs` pins the equivalence.

use occ_sim::{prefetch_slice_element, EngineCtx, PageId, PageLists, ReplacementPolicy, UserId};
use std::collections::BTreeSet;

/// Totally ordered f64 (no NaNs in this module).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// GreedyDual/Landlord on flat arrays and per-user recency lists.
///
/// Decision-for-decision (and bit-for-bit) identical to
/// [`GreedyDualReference`]; see the module docs for the argument.
#[derive(Debug)]
pub struct GreedyDual {
    /// Per-user page weight.
    weights: Vec<f64>,
    /// Global charged offset `Σ δ` (non-decreasing).
    offset: f64,
    seq: u64,
    /// Per-page: offset at the page's last request. The page's credit
    /// key is reconstructed lazily as `w_owner + y_at` — the same two
    /// operands the reference adds eagerly.
    y_at: Vec<f64>,
    /// Per-page: sequence number of the page's last request.
    stamp: Vec<u64>,
    /// Per-user intrusive recency lists over one shared arena. Under
    /// the monotone offset, each list front is its user's minimum
    /// `(key, stamp)`.
    lists: PageLists,
}

impl GreedyDual {
    /// Create with one weight per user (`weights[i]` > 0).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        GreedyDual {
            weights,
            offset: 0.0,
            seq: 0,
            y_at: Vec::new(),
            stamp: Vec::new(),
            lists: PageLists::new(),
        }
    }

    /// Uniform weight 1 for `n` users — plain unweighted paging.
    pub fn unweighted(n: u32) -> Self {
        Self::new(vec![1.0; n as usize])
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        let pages = ctx.universe.num_pages() as usize;
        if self.y_at.len() < pages {
            self.y_at.resize(pages, 0.0);
            self.stamp.resize(pages, 0);
            self.lists.ensure(ctx.universe.num_users() as usize, pages);
        }
        let user: UserId = ctx.universe.owner(page);
        self.seq += 1;
        // credit := weight ⇒ key = weight + current offset, stored as
        // its offset component only; recency position encodes the rest.
        self.y_at[page.index()] = self.offset;
        self.stamp[page.index()] = self.seq;
        self.lists.move_to_back(user.index(), page);
    }
}

impl ReplacementPolicy for GreedyDual {
    fn name(&self) -> String {
        "greedy-dual".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        // Minimum over list fronts, under the reference comparator
        // (key by total order, stamp, page). Stamps are globally unique
        // so the page component never actually decides; it is kept for
        // exact structural parity with the ordered-set reference.
        let mut best: Option<(f64, u64, u32)> = None;
        for u in 0..self.lists.num_lists() {
            let Some(p) = self.lists.front(u) else {
                continue;
            };
            let key = self.weights[u] + self.y_at[p.index()];
            let cand = (key, self.stamp[p.index()], p.0);
            let better = match &best {
                None => true,
                Some(b) => {
                    (cand.0.total_cmp(&b.0), cand.1, cand.2) < (std::cmp::Ordering::Equal, b.1, b.2)
                }
            };
            if better {
                best = Some(cand);
            }
        }
        let (key, _, page) = best.expect("cache is full");
        self.lists.remove(PageId(page));
        // Charge δ = remaining credit of the victim to everyone (lazily).
        self.offset = key;
        PageId(page)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.lists.remove_if_linked(page);
    }

    fn prefetch_hint(&self, page: PageId) {
        self.lists.prefetch(page);
        prefetch_slice_element(&self.y_at, page.index());
        prefetch_slice_element(&self.stamp, page.index());
    }

    fn reset(&mut self) {
        self.offset = 0.0;
        self.seq = 0;
        self.y_at.clear();
        self.stamp.clear();
        self.lists.reset();
    }
}

/// The textbook GreedyDual/Landlord structure: one ordered set of
/// `(key, stamp, page)` over all cached pages, `O(log k)` per request.
///
/// Kept as the oracle for [`GreedyDual`]'s flat-array port — the two
/// must agree eviction-for-eviction, bit-for-bit.
#[derive(Debug)]
pub struct GreedyDualReference {
    /// Per-user page weight.
    weights: Vec<f64>,
    /// Global charged offset `Σ δ`.
    offset: f64,
    seq: u64,
    /// Per-page stored credit key (`credit + offset-at-set`).
    key: Vec<f64>,
    stamp: Vec<u64>,
    /// Cached pages ordered by absolute key.
    order: BTreeSet<(Key, u64, u32)>,
}

impl GreedyDualReference {
    /// Create with one weight per user (`weights[i]` > 0).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        GreedyDualReference {
            weights,
            offset: 0.0,
            seq: 0,
            key: Vec::new(),
            stamp: Vec::new(),
            order: BTreeSet::new(),
        }
    }

    /// Uniform weight 1 for `n` users — plain unweighted paging.
    pub fn unweighted(n: u32) -> Self {
        Self::new(vec![1.0; n as usize])
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId, cached_before: bool) {
        let n = ctx.universe.num_pages() as usize;
        if self.key.len() < n {
            self.key.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        if cached_before {
            self.order.remove(&(
                Key(self.key[page.index()]),
                self.stamp[page.index()],
                page.0,
            ));
        }
        let user: UserId = ctx.universe.owner(page);
        self.seq += 1;
        // credit := weight ⇒ stored key = weight + current offset.
        self.key[page.index()] = self.weights[user.index()] + self.offset;
        self.stamp[page.index()] = self.seq;
        self.order.insert((
            Key(self.key[page.index()]),
            self.stamp[page.index()],
            page.0,
        ));
    }
}

impl ReplacementPolicy for GreedyDualReference {
    fn name(&self) -> String {
        "greedy-dual-reference".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, true);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page, false);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let &(key, stamp, page) = self.order.first().expect("cache is full");
        self.order.remove(&(key, stamp, page));
        // Charge δ = remaining credit of the victim to everyone (lazily).
        self.offset = key.0;
        PageId(page)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order.remove(&(
            Key(self.key[page.index()]),
            self.stamp[page.index()],
            page.0,
        ));
    }

    fn reset(&mut self) {
        self.offset = 0.0;
        self.seq = 0;
        self.key.clear();
        self.stamp.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_core::{ConvexCaching, CostFn, CostProfile, Linear};
    use occ_sim::{Simulator, Time, Trace, Universe};
    use std::sync::Arc;

    fn pseudo_pages(len: usize, universe_pages: u32, seed: u64) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % universe_pages as u64) as u32
            })
            .collect()
    }

    fn evictions<P: ReplacementPolicy>(p: &mut P, trace: &Trace, k: usize) -> Vec<(Time, PageId)> {
        Simulator::new(k)
            .record_events(true)
            .run(p, trace)
            .events
            .unwrap()
            .eviction_sequence()
    }

    #[test]
    fn unweighted_greedy_dual_is_lru() {
        use crate::lru::Lru;
        let u = Universe::single_user(6);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(300, 6, 1));
        let a = evictions(&mut GreedyDual::unweighted(1), &trace, 3);
        let b = evictions(&mut Lru::new(), &trace, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn matches_convex_caching_with_linear_costs() {
        // The paper's algorithm degenerates to weighted caching when all
        // costs are linear: both implementations must agree decision for
        // decision.
        let u = Universe::uniform(3, 3);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(500, 9, 2));
        let weights = vec![1.0, 4.0, 2.0];
        let costs = CostProfile::new(
            weights
                .iter()
                .map(|&w| Arc::new(Linear::new(w)) as CostFn)
                .collect(),
        );
        for k in [2, 4, 6] {
            let a = evictions(&mut GreedyDual::new(weights.clone()), &trace, k);
            let b = evictions(&mut ConvexCaching::new(costs.clone()), &trace, k);
            assert_eq!(a, b, "divergence at k={k}");
        }
    }

    #[test]
    fn flat_impl_matches_reference_exactly() {
        // The flat-array port must reproduce the ordered-set reference
        // eviction-for-eviction, including irrational weights whose key
        // sums exercise float rounding.
        let u = Universe::uniform(4, 4);
        let weights = vec![1.0, 3.5, 0.25, std::f64::consts::PI];
        for (seed, k) in [(3u64, 2usize), (4, 5), (5, 9), (6, 15)] {
            let trace = Trace::from_page_indices(&u, &pseudo_pages(2000, 16, seed));
            let a = evictions(&mut GreedyDual::new(weights.clone()), &trace, k);
            let b = evictions(&mut GreedyDualReference::new(weights.clone()), &trace, k);
            assert_eq!(a, b, "divergence at seed={seed} k={k}");
        }
    }

    #[test]
    fn heavy_user_pages_survive() {
        let u = Universe::uniform(2, 2); // u0 heavy, u1 light
        let trace = Trace::from_page_indices(&u, &[0, 2, 3, 2, 3, 2, 3]);
        let mut gd = GreedyDual::new(vec![100.0, 1.0]);
        let r = Simulator::new(2).record_events(true).run(&mut gd, &trace);
        // p0 (weight 100) should never be the victim.
        for (_, victim) in r.events.unwrap().eviction_sequence() {
            assert_ne!(victim, PageId(0));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        GreedyDual::new(vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn reference_rejects_zero_weight() {
        GreedyDualReference::new(vec![0.0]);
    }
}
