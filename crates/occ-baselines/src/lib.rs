#![warn(missing_docs)]
//! Online baseline replacement policies.
//!
//! Every policy the paper positions itself against (plus the textbook
//! staples), implemented against the shared [`occ_sim`] engine so that
//! cross-policy cost comparisons differ only in eviction decisions:
//!
//! * cost-blind: [`Lru`], [`Fifo`], [`Lfu`], [`Marking`], [`RandomEvict`],
//!   [`LruK`] (the database-grade policy cited in §1.1 \[16\]);
//! * weight-aware: [`GreedyDual`] — Young's weighted caching \[20\], the
//!   `α = 1` linear special case of the paper;
//! * cost-aware but myopic: [`CostGreedy`] — marginal-cost eviction with
//!   no dual accounting, isolating the value of the paper's budgets.
//!
//! The hot-path policies ship in two forms: the default (`Lru`, `Fifo`,
//! `Marking`, `RandomizedMarking`, `LruK`, `GreedyDual`) runs on
//! `O(1)`/`O(log k)` dense structures (intrusive recency lists,
//! swap-remove pools, flat history rings), and a `*Reference` twin keeps
//! the original straightforward implementation as the equivalence oracle
//! for the property tests and the baseline for the throughput
//! benchmarks.

pub mod cost_greedy;
pub mod fifo;
pub mod greedy_dual;
pub mod lfu;
pub mod lru;
pub mod lruk;
pub mod marking;
pub mod rand_marking;
pub mod random_policy;
mod state_util;

pub use cost_greedy::CostGreedy;
pub use fifo::{Fifo, FifoReference};
pub use greedy_dual::{GreedyDual, GreedyDualReference};
pub use lfu::Lfu;
pub use lru::{Lru, LruReference};
pub use lruk::{LruK, LruKReference};
pub use marking::{Marking, MarkingReference};
pub use rand_marking::{RandomizedMarking, RandomizedMarkingReference};
pub use random_policy::RandomEvict;

use occ_core::CostProfile;
use occ_sim::ReplacementPolicy;

/// The standard suite of online policies used by the comparison
/// experiments; the paper's algorithm is added separately by callers.
///
/// `costs` parameterizes the cost-aware entries ([`CostGreedy`]) and the
/// weights of [`GreedyDual`] (taken as each user's cost at one miss,
/// `f_i(1)`, which equals `w_i` for linear profiles).
pub fn standard_suite(costs: &CostProfile) -> Vec<Box<dyn ReplacementPolicy>> {
    let weights: Vec<f64> = (0..costs.num_users())
        .map(|u| costs.user(occ_sim::UserId(u)).eval(1.0).max(1e-9))
        .collect();
    vec![
        Box::new(Lru::new()),
        Box::new(Fifo::new()),
        Box::new(Lfu::new()),
        Box::new(Marking::new()),
        Box::new(LruK::new(2)),
        Box::new(RandomEvict::new(0xC0FFEE)),
        Box::new(GreedyDual::new(weights)),
        Box::new(CostGreedy::new(costs.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_core::Monomial;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn suite_runs_end_to_end() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..120u32).map(|i| (i * 11 + 2) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let mut names = Vec::new();
        for mut policy in standard_suite(&costs) {
            let r = Simulator::new(3).run(&mut policy, &trace);
            assert!(r.total_misses() >= 6, "{} missed too little", policy.name());
            assert_eq!(r.steps, 120);
            names.push(policy.name());
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8, "policy names must be distinct");
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_for_supported_policies() {
        use occ_sim::{Request, SteppingEngine};

        // Resumed instances get *different* constructor parameters (seed,
        // for the randomized policies) so the test proves the checkpoint
        // itself — including mid-stream RNG words — carries the state.
        type Mk = fn() -> Box<dyn ReplacementPolicy>;
        let policies: Vec<(Mk, Mk)> = vec![
            (|| Box::new(Lru::new()), || Box::new(Lru::new())),
            (|| Box::new(Fifo::new()), || Box::new(Fifo::new())),
            (|| Box::new(Lfu::new()), || Box::new(Lfu::new())),
            (|| Box::new(Marking::new()), || Box::new(Marking::new())),
            (|| Box::new(LruK::new(2)), || Box::new(LruK::new(2))),
            (
                || Box::new(RandomEvict::new(42)),
                || Box::new(RandomEvict::new(999)),
            ),
            (
                || Box::new(RandomizedMarking::new(42)),
                || Box::new(RandomizedMarking::new(999)),
            ),
        ];

        let u = Universe::uniform(3, 5);
        let mut state = 0x1234_5678_9ABCu64;
        let pages: Vec<u32> = (0..400)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 15) as u32
            })
            .collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let reqs: Vec<Request> = trace.requests().to_vec();
        let (k, cut) = (6, 173);

        for (mk, mk_resumed) in policies {
            let mut full_policy = mk();
            let name = full_policy.name();

            // Uninterrupted run.
            let mut full = SteppingEngine::new(k, u.clone(), &mut full_policy).with_events();
            for &r in &reqs {
                full.step(r);
            }
            let full_events = full.take_events().unwrap();
            let full_stats = full.stats().clone();

            // Run to the cut, snapshot, resume in a fresh engine + policy.
            let mut head_policy = mk();
            let mut head = SteppingEngine::new(k, u.clone(), &mut head_policy).with_events();
            for &r in &reqs[..cut] {
                head.step(r);
            }
            let snap = head.snapshot().unwrap_or_else(|e| panic!("{name}: {e}"));
            let head_events = head.take_events().unwrap();

            let mut tail_policy = mk_resumed();
            let mut tail = SteppingEngine::from_snapshot(&snap, &mut tail_policy)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .with_events();
            for &r in &reqs[cut..] {
                tail.step(r);
            }

            let mut stitched: Vec<_> = head_events.iter().cloned().collect();
            stitched.extend(tail.take_events().unwrap().iter().cloned());
            let full_events: Vec<_> = full_events.iter().cloned().collect();
            assert_eq!(stitched, full_events, "{name}: event streams diverged");
            assert_eq!(tail.stats(), &full_stats, "{name}: stats diverged");
        }
    }

    #[test]
    fn suite_policies_are_resettable() {
        let u = Universe::single_user(4);
        let pages: Vec<u32> = (0..60u32).map(|i| (i * 3 + 1) % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        for mut policy in standard_suite(&costs) {
            let a = Simulator::new(2).run(&mut policy, &trace).total_misses();
            policy.reset();
            let b = Simulator::new(2).run(&mut policy, &trace).total_misses();
            assert_eq!(a, b, "{} is not reproducible after reset", policy.name());
        }
    }
}
