//! LRU-K (O'Neil, O'Neil & Weikum \[16\]) — evict the page whose K-th most
//! recent reference is oldest.
//!
//! The paper cites LRU-K as the production-grade cost-blind policy used
//! by shared-memory database systems; it weighs reference *history* so a
//! page touched twice recently beats a page scanned once. Pages with
//! fewer than K references have backward K-distance ∞ and are preferred
//! victims (ties by oldest last reference — the classic tie-break).
//!
//! [`LruK`] (the default) stores each page's last-K reference times in
//! one flat `num_pages × K` ring buffer (no per-page `VecDeque`, no
//! allocation after sizing) and keeps the cached pages in an incremental
//! ordered set keyed by `(kth-recent, last, page)`: touches are `O(log k)`
//! and victim selection is `O(log k)` instead of the reference's `O(k)`
//! cache scan. [`LruKReference`] is the original form; both make
//! byte-identical eviction decisions.

use crate::state_util::{corrupt, decode_u32s};
use occ_sim::{EngineCtx, PageId, PolicyState, ReplacementPolicy, SnapshotError};
use std::collections::{BTreeSet, VecDeque};

/// LRU-K replacement. `K = 1` degenerates to LRU.
#[derive(Debug)]
pub struct LruK {
    k: usize,
    seq: u64,
    /// Flat ring of the last K reference times per page:
    /// `hist[p*k + slot]`.
    hist: Vec<u64>,
    /// Next write slot of each page's ring.
    head: Vec<u32>,
    /// Number of recorded references per page, saturating at K.
    count: Vec<u32>,
    /// Cached pages ordered by `(kth-recent stamp, last stamp, page)` —
    /// the first entry is the next victim.
    order: BTreeSet<(u64, u64, u32)>,
}

impl LruK {
    /// Create LRU-K with the given history depth `K ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        LruK {
            k,
            seq: 0,
            hist: Vec::new(),
            head: Vec::new(),
            count: Vec::new(),
            order: BTreeSet::new(),
        }
    }

    fn ensure(&mut self, ctx: &EngineCtx) {
        let n = ctx.universe.num_pages() as usize;
        if self.head.len() < n {
            self.hist.resize(n * self.k, 0);
            self.head.resize(n, 0);
            self.count.resize(n, 0);
        }
    }

    /// Record a reference to `page` in its ring.
    #[inline]
    fn record(&mut self, page: PageId) {
        let base = page.index() * self.k;
        let h = self.head[page.index()] as usize;
        self.seq += 1;
        self.hist[base + h] = self.seq;
        self.head[page.index()] = ((h + 1) % self.k) as u32;
        if (self.count[page.index()] as usize) < self.k {
            self.count[page.index()] += 1;
        }
    }

    /// Backward K-distance key: the time of the K-th most recent
    /// reference, or 0 (∞ distance) with the last reference as tie-break.
    #[inline]
    fn key(&self, page: PageId) -> (u64, u64) {
        let base = page.index() * self.k;
        let h = self.head[page.index()] as usize;
        let count = self.count[page.index()] as usize;
        // After a write, `head` points at the oldest stored stamp and
        // `head - 1` at the newest.
        let kth = if count >= self.k {
            self.hist[base + h]
        } else {
            0
        };
        let last = if count > 0 {
            self.hist[base + (h + self.k - 1) % self.k]
        } else {
            0
        };
        (kth, last)
    }

    #[inline]
    fn set_entry(&self, page: PageId) -> (u64, u64, u32) {
        let (kth, last) = self.key(page);
        (kth, last, page.0)
    }
}

impl ReplacementPolicy for LruK {
    fn name(&self) -> String {
        format!("lru-{}", self.k)
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure(ctx);
        self.order.remove(&self.set_entry(page));
        self.record(page);
        self.order.insert(self.set_entry(page));
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure(ctx);
        self.record(page);
        self.order.insert(self.set_entry(page));
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        let &(kth, last, page) = self.order.first().expect("cache is full");
        self.order.remove(&(kth, last, page));
        PageId(page)
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.order.remove(&self.set_entry(page));
    }

    fn reset(&mut self) {
        self.seq = 0;
        self.hist.clear();
        self.head.clear();
        self.count.clear();
        self.order.clear();
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64("k", self.k as u64);
        s.set_u64("seq", self.seq);
        s.set_u64s("hist", self.hist.clone());
        s.set_u64s("head", self.head.iter().map(|&h| h as u64).collect());
        s.set_u64s("count", self.count.iter().map(|&c| c as u64).collect());
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        let k = state.u64("k")?;
        if k != self.k as u64 {
            return Err(corrupt(
                "k",
                format!("checkpointed K={k}, policy has K={}", self.k),
            ));
        }
        let seq = state.u64("seq")?;
        let head = decode_u32s(state.u64s("head")?, "head")?;
        let count = decode_u32s(state.u64s_len("count", head.len())?, "count")?;
        let hist = state.u64s_len("hist", head.len() * self.k)?;
        if head.len() > ctx.universe.num_pages() as usize {
            return Err(corrupt(
                "head",
                format!(
                    "{} entries for {} pages",
                    head.len(),
                    ctx.universe.num_pages()
                ),
            ));
        }
        if let Some(h) = head.iter().find(|&&h| h as usize >= self.k) {
            return Err(corrupt(
                "head",
                format!("ring slot {h} out of range for K={}", self.k),
            ));
        }
        if let Some(c) = count.iter().find(|&&c| c as usize > self.k) {
            return Err(corrupt(
                "count",
                format!("{c} recorded references exceed K={}", self.k),
            ));
        }
        if let Some(p) = ctx.cache.iter().find(|p| p.index() >= head.len()) {
            return Err(corrupt("head", format!("no entry for cached page {}", p.0)));
        }
        self.seq = seq;
        self.hist = hist.to_vec();
        self.head = head;
        self.count = count;
        // The order set holds exactly the cached pages keyed by the saved
        // histories, so it is rebuilt rather than stored.
        self.order = ctx.cache.iter().map(|p| self.set_entry(p)).collect();
        Ok(())
    }
}

/// The original LRU-K with per-page `VecDeque` histories and an `O(k)`
/// cache scan per eviction, retained as the equivalence oracle and
/// benchmark baseline for [`LruK`].
#[derive(Debug)]
pub struct LruKReference {
    k: usize,
    /// Last K reference times per page (front = oldest of the K).
    history: Vec<VecDeque<u64>>,
    seq: u64,
}

impl LruKReference {
    /// Create LRU-K with the given history depth `K ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        LruKReference {
            k,
            history: Vec::new(),
            seq: 0,
        }
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        let n = ctx.universe.num_pages() as usize;
        if self.history.len() < n {
            self.history.resize_with(n, VecDeque::new);
        }
        self.seq += 1;
        let h = &mut self.history[page.index()];
        h.push_back(self.seq);
        if h.len() > self.k {
            h.pop_front();
        }
    }

    /// Backward K-distance key: the time of the K-th most recent
    /// reference, or 0 (∞ distance) with the last reference as tie-break.
    fn key(&self, page: PageId) -> (u64, u64) {
        let h = &self.history[page.index()];
        let kth = if h.len() >= self.k {
            *h.front().expect("non-empty by construction")
        } else {
            0 // fewer than K references: infinitely old
        };
        let last = h.back().copied().unwrap_or(0);
        (kth, last)
    }
}

impl ReplacementPolicy for LruKReference {
    fn name(&self) -> String {
        format!("lru-{}-reference", self.k)
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        ctx.cache
            .iter()
            .min_by_key(|&p| (self.key(p), p.0))
            .expect("cache is full")
    }

    fn reset(&mut self) {
        self.history.clear();
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn k1_equals_lru() {
        use crate::lru::Lru;
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..200).map(|i| (i * 7 + 1) % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let a = Simulator::new(3)
            .record_events(true)
            .run(&mut LruK::new(1), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        let b = Simulator::new(3)
            .record_events(true)
            .run(&mut Lru::new(), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        assert_eq!(a, b);
    }

    #[test]
    fn scan_resistant_compared_to_lru() {
        // Hot pages 0,1 referenced repeatedly; then a one-off scan of 2.
        // LRU-2 evicts the scanned page (only one reference), keeping the
        // hot set.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 0, 1, 2, 3]);
        let r = Simulator::new(3)
            .record_events(true)
            .run(&mut LruK::new(2), &trace);
        let ev = r.events.unwrap().eviction_sequence();
        assert_eq!(
            ev,
            vec![(5, PageId(2))],
            "the single-reference scan page goes first"
        );
    }

    #[test]
    fn fewer_than_k_references_preferred_over_history_rich() {
        let u = Universe::single_user(3);
        // 0 referenced twice, 1 once; victim for 2 must be 1.
        let trace = Trace::from_page_indices(&u, &[0, 0, 1, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut LruK::new(2), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(3, PageId(1))]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        LruK::new(0);
    }

    #[test]
    fn matches_reference_eviction_for_eviction() {
        let u = Universe::single_user(9);
        let mut state = 0x5555AAAA5555u64;
        let pages: Vec<u32> = (0..2_500)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 9) as u32
            })
            .collect();
        let trace = Trace::from_page_indices(&u, &pages);
        for kk in [1, 2, 3, 5] {
            for cache in [2, 4, 8] {
                let a = Simulator::new(cache)
                    .record_events(true)
                    .run(&mut LruK::new(kk), &trace)
                    .events
                    .unwrap()
                    .eviction_sequence();
                let b = Simulator::new(cache)
                    .record_events(true)
                    .run(&mut LruKReference::new(kk), &trace)
                    .events
                    .unwrap()
                    .eviction_sequence();
                assert_eq!(a, b, "diverged at K={kk}, k={cache}");
            }
        }
    }
}
