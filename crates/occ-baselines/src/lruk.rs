//! LRU-K (O'Neil, O'Neil & Weikum \[16\]) — evict the page whose K-th most
//! recent reference is oldest.
//!
//! The paper cites LRU-K as the production-grade cost-blind policy used
//! by shared-memory database systems; it weighs reference *history* so a
//! page touched twice recently beats a page scanned once. Pages with
//! fewer than K references have backward K-distance ∞ and are preferred
//! victims (ties by oldest last reference — the classic tie-break).

use occ_sim::{EngineCtx, PageId, ReplacementPolicy};
use std::collections::VecDeque;

/// LRU-K replacement. `K = 1` degenerates to LRU.
#[derive(Debug)]
pub struct LruK {
    k: usize,
    /// Last K reference times per page (front = oldest of the K).
    history: Vec<VecDeque<u64>>,
    seq: u64,
}

impl LruK {
    /// Create LRU-K with the given history depth `K ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        LruK {
            k,
            history: Vec::new(),
            seq: 0,
        }
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        let n = ctx.universe.num_pages() as usize;
        if self.history.len() < n {
            self.history.resize_with(n, VecDeque::new);
        }
        self.seq += 1;
        let h = &mut self.history[page.index()];
        h.push_back(self.seq);
        if h.len() > self.k {
            h.pop_front();
        }
    }

    /// Backward K-distance key: the time of the K-th most recent
    /// reference, or 0 (∞ distance) with the last reference as tie-break.
    fn key(&self, page: PageId) -> (u64, u64) {
        let h = &self.history[page.index()];
        let kth = if h.len() >= self.k {
            *h.front().expect("non-empty by construction")
        } else {
            0 // fewer than K references: infinitely old
        };
        let last = h.back().copied().unwrap_or(0);
        (kth, last)
    }
}

impl ReplacementPolicy for LruK {
    fn name(&self) -> String {
        format!("lru-{}", self.k)
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        ctx.cache
            .iter()
            .min_by_key(|&p| (self.key(p), p.0))
            .expect("cache is full")
    }

    fn reset(&mut self) {
        self.history.clear();
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn k1_equals_lru() {
        use crate::lru::Lru;
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..200).map(|i| (i * 7 + 1) % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let a = Simulator::new(3)
            .record_events(true)
            .run(&mut LruK::new(1), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        let b = Simulator::new(3)
            .record_events(true)
            .run(&mut Lru::new(), &trace)
            .events
            .unwrap()
            .eviction_sequence();
        assert_eq!(a, b);
    }

    #[test]
    fn scan_resistant_compared_to_lru() {
        // Hot pages 0,1 referenced repeatedly; then a one-off scan of 2.
        // LRU-2 evicts the scanned page (only one reference), keeping the
        // hot set.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 0, 1, 2, 3]);
        let r = Simulator::new(3)
            .record_events(true)
            .run(&mut LruK::new(2), &trace);
        let ev = r.events.unwrap().eviction_sequence();
        assert_eq!(ev, vec![(5, PageId(2))], "the single-reference scan page goes first");
    }

    #[test]
    fn fewer_than_k_references_preferred_over_history_rich() {
        let u = Universe::single_user(3);
        // 0 referenced twice, 1 once; victim for 2 must be 1.
        let trace = Trace::from_page_indices(&u, &[0, 0, 1, 2]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut LruK::new(2), &trace);
        assert_eq!(r.events.unwrap().eviction_sequence(), vec![(3, PageId(1))]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        LruK::new(0);
    }
}
