//! The marking algorithm — phase-based paging.
//!
//! Pages are marked when requested; a victim is always an unmarked page,
//! and when every cached page is marked a new phase begins (all marks are
//! cleared). Deterministic marking is `k`-competitive; it is the textbook
//! alternative to LRU and a useful cost-blind baseline because its phase
//! structure reacts differently to adversarial cycles.

use occ_sim::{EngineCtx, PageId, ReplacementPolicy};

/// Deterministic marking: evicts the unmarked page with the oldest last
/// use.
#[derive(Debug, Default)]
pub struct Marking {
    seq: u64,
    marked: Vec<bool>,
    stamp: Vec<u64>,
}

impl Marking {
    /// A fresh marking policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        let n = ctx.universe.num_pages() as usize;
        if self.marked.len() < n {
            self.marked.resize(n, false);
            self.stamp.resize(n, 0);
        }
        self.seq += 1;
        self.marked[page.index()] = true;
        self.stamp[page.index()] = self.seq;
    }
}

impl ReplacementPolicy for Marking {
    fn name(&self) -> String {
        "marking".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        // New phase if everything is marked.
        if ctx.cache.iter().all(|p| self.marked[p.index()]) {
            for p in ctx.cache.iter() {
                self.marked[p.index()] = false;
            }
        }
        // Oldest unmarked page.
        ctx.cache
            .iter()
            .filter(|p| !self.marked[p.index()])
            .min_by_key(|p| (self.stamp[p.index()], p.0))
            .expect("a phase reset guarantees an unmarked page")
    }

    fn reset(&mut self) {
        self.seq = 0;
        self.marked.clear();
        self.stamp.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn marked_pages_survive_within_phase() {
        // k=2: 0 1 — both marked. 2 arrives: phase reset, evict oldest (0).
        // Then 1 is still cached (marked anew? no: reset unmarked both, 2
        // got marked on insert). Request 1 hits and marks it.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 1, 3]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Marking::new(), &trace);
        let ev = r.events.unwrap().eviction_sequence();
        // t=2: evict 0. t=4: cache {2 marked, 1 marked} → reset, evict 2
        // (older stamp than 1's refreshed stamp).
        assert_eq!(ev, vec![(2, PageId(0)), (4, PageId(2))]);
    }

    #[test]
    fn cycle_still_k_competitive_shape() {
        let u = Universe::single_user(4);
        let pages: Vec<u32> = (0..40).map(|i| i % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let r = Simulator::new(3).run(&mut Marking::new(), &trace);
        // Marking also thrashes on the (k+1)-cycle.
        assert_eq!(r.total_misses(), 40);
    }

    #[test]
    fn working_set_protected() {
        let u = Universe::single_user(5);
        // Hot pages 0,1 plus a stream of cold singles: hot pages stay.
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 3, 0, 1, 4, 0, 1]);
        let r = Simulator::new(3).run(&mut Marking::new(), &trace);
        // Hot pages miss once each; cold pages miss each time: 2 + 3.
        assert_eq!(r.total_misses(), 5);
    }
}
