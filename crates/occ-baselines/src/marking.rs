//! The marking algorithm — phase-based paging.
//!
//! Pages are marked when requested; a victim is always an unmarked page,
//! and when every cached page is marked a new phase begins (all marks are
//! cleared). Deterministic marking is `k`-competitive; it is the textbook
//! alternative to LRU and a useful cost-blind baseline because its phase
//! structure reacts differently to adversarial cycles.
//!
//! [`Marking`] (the default) runs in `O(1)` per request on two intrusive
//! lists sharing one [`PageLists`] arena: the cached *unmarked* pages and
//! the cached *marked* pages, each kept in last-use order. A touch moves
//! the page to the back of the marked list; a phase reset splices the
//! whole marked list (already in last-use order, since touches append)
//! onto the empty unmarked list in `O(k)` — amortized `O(1)`, as a phase
//! spans at least `k` requests. The victim is always the unmarked front.
//! [`MarkingReference`] is the original form that rescans the cache per
//! eviction (`O(k)`); both make byte-identical eviction decisions.

use crate::state_util::{encode_pages, PageDecoder};
use occ_sim::{EngineCtx, PageId, PageLists, PolicyState, ReplacementPolicy, SnapshotError};

/// Index of the unmarked list in the shared arena.
const UNMARKED: usize = 0;
/// Index of the marked list in the shared arena.
const MARKED: usize = 1;

/// Deterministic marking: evicts the unmarked page with the oldest last
/// use, in `O(1)` amortized per request.
#[derive(Debug, Default)]
pub struct Marking {
    /// Two lists over the cached pages: `UNMARKED` and `MARKED`, each in
    /// increasing last-use order.
    lists: PageLists,
}

impl Marking {
    /// A fresh marking policy.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        self.lists.ensure(2, ctx.universe.num_pages() as usize);
        self.lists.move_to_back(MARKED, page);
    }
}

impl ReplacementPolicy for Marking {
    fn name(&self) -> String {
        "marking".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
        if self.lists.is_empty(UNMARKED) {
            // New phase: every cached page is marked. The marked list is
            // already in last-use order, so it becomes the unmarked list
            // wholesale.
            self.lists.append_list(UNMARKED, MARKED);
        }
        self.lists
            .pop_front(UNMARKED)
            .expect("a phase reset guarantees an unmarked page")
    }

    fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
        self.lists.remove_if_linked(page);
    }

    fn reset(&mut self) {
        self.lists.reset();
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        s.set_u64s("unmarked", encode_pages(self.lists.iter(UNMARKED)));
        s.set_u64s("marked", encode_pages(self.lists.iter(MARKED)));
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        // One decoder across both lists: a page in both is corruption.
        let mut dec = PageDecoder::new(ctx);
        let unmarked = dec.cached_pages(ctx, state.u64s("unmarked")?, "unmarked")?;
        let marked = dec.cached_pages(ctx, state.u64s("marked")?, "marked")?;
        self.lists.reset();
        self.lists.ensure(2, ctx.universe.num_pages() as usize);
        for p in unmarked {
            self.lists.push_back(UNMARKED, p);
        }
        for p in marked {
            self.lists.push_back(MARKED, p);
        }
        Ok(())
    }
}

/// The original scan-per-eviction marking (`O(k)` victim selection),
/// retained as the equivalence oracle and benchmark baseline for
/// [`Marking`].
#[derive(Debug, Default)]
pub struct MarkingReference {
    seq: u64,
    marked: Vec<bool>,
    stamp: Vec<u64>,
}

impl MarkingReference {
    /// A fresh reference marking policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        let n = ctx.universe.num_pages() as usize;
        if self.marked.len() < n {
            self.marked.resize(n, false);
            self.stamp.resize(n, 0);
        }
        self.seq += 1;
        self.marked[page.index()] = true;
        self.stamp[page.index()] = self.seq;
    }
}

impl ReplacementPolicy for MarkingReference {
    fn name(&self) -> String {
        "marking-reference".into()
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        // New phase if everything is marked.
        if ctx.cache.iter().all(|p| self.marked[p.index()]) {
            for p in ctx.cache.iter() {
                self.marked[p.index()] = false;
            }
        }
        // Oldest unmarked page.
        ctx.cache
            .iter()
            .filter(|p| !self.marked[p.index()])
            .min_by_key(|p| (self.stamp[p.index()], p.0))
            .expect("a phase reset guarantees an unmarked page")
    }

    fn reset(&mut self) {
        self.seq = 0;
        self.marked.clear();
        self.stamp.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_sim::{Simulator, Trace, Universe};

    #[test]
    fn marked_pages_survive_within_phase() {
        // k=2: 0 1 — both marked. 2 arrives: phase reset, evict oldest (0).
        // Then 1 is still cached (marked anew? no: reset unmarked both, 2
        // got marked on insert). Request 1 hits and marks it.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 1, 3]);
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut Marking::new(), &trace);
        let ev = r.events.unwrap().eviction_sequence();
        // t=2: evict 0. t=4: cache {2 marked, 1 marked} → reset, evict 2
        // (older stamp than 1's refreshed stamp).
        assert_eq!(ev, vec![(2, PageId(0)), (4, PageId(2))]);
    }

    #[test]
    fn cycle_still_k_competitive_shape() {
        let u = Universe::single_user(4);
        let pages: Vec<u32> = (0..40).map(|i| i % 4).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let r = Simulator::new(3).run(&mut Marking::new(), &trace);
        // Marking also thrashes on the (k+1)-cycle.
        assert_eq!(r.total_misses(), 40);
    }

    #[test]
    fn working_set_protected() {
        let u = Universe::single_user(5);
        // Hot pages 0,1 plus a stream of cold singles: hot pages stay.
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 3, 0, 1, 4, 0, 1]);
        let r = Simulator::new(3).run(&mut Marking::new(), &trace);
        // Hot pages miss once each; cold pages miss each time: 2 + 3.
        assert_eq!(r.total_misses(), 5);
    }

    #[test]
    fn matches_reference_eviction_for_eviction() {
        let u = Universe::single_user(10);
        let mut state = 0xABCDEF12345u64;
        let pages: Vec<u32> = (0..3_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 10) as u32
            })
            .collect();
        let trace = Trace::from_page_indices(&u, &pages);
        for k in [1, 2, 4, 7, 9] {
            let a = Simulator::new(k)
                .record_events(true)
                .run(&mut Marking::new(), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            let b = Simulator::new(k)
                .record_events(true)
                .run(&mut MarkingReference::new(), &trace)
                .events
                .unwrap()
                .eviction_sequence();
            assert_eq!(a, b, "diverged at k={k}");
        }
    }
}
