//! The sharded grid runner: evaluate every cell in parallel (the same
//! disjoint-chunk `std::thread::scope` machinery as
//! `occ_analysis::parallel_sweep`), shrink any failures, and assemble
//! the deterministic verdict table.
//!
//! Timing discipline: per-request latencies flow through the attached
//! `MetricsRecorder` (the existing `occ-probe` hooks) and per-cell
//! wall-clock times are returned *alongside* the table — never inside
//! it — so the verdict JSON stays byte-identical across runs.

use crate::cell::evaluate;
use crate::grid::{cell_seed, Cell, Grid};
use crate::shrink::shrink_failure;
use crate::verdict::{CellVerdict, Verdict, VerdictTable};
use occ_analysis::parallel_sweep;
use occ_probe::MetricsRecorder;

/// Knobs for one grid run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Master seed; each cell derives its own via [`cell_seed`].
    pub seed: u64,
    /// Bound-weakening factor. `1.0` checks the theorems as stated;
    /// `< 1` tightens every bound (the deliberate-failure fixture for
    /// testing the FAIL path end to end).
    pub weaken: f64,
    /// Whether to shrink failing cells to minimal counterexamples.
    pub shrink: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 7,
            weaken: 1.0,
            shrink: true,
        }
    }
}

/// Everything a grid run produces.
#[derive(Debug)]
pub struct GridOutcome {
    /// The deterministic verdict table (serialize with `to_json`).
    pub verdicts: VerdictTable,
    /// All cells' recorder metrics, merged (per-request latency
    /// histogram, hit/miss/eviction counters).
    pub metrics: MetricsRecorder,
    /// Per-cell `(id, wall-clock ns)` — side-channel only, for stderr.
    pub cell_elapsed_ns: Vec<(String, u64)>,
}

/// Run every cell of `grid` in parallel and collect verdicts.
pub fn run_grid(grid: &Grid, cfg: &RunConfig) -> GridOutcome {
    assert!(cfg.weaken > 0.0, "weaken factor must be positive");
    let items: Vec<(usize, Cell)> = grid.cells.iter().cloned().enumerate().collect();
    let results = parallel_sweep(items, |(index, cell)| {
        let seed = cell_seed(cfg.seed, *index);
        let mut rec = MetricsRecorder::new();
        let start = std::time::Instant::now();
        let e = evaluate(cell, seed, cfg.weaken, &mut rec);
        let shrunk = if cfg.shrink && e.verdict == Verdict::Fail {
            shrink_failure(cell, seed, cfg.weaken)
        } else {
            None
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        let verdict = CellVerdict {
            id: cell.id(),
            check: cell.check.name(),
            policy: cell.policy.name(),
            workload: cell.workload.name(),
            cost: cell.cost.name(),
            users: cell.users,
            k: cell.k,
            h: cell.h(),
            len: cell.len,
            oracle: e.oracle,
            alpha: e.alpha,
            op: e.op,
            lhs: e.lhs,
            rhs: e.rhs,
            online_cost: e.online_cost,
            offline_cost: e.offline_cost,
            ratio: e.ratio,
            verdict: e.verdict,
            note: e.note,
            shrunk,
        };
        (verdict, rec, elapsed)
    });

    let mut metrics = MetricsRecorder::new();
    let mut cells = Vec::with_capacity(results.len());
    let mut cell_elapsed_ns = Vec::with_capacity(results.len());
    for (verdict, rec, elapsed) in results {
        metrics.merge(&rec);
        cell_elapsed_ns.push((verdict.id.clone(), elapsed));
        cells.push(verdict);
    }
    GridOutcome {
        verdicts: VerdictTable {
            grid: grid.name.to_string(),
            seed: cfg.seed,
            weaken: cfg.weaken,
            cells,
        },
        metrics,
        cell_elapsed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::grid;

    fn mini_grid() -> Grid {
        let mut g = grid("smoke").unwrap();
        g.cells.truncate(4);
        g
    }

    #[test]
    fn verdict_json_is_byte_identical_across_runs() {
        let g = mini_grid();
        let cfg = RunConfig::default();
        let a = run_grid(&g, &cfg).verdicts.to_json();
        let b = run_grid(&g, &cfg).verdicts.to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn verdicts_preserve_grid_order() {
        let g = mini_grid();
        let out = run_grid(&g, &RunConfig::default());
        let ids: Vec<String> = out.verdicts.cells.iter().map(|c| c.id.clone()).collect();
        let expected: Vec<String> = g.cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn weakened_run_fails_and_ships_shrunk_counterexamples() {
        let g = mini_grid();
        let cfg = RunConfig {
            weaken: 1e-9,
            ..RunConfig::default()
        };
        let out = run_grid(&g, &cfg);
        assert!(out.verdicts.any_fail());
        let failing: Vec<_> = out
            .verdicts
            .cells
            .iter()
            .filter(|c| c.verdict == Verdict::Fail)
            .collect();
        assert!(failing.iter().all(|c| c.shrunk.is_some()));
        let s = failing[0].shrunk.as_ref().unwrap();
        assert!(s.len <= failing[0].len && s.lhs > s.rhs);
    }

    #[test]
    fn shrink_can_be_disabled() {
        let g = mini_grid();
        let cfg = RunConfig {
            weaken: 1e-9,
            shrink: false,
            ..RunConfig::default()
        };
        let out = run_grid(&g, &cfg);
        assert!(out.verdicts.any_fail());
        assert!(out.verdicts.cells.iter().all(|c| c.shrunk.is_none()));
    }

    #[test]
    fn metrics_and_timings_accumulate_outside_the_table() {
        let g = mini_grid();
        let out = run_grid(&g, &RunConfig::default());
        let total_requests: usize = g.cells.iter().map(|c| c.len).sum();
        assert_eq!(out.metrics.requests(), total_requests as u64);
        assert_eq!(out.cell_elapsed_ns.len(), g.cells.len());
        // The JSON carries no timing keys at all.
        let json = out.verdicts.to_json();
        assert!(!json.contains("elapsed") && !json.contains("latency"));
    }
}
