//! Minimal-counterexample shrinking for failing cells.
//!
//! On a FAIL the runner bisects the trace length down to the shortest
//! prefix length that still fails, then bisects the cache size `k`
//! down at that length. Workload generators are sequential, so a
//! shorter `len` with the same seed is a true prefix of the original
//! stream — the shrunk cell is a genuine sub-instance.
//!
//! Bound violations need not be monotone in `len` or `k`; bisection
//! maintains only the invariant that the *upper* end of the bracket
//! fails (true at the start — the full cell failed), so it always
//! terminates on a failing configuration, just not necessarily the
//! global minimum. That is the standard property-testing trade-off:
//! deterministic, logarithmically many re-evaluations, small result.

use crate::cell::evaluate;
use crate::grid::{Cell, CheckKind};
use crate::verdict::Verdict;
use occ_probe::MetricsRecorder;

/// The smallest failing configuration the bisection reached.
#[derive(Clone, Debug, PartialEq)]
pub struct Shrunk {
    /// Shrunk trace length.
    pub len: usize,
    /// Shrunk cache size.
    pub k: usize,
    /// Left-hand side of the violated comparison at the shrunk size.
    pub lhs: f64,
    /// Right-hand side at the shrunk size.
    pub rhs: f64,
}

/// Shrink a cell known to fail at its full size. Returns `None` only if
/// the premise is wrong (the cell does not fail when re-evaluated).
pub(crate) fn shrink_failure(cell: &Cell, seed: u64, weaken: f64) -> Option<Shrunk> {
    let eval_at = |len: usize, k: usize| {
        let mut candidate = cell.clone();
        candidate.len = len;
        candidate.k = k;
        // Keep the bi-criteria precondition 1 ≤ h ≤ k as k shrinks.
        if let CheckKind::Theorem13 { h } = candidate.check {
            candidate.check = CheckKind::Theorem13 { h: h.min(k) };
        }
        evaluate(&candidate, seed, weaken, &mut MetricsRecorder::new())
    };
    let fails = |len: usize, k: usize| eval_at(len, k).verdict == Verdict::Fail;
    if !fails(cell.len, cell.k) {
        return None;
    }

    // Adversary instances tie k to n; only the length shrinks there.
    let (min_len, shrink_k) = match cell.check {
        CheckKind::LowerBound14 => (cell.users as usize, false),
        _ => (1, true),
    };

    let len = bisect_first_failing(min_len, cell.len, |len| fails(len, cell.k));
    let k = if shrink_k {
        bisect_first_failing(1, cell.k, |k| fails(len, k))
    } else {
        cell.k
    };
    let e = eval_at(len, k);
    debug_assert_eq!(e.verdict, Verdict::Fail, "bisection invariant");
    Some(Shrunk {
        len,
        k,
        lhs: e.lhs,
        rhs: e.rhs,
    })
}

/// Smallest `v` in `[lo, hi]` that `fails`, under the invariant that
/// `fails(hi)` holds on entry (and is maintained for the shrinking
/// bracket's upper end throughout).
fn bisect_first_failing(lo: usize, hi: usize, fails: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo.min(hi), hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CostKind, PolicyKind, WorkloadKind};

    fn failing_cell() -> Cell {
        // With an absurdly weakened bound every non-vacuous upper-bound
        // cell fails, which is exactly what the shrinker needs.
        Cell {
            check: CheckKind::Theorem11,
            policy: PolicyKind::Convex,
            workload: WorkloadKind::Cycle,
            cost: CostKind::Monomial { beta: 2.0 },
            users: 1,
            pages: 5,
            k: 4,
            len: 200,
        }
    }

    #[test]
    fn shrinks_to_a_much_smaller_failing_instance() {
        let cell = failing_cell();
        let s = shrink_failure(&cell, 7, 1e-9).expect("cell fails under weaken=1e-9");
        assert!(s.len <= cell.len);
        assert!(s.k <= cell.k);
        assert!(s.lhs > s.rhs, "shrunk instance still violates the bound");
        // Any single miss already violates a near-zero bound, so the
        // bisection should bottom out at the smallest instance.
        assert_eq!((s.len, s.k), (1, 1));
    }

    #[test]
    fn declines_when_the_cell_does_not_fail() {
        assert_eq!(shrink_failure(&failing_cell(), 7, 1.0), None);
    }

    #[test]
    fn bicriteria_h_is_clamped_while_k_shrinks() {
        let mut cell = failing_cell();
        cell.check = CheckKind::Theorem13 { h: 3 };
        cell.k = 6;
        cell.pages = 7;
        let s = shrink_failure(&cell, 7, 1e-9).expect("fails under weaken=1e-9");
        assert!(s.k >= 1 && s.len >= 1);
    }

    #[test]
    fn adversary_cells_shrink_length_only() {
        let cell = Cell {
            check: CheckKind::LowerBound14,
            policy: PolicyKind::Lru,
            workload: WorkloadKind::Adversary,
            cost: CostKind::Monomial { beta: 2.0 },
            users: 5,
            pages: 5,
            k: 4,
            len: 200,
        };
        // Demanding a ratio 1e9× the analytic bound fails at full size.
        let s = shrink_failure(&cell, 7, 1e-9).expect("fails under weaken=1e-9");
        assert_eq!(s.k, cell.k, "k = n − 1 is part of the instance family");
        assert!(s.len < cell.len);
    }

    #[test]
    fn bisect_finds_the_boundary() {
        assert_eq!(bisect_first_failing(1, 100, |v| v >= 37), 37);
        assert_eq!(bisect_first_failing(1, 100, |_| true), 1);
        assert_eq!(bisect_first_failing(5, 5, |_| true), 5);
    }
}
