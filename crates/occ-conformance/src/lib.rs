#![warn(missing_docs)]
//! Theorem-conformance harness: a parallel grid runner that
//! machine-checks the paper's bounds on real simulator runs.
//!
//! Each [`Cell`] of a [`Grid`] names a policy × workload × cost-profile
//! × `(n, k, β)` instance together with the paper statement to check on
//! it:
//!
//! * **Theorem 1.1** — `online ≤ Σ_i f_i(α·k·b_i)` against an offline
//!   miss vector `b` (Belady for single-user cells, `exact_opt` for
//!   tiny multi-user cells, `best_offline_heuristic` at scale);
//! * **Theorem 1.3** — the bi-criteria variant with offline cache
//!   `h ≤ k` and factor `α·k/(k−h+1)`;
//! * **Claim 2.3** — the derivative inequality, evaluated on the
//!   per-epoch miss increments of an actual run;
//! * **Theorem 1.4** — the `(n/4)^β` lower-bound growth on the §4
//!   adaptive adversary, certified against the batch offline schedule.
//!
//! [`run_grid`] evaluates cells concurrently via
//! `occ_analysis::parallel_sweep` (scoped threads over disjoint output
//! chunks) and produces a [`VerdictTable`]: one PASS / FAIL / VACUOUS
//! row per cell, serialized as schema-stamped JSON whose bytes depend
//! only on `(grid, seed, weaken)` — wall-clock timings and recorder
//! metrics travel separately in [`GridOutcome`]. VACUOUS is a verdict
//! in its own right: an unbounded curvature constant or a zero-cost
//! instance means the theorem asserts nothing, and reporting PASS
//! there would overstate the evidence.
//!
//! On FAIL, the shrinker bisects the trace length and then the cache
//! size to a small configuration that still violates the bound, so a
//! red CI run hands you a counterexample you can replay by hand. The
//! `weaken` knob tightens every bound by a factor; the test suite and
//! CI use it to prove the FAIL + shrink path works end to end (a
//! harness that cannot fail is not checking anything).
//!
//! `occ conformance --grid smoke` is the CLI entry; the smoke grid is
//! the CI gate.

pub mod cell;
pub mod grid;
pub mod runner;
pub mod shrink;
pub mod verdict;

pub use grid::GRID_NAMES;
pub use grid::{cell_seed, grid, Cell, CheckKind, CostKind, Grid, PolicyKind, WorkloadKind};
pub use runner::{run_grid, GridOutcome, RunConfig};
pub use shrink::Shrunk;
pub use verdict::{CellVerdict, Verdict, VerdictTable, CONFORMANCE_SCHEMA, REQUIRED_KEYS};
