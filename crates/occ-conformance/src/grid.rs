//! The conformance grid: which `check × policy × workload × cost ×
//! (n, k, β)` cells to run, and the named grids the CLI exposes.
//!
//! A [`Cell`] is a *pure description* — building traces, policies, and
//! cost profiles from it happens in the cell evaluator, so the grid
//! itself is trivially serializable into cell ids and stays cheap to
//! clone into the shrinker.

/// Which paper statement a cell machine-checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CheckKind {
    /// Theorem 1.1: `online ≤ Σ_i f_i(α·k·b_i)` against an offline miss
    /// vector `b` for the same cache size.
    Theorem11,
    /// Theorem 1.3 (bi-criteria): the offline reference runs with a
    /// smaller cache `h ≤ k`; the inflation factor is `α·k/(k−h+1)`.
    Theorem13 {
        /// Offline cache size (`1 ≤ h ≤ k`).
        h: usize,
    },
    /// Claim 2.3: `f'(Σx)·Σx ≤ α·Σ_j x_j·f'(x_1+…+x_j)` on the per-epoch
    /// miss increments of a real run.
    Claim23,
    /// Theorem 1.4: on the §4 adversary the online/offline cost ratio
    /// must reach the analytic `(n/4)^β` growth.
    LowerBound14,
}

impl CheckKind {
    /// Stable display name, as printed in verdicts ("T1.1", "C2.3", …).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Theorem11 => "T1.1",
            CheckKind::Theorem13 { .. } => "T1.3",
            CheckKind::Claim23 => "C2.3",
            CheckKind::LowerBound14 => "T1.4",
        }
    }

    /// Id-safe tag (no dots).
    fn tag(self) -> &'static str {
        match self {
            CheckKind::Theorem11 => "t11",
            CheckKind::Theorem13 { .. } => "t13",
            CheckKind::Claim23 => "c23",
            CheckKind::LowerBound14 => "t14",
        }
    }

    /// The offline cache size for this check, given the online `k`.
    pub fn offline_k(self, k: usize) -> usize {
        match self {
            CheckKind::Theorem13 { h } => h,
            _ => k,
        }
    }
}

/// Which online policy the cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's ALG-DISCRETE (`occ_core::ConvexCaching`).
    Convex,
    /// Classical LRU — the cost-blind baseline with the textbook
    /// `k`-competitive guarantee (a linear-cost special case of T1.1).
    Lru,
}

impl PolicyKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Convex => "convex",
            PolicyKind::Lru => "lru",
        }
    }
}

/// Which request stream the cell replays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Single-user `(pages)`-cycle — the classical adversarial pattern.
    Cycle,
    /// Single-user Zipf(`s`) stream.
    Zipf {
        /// Zipf skew parameter.
        s: f64,
    },
    /// Single-user uniform-random stream.
    Uniform,
    /// A tiny deterministic multi-user interleaving (stride-7 walk over
    /// the whole universe) — small enough for the exact offline solver.
    TinyMix,
    /// The `two_tier` preset scenario (two Zipf tenants, 64 pages).
    TwoTier,
    /// The §4 adaptive missing-page adversary (Theorem 1.4 instances:
    /// one page per user, `k = n − 1`; the trace is policy-dependent).
    Adversary,
}

impl WorkloadKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Cycle => "cycle",
            WorkloadKind::Zipf { .. } => "zipf",
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::TinyMix => "tinymix",
            WorkloadKind::TwoTier => "twotier",
            WorkloadKind::Adversary => "adversary",
        }
    }
}

/// Which cost profile prices the miss vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostKind {
    /// Every user pays `x^β`.
    Monomial {
        /// The exponent (and curvature constant) `β`.
        beta: f64,
    },
    /// Every user pays the §1.1 SLA shape: slope `base` up to
    /// `tolerance` misses, then slope `penalty`.
    Sla {
        /// Tolerated misses before the penalty slope kicks in.
        tolerance: f64,
        /// Slope below the tolerance (must be positive for finite α).
        base: f64,
        /// Slope above the tolerance.
        penalty: f64,
    },
    /// The `two_tier` preset mix: user 0 quadratic, user 1 linear.
    TwoTierMix,
    /// A *flat-start* piecewise-linear profile whose curvature constant
    /// is unbounded (`alpha()` = `None`): the paper's guarantee is
    /// vacuous, and the harness must say so rather than pass or fail.
    FlatSla,
}

impl CostKind {
    /// Stable display name.
    pub fn name(self) -> String {
        match self {
            CostKind::Monomial { beta } => {
                if beta.fract() == 0.0 {
                    format!("mono{}", beta as u64)
                } else {
                    format!("mono{beta}")
                }
            }
            CostKind::Sla { .. } => "sla".into(),
            CostKind::TwoTierMix => "mix".into(),
            CostKind::FlatSla => "flat".into(),
        }
    }
}

/// One conformance cell: a fully specified instance plus the bound to
/// evaluate on it.
#[derive(Clone, Debug)]
pub struct Cell {
    /// The paper statement under test.
    pub check: CheckKind,
    /// Online policy.
    pub policy: PolicyKind,
    /// Request stream.
    pub workload: WorkloadKind,
    /// Cost profile.
    pub cost: CostKind,
    /// Number of users `n`.
    pub users: u32,
    /// Total pages in the universe (split evenly across users; fixed at
    /// 64 for [`WorkloadKind::TwoTier`] and at `n` for the adversary).
    pub pages: u32,
    /// Online cache size `k`.
    pub k: usize,
    /// Trace length `T`.
    pub len: usize,
}

impl Cell {
    /// A unique, stable, filename-safe identifier for the cell.
    pub fn id(&self) -> String {
        let h = match self.check {
            CheckKind::Theorem13 { h } => format!("-h{h}"),
            _ => String::new(),
        };
        format!(
            "{}-{}-{}-{}-u{}-p{}-k{}{}-t{}",
            self.check.tag(),
            self.policy.name(),
            self.workload.name(),
            self.cost.name(),
            self.users,
            self.pages,
            self.k,
            h,
            self.len
        )
    }

    /// The offline cache size `h` when this is a bi-criteria cell.
    pub fn h(&self) -> Option<usize> {
        match self.check {
            CheckKind::Theorem13 { h } => Some(h),
            _ => None,
        }
    }
}

/// A named list of cells.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Grid name ("smoke", "full").
    pub name: &'static str,
    /// The cells, in a fixed order (cell index keys the per-cell seed).
    pub cells: Vec<Cell>,
}

/// Look up a named grid. `None` for unknown names.
pub fn grid(name: &str) -> Option<Grid> {
    match name {
        "smoke" => Some(smoke()),
        "full" => Some(full()),
        _ => None,
    }
}

/// Names of all built-in grids (for usage messages).
pub const GRID_NAMES: &[&str] = &["smoke", "full"];

#[allow(clippy::too_many_arguments)] // a cell IS this tuple; a builder would obscure the grid tables
fn cell(
    check: CheckKind,
    policy: PolicyKind,
    workload: WorkloadKind,
    cost: CostKind,
    users: u32,
    pages: u32,
    k: usize,
    len: usize,
) -> Cell {
    Cell {
        check,
        policy,
        workload,
        cost,
        users,
        pages,
        k,
        len,
    }
}

fn mono(beta: f64) -> CostKind {
    CostKind::Monomial { beta }
}

/// A Theorem 1.4 cell: `n` single-page users, `k = n − 1`, and the §4
/// recipe `T = 8n²` (E3 shows the measured ratio then clears the full
/// analytic `(n/4)^β` with comfortable headroom).
fn adversary_cell(policy: PolicyKind, beta: f64, n: u32) -> Cell {
    cell(
        CheckKind::LowerBound14,
        policy,
        WorkloadKind::Adversary,
        mono(beta),
        n,
        n,
        (n - 1) as usize,
        8 * (n as usize) * (n as usize),
    )
}

/// The CI gate grid: every theorem covered, every oracle kind exercised,
/// at sizes that run in well under a second.
///
/// Expected verdicts with `weaken = 1`: every cell PASSes except the
/// last two, which are *deliberately* VACUOUS (an unbounded-α cost
/// profile and an empty trace) so the gate also proves the harness
/// distinguishes "holds" from "says nothing".
fn smoke() -> Grid {
    use CheckKind::*;
    use PolicyKind::*;
    use WorkloadKind::*;
    let cells = vec![
        // -- Theorem 1.1, exact single-user oracle (Belady = OPT). --
        cell(Theorem11, Convex, Cycle, mono(2.0), 1, 5, 4, 200),
        cell(Theorem11, Convex, Cycle, mono(1.0), 1, 6, 4, 240),
        cell(Theorem11, Convex, Zipf { s: 0.9 }, mono(2.0), 1, 16, 6, 400),
        cell(Theorem11, Convex, Uniform, mono(2.0), 1, 12, 6, 300),
        // LRU + linear cost: the classical k-competitive special case.
        cell(Theorem11, Lru, Cycle, mono(1.0), 1, 5, 4, 200),
        cell(Theorem11, Lru, Zipf { s: 0.8 }, mono(2.0), 1, 16, 6, 400),
        // -- Theorem 1.1, exact multi-user oracle (small exact_opt). --
        cell(Theorem11, Convex, TinyMix, mono(2.0), 2, 6, 3, 14),
        cell(
            Theorem11,
            Convex,
            TinyMix,
            CostKind::Sla {
                tolerance: 4.0,
                base: 1.0,
                penalty: 10.0,
            },
            2,
            6,
            3,
            14,
        ),
        // -- Theorem 1.1, heuristic oracle (necessary-side at scale). --
        cell(
            Theorem11,
            Convex,
            TwoTier,
            CostKind::TwoTierMix,
            2,
            64,
            24,
            600,
        ),
        // -- Theorem 1.3 bi-criteria (offline cache h < k). --
        cell(Theorem13 { h: 3 }, Convex, Cycle, mono(2.0), 1, 7, 6, 210),
        // Tight cell: LRU on the (k+1)-cycle meets k/(k−h+1) exactly.
        cell(Theorem13 { h: 2 }, Lru, Cycle, mono(1.0), 1, 6, 5, 180),
        cell(
            Theorem13 { h: 4 },
            Convex,
            Zipf { s: 0.9 },
            mono(2.0),
            1,
            16,
            8,
            400,
        ),
        // -- Claim 2.3 on real epoch miss increments. --
        cell(Claim23, Convex, Zipf { s: 0.9 }, mono(2.0), 1, 12, 5, 320),
        cell(
            Claim23,
            Convex,
            TinyMix,
            CostKind::Sla {
                tolerance: 5.0,
                base: 1.0,
                penalty: 8.0,
            },
            2,
            8,
            4,
            240,
        ),
        cell(
            Claim23,
            Convex,
            TwoTier,
            CostKind::TwoTierMix,
            2,
            64,
            24,
            480,
        ),
        // -- Theorem 1.4 lower-bound growth. --
        adversary_cell(Lru, 2.0, 5),
        adversary_cell(Lru, 2.0, 9),
        adversary_cell(Lru, 3.0, 9),
        adversary_cell(Convex, 2.0, 5),
        // -- Deliberately vacuous: unbounded α, then a zero-cost run. --
        cell(Theorem11, Convex, Cycle, CostKind::FlatSla, 1, 5, 4, 100),
        cell(Theorem11, Convex, Cycle, mono(2.0), 1, 5, 4, 0),
    ];
    Grid {
        name: "smoke",
        cells,
    }
}

/// The extended grid: the smoke cells plus β × k sweeps for the upper
/// bounds and a larger adversary family for the lower bound.
fn full() -> Grid {
    use CheckKind::*;
    use PolicyKind::*;
    use WorkloadKind::*;
    let mut cells = smoke().cells;
    let mut extra = Vec::new();
    for &beta in &[1.0, 2.0, 3.0] {
        for &k in &[4usize, 8] {
            let p = k as u32 + 1;
            extra.push(cell(
                Theorem11,
                Convex,
                Cycle,
                mono(beta),
                1,
                p,
                k,
                50 * (k + 1),
            ));
            extra.push(cell(
                Theorem11,
                Convex,
                Zipf { s: 0.9 },
                mono(beta),
                1,
                24,
                k,
                800,
            ));
            extra.push(cell(
                Theorem13 { h: k / 2 },
                Convex,
                Uniform,
                mono(beta),
                1,
                20,
                k,
                600,
            ));
        }
        extra.push(cell(Claim23, Convex, Uniform, mono(beta), 1, 16, 6, 400));
    }
    for &n in &[5u32, 9, 12] {
        for &beta in &[2.0, 3.0] {
            extra.push(adversary_cell(Lru, beta, n));
        }
    }
    extra.push(adversary_cell(Convex, 2.0, 9));
    // The sweeps overlap the smoke cells at the shared corners; keep
    // the first occurrence so every id stays unique (the id keys the
    // per-cell seed only through its grid index, so order matters).
    let mut seen: std::collections::HashSet<String> = cells.iter().map(Cell::id).collect();
    for c in extra {
        if seen.insert(c.id()) {
            cells.push(c);
        }
    }
    Grid {
        name: "full",
        cells,
    }
}

/// Derive a per-cell seed from the grid seed and the cell's index, so
/// cells are independent yet the whole run is reproducible from one
/// number. SplitMix64 finalizer — same mixer as the workload generators.
pub fn cell_seed(grid_seed: u64, index: usize) -> u64 {
    let mut z = grid_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cell_ids_are_unique_within_each_grid() {
        for name in GRID_NAMES {
            let g = grid(name).unwrap();
            assert!(!g.cells.is_empty(), "{name} grid must not be empty");
            let ids: HashSet<String> = g.cells.iter().map(Cell::id).collect();
            assert_eq!(ids.len(), g.cells.len(), "duplicate cell id in {name}");
        }
    }

    #[test]
    fn unknown_grid_is_none() {
        assert!(grid("nope").is_none());
    }

    #[test]
    fn smoke_covers_every_check_and_oracle_regime() {
        let g = grid("smoke").unwrap();
        let has = |f: &dyn Fn(&Cell) -> bool| g.cells.iter().any(f);
        assert!(has(&|c| matches!(c.check, CheckKind::Theorem11)));
        assert!(has(&|c| matches!(c.check, CheckKind::Theorem13 { .. })));
        assert!(has(&|c| matches!(c.check, CheckKind::Claim23)));
        assert!(has(&|c| matches!(c.check, CheckKind::LowerBound14)));
        assert!(has(&|c| c.users == 1)); // Belady-exact regime
        assert!(has(&|c| c.users > 1 && c.len <= 16)); // exact_opt regime
        assert!(has(&|c| c.users > 1 && c.len > 16)); // heuristic regime
        assert!(has(&|c| matches!(c.cost, CostKind::FlatSla)));
        assert!(has(&|c| c.len == 0));
    }

    #[test]
    fn adversary_cells_follow_the_theorem_1_4_family() {
        for name in GRID_NAMES {
            for c in grid(name).unwrap().cells {
                if matches!(c.check, CheckKind::LowerBound14) {
                    assert_eq!(c.pages, c.users, "one page per user");
                    assert_eq!(c.k, (c.users - 1) as usize, "k = n − 1");
                    assert_eq!(c.len, 8 * (c.users as usize).pow(2), "T = 8n²");
                    assert!(c.users >= 3, "batch offline needs n ≥ 3");
                }
            }
        }
    }

    #[test]
    fn bicriteria_cells_keep_h_in_range() {
        for name in GRID_NAMES {
            for c in grid(name).unwrap().cells {
                if let CheckKind::Theorem13 { h } = c.check {
                    assert!(h >= 1 && h <= c.k, "h out of range in {}", c.id());
                }
            }
        }
    }

    #[test]
    fn cell_seed_is_deterministic_and_spreads() {
        assert_eq!(cell_seed(7, 3), cell_seed(7, 3));
        let seeds: HashSet<u64> = (0..64).map(|i| cell_seed(7, i)).collect();
        assert_eq!(seeds.len(), 64);
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
    }
}
