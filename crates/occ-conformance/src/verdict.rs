//! The verdict table: per-cell PASS/FAIL/VACUOUS records, the
//! schema-stamped JSON interchange form, and the `occ conformance`
//! table rendering.
//!
//! Determinism contract: [`VerdictTable::to_json`] is a pure function
//! of the grid, seed, and weaken factor — it carries **no wall-clock
//! timings, thread counts, or host details** — so two runs with the
//! same inputs produce byte-identical JSON (the CI gate diffs them).

use crate::shrink::Shrunk;
use occ_analysis::{fnum, Table};
use occ_probe::Json;

/// Verdict-table schema version (bump when keys change shape).
pub const CONFORMANCE_SCHEMA: u64 = 1;

/// Keys every verdict table must carry at the top level.
pub const REQUIRED_KEYS: &[&str] = &["schema", "grid", "seed", "weaken", "cells", "summary"];

/// The outcome of one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The bound was evaluated and holds.
    Pass,
    /// The bound was evaluated and is violated.
    Fail,
    /// The bound says nothing on this instance (unbounded `α`, zero
    /// cost on both sides, …) — neither evidence for nor against.
    Vacuous,
}

impl Verdict {
    /// Stable string form used in JSON and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Fail => "FAIL",
            Verdict::Vacuous => "VACUOUS",
        }
    }

    /// Parse the string form back.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "PASS" => Some(Verdict::Pass),
            "FAIL" => Some(Verdict::Fail),
            "VACUOUS" => Some(Verdict::Vacuous),
            _ => None,
        }
    }
}

/// One row of the verdict table.
#[derive(Clone, Debug)]
pub struct CellVerdict {
    /// Stable cell id (see `Cell::id`).
    pub id: String,
    /// Which statement was checked ("T1.1", "T1.3", "C2.3", "T1.4").
    pub check: &'static str,
    /// Online policy name.
    pub policy: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Cost-profile name.
    pub cost: String,
    /// Number of users `n`.
    pub users: u32,
    /// Online cache size `k`.
    pub k: usize,
    /// Offline cache size `h` for bi-criteria cells.
    pub h: Option<usize>,
    /// Trace length `T`.
    pub len: usize,
    /// Offline reference used: "belady" (exact, single user), "exact"
    /// (exact_opt), "heuristic" (upper bound on OPT — necessary-side
    /// check only), "batch" (§4 schedule), or "none".
    pub oracle: &'static str,
    /// Curvature constant `α` of the cost profile, when bounded.
    pub alpha: Option<f64>,
    /// Comparison direction: `"<="` for upper bounds, `">="` for the
    /// Theorem 1.4 growth requirement.
    pub op: &'static str,
    /// Left-hand side of the comparison (online cost, or the measured
    /// ratio for T1.4, or the Claim 2.3 derivative term).
    pub lhs: f64,
    /// Right-hand side (the theorem's bound after any weaken scaling).
    pub rhs: f64,
    /// Online total cost `Σ f_i(a_i)`.
    pub online_cost: f64,
    /// Offline reference cost (0 when no offline run is involved).
    pub offline_cost: f64,
    /// `online_cost / offline_cost` (∞ serialises as null).
    pub ratio: f64,
    /// The outcome.
    pub verdict: Verdict,
    /// Human-readable context ("why vacuous", oracle caveats, …).
    pub note: String,
    /// Minimal counterexample found by the shrinker, on FAIL.
    pub shrunk: Option<Shrunk>,
}

/// The full result of a grid run.
#[derive(Clone, Debug)]
pub struct VerdictTable {
    /// Grid name.
    pub grid: String,
    /// Grid seed.
    pub seed: u64,
    /// Bound-weakening factor (1.0 = the theorems as stated).
    pub weaken: f64,
    /// One verdict per cell, in grid order.
    pub cells: Vec<CellVerdict>,
}

impl VerdictTable {
    /// `(pass, fail, vacuous)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for cell in &self.cells {
            match cell.verdict {
                Verdict::Pass => c.0 += 1,
                Verdict::Fail => c.1 += 1,
                Verdict::Vacuous => c.2 += 1,
            }
        }
        c
    }

    /// Whether any cell FAILed.
    pub fn any_fail(&self) -> bool {
        self.cells.iter().any(|c| c.verdict == Verdict::Fail)
    }

    /// Serialize to the schema-stamped JSON object (deterministic key
    /// and cell order; no timings).
    pub fn to_json_value(&self) -> Json {
        let (pass, fail, vacuous) = self.counts();
        let cells: Vec<Json> = self.cells.iter().map(cell_to_json).collect();
        Json::Obj(vec![
            ("schema".into(), Json::from_u64(CONFORMANCE_SCHEMA)),
            ("grid".into(), Json::Str(self.grid.clone())),
            ("seed".into(), Json::from_u64(self.seed)),
            ("weaken".into(), Json::Num(self.weaken)),
            ("cells".into(), Json::Arr(cells)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("total".into(), Json::from_u64(self.cells.len() as u64)),
                    ("pass".into(), Json::from_u64(pass as u64)),
                    ("fail".into(), Json::from_u64(fail as u64)),
                    ("vacuous".into(), Json::from_u64(vacuous as u64)),
                ]),
            ),
        ])
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Check that `v` is a structurally valid verdict table: matching
    /// schema stamp first, then [`REQUIRED_KEYS`], well-formed cells,
    /// and a summary that agrees with the cell list.
    pub fn validate(v: &Json) -> Result<(), String> {
        occ_probe::check_schema_stamp(v, CONFORMANCE_SCHEMA, "verdict table")?;
        for key in REQUIRED_KEYS {
            if v.get(key).is_none() {
                return Err(format!("verdict table missing required key '{key}'"));
            }
        }
        let cells = v
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("'cells' must be an array")?;
        let mut counted = (0u64, 0u64, 0u64);
        for (i, cell) in cells.iter().enumerate() {
            for key in ["id", "check", "verdict", "op", "lhs", "rhs"] {
                if cell.get(key).is_none() {
                    return Err(format!("cell {i} missing required key '{key}'"));
                }
            }
            let verdict = cell
                .get("verdict")
                .and_then(Json::as_str)
                .and_then(Verdict::parse)
                .ok_or_else(|| format!("cell {i} has an unknown verdict"))?;
            match verdict {
                Verdict::Pass => counted.0 += 1,
                Verdict::Fail => counted.1 += 1,
                Verdict::Vacuous => counted.2 += 1,
            }
        }
        let summary = |key: &str| {
            v.get("summary")
                .and_then(|s| s.get(key))
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("summary missing '{key}'"))
        };
        let claimed = (summary("pass")?, summary("fail")?, summary("vacuous")?);
        if claimed != counted || summary("total")? != cells.len() as u64 {
            return Err(format!(
                "summary disagrees with cells: claimed {claimed:?}, counted {counted:?}"
            ));
        }
        Ok(())
    }

    /// Render as aligned text tables (the `occ conformance` output),
    /// in the same style as `occ report`.
    pub fn to_table(&self) -> String {
        let (pass, fail, vacuous) = self.counts();
        let mut out = String::new();
        let mut summary = Table::new(vec!["metric", "value"]);
        summary.row(vec!["grid".to_string(), self.grid.clone()]);
        summary.row(vec!["seed".to_string(), self.seed.to_string()]);
        summary.row(vec!["weaken".to_string(), fnum(self.weaken)]);
        summary.row(vec!["cells".to_string(), self.cells.len().to_string()]);
        summary.row(vec!["pass".to_string(), pass.to_string()]);
        summary.row(vec!["fail".to_string(), fail.to_string()]);
        summary.row(vec!["vacuous".to_string(), vacuous.to_string()]);
        out.push_str(&summary.to_markdown());
        out.push('\n');

        let mut t = Table::new(vec![
            "cell", "verdict", "lhs", "op", "rhs", "ratio", "oracle", "note",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.id.clone(),
                c.verdict.as_str().to_string(),
                fnum(c.lhs),
                c.op.to_string(),
                fnum(c.rhs),
                if c.ratio.is_finite() {
                    fnum(c.ratio)
                } else {
                    "inf".to_string()
                },
                c.oracle.to_string(),
                c.note.clone(),
            ]);
        }
        out.push_str(&t.to_markdown());

        let shrunk: Vec<&CellVerdict> = self.cells.iter().filter(|c| c.shrunk.is_some()).collect();
        if !shrunk.is_empty() {
            let mut t = Table::new(vec!["failing cell", "shrunk len", "shrunk k", "lhs", "rhs"]);
            for c in shrunk {
                let s = c.shrunk.as_ref().expect("filtered on is_some");
                t.row(vec![
                    c.id.clone(),
                    s.len.to_string(),
                    s.k.to_string(),
                    fnum(s.lhs),
                    fnum(s.rhs),
                ]);
            }
            out.push('\n');
            out.push_str(&t.to_markdown());
        }
        out
    }
}

fn opt_num(x: Option<f64>) -> Json {
    match x {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

fn cell_to_json(c: &CellVerdict) -> Json {
    let shrunk = match &c.shrunk {
        Some(s) => Json::Obj(vec![
            ("len".into(), Json::from_u64(s.len as u64)),
            ("k".into(), Json::from_u64(s.k as u64)),
            ("lhs".into(), Json::Num(s.lhs)),
            ("rhs".into(), Json::Num(s.rhs)),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("id".into(), Json::Str(c.id.clone())),
        ("check".into(), Json::Str(c.check.into())),
        ("policy".into(), Json::Str(c.policy.into())),
        ("workload".into(), Json::Str(c.workload.into())),
        ("cost".into(), Json::Str(c.cost.clone())),
        ("users".into(), Json::from_u64(c.users as u64)),
        ("k".into(), Json::from_u64(c.k as u64)),
        (
            "h".into(),
            match c.h {
                Some(h) => Json::from_u64(h as u64),
                None => Json::Null,
            },
        ),
        ("len".into(), Json::from_u64(c.len as u64)),
        ("oracle".into(), Json::Str(c.oracle.into())),
        ("alpha".into(), opt_num(c.alpha)),
        ("op".into(), Json::Str(c.op.into())),
        ("lhs".into(), Json::Num(c.lhs)),
        ("rhs".into(), Json::Num(c.rhs)),
        ("online_cost".into(), Json::Num(c.online_cost)),
        ("offline_cost".into(), Json::Num(c.offline_cost)),
        ("ratio".into(), Json::Num(c.ratio)),
        ("verdict".into(), Json::Str(c.verdict.as_str().into())),
        ("note".into(), Json::Str(c.note.clone())),
        ("shrunk".into(), shrunk),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell(verdict: Verdict) -> CellVerdict {
        CellVerdict {
            id: "t11-convex-cycle-mono2-u1-p5-k4-t200".into(),
            check: "T1.1",
            policy: "convex",
            workload: "cycle",
            cost: "mono2".into(),
            users: 1,
            k: 4,
            h: None,
            len: 200,
            oracle: "belady",
            alpha: Some(2.0),
            op: "<=",
            lhs: 100.0,
            rhs: 200.0,
            online_cost: 100.0,
            offline_cost: 25.0,
            ratio: 4.0,
            verdict,
            note: String::new(),
            shrunk: None,
        }
    }

    fn sample_table() -> VerdictTable {
        VerdictTable {
            grid: "smoke".into(),
            seed: 7,
            weaken: 1.0,
            cells: vec![sample_cell(Verdict::Pass), sample_cell(Verdict::Vacuous)],
        }
    }

    #[test]
    fn json_round_trips_and_validates() {
        let t = sample_table();
        let v = Json::parse(&t.to_json()).unwrap();
        VerdictTable::validate(&v).unwrap();
        assert_eq!(v.get("grid").and_then(Json::as_str), Some("smoke"));
        let cells = v.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("verdict").and_then(Json::as_str), Some("PASS"));
    }

    #[test]
    fn validate_rejects_wrong_schema_and_bad_summary() {
        let err = VerdictTable::validate(&Json::parse(r#"{"schema": 99}"#).unwrap()).unwrap_err();
        assert!(err.contains("schema 99 unsupported"), "got: {err}");

        // Tamper with the summary: counts no longer match the cells.
        let t = sample_table();
        let tampered = t.to_json().replace(r#""pass":1"#, r#""pass":2"#);
        let err = VerdictTable::validate(&Json::parse(&tampered).unwrap()).unwrap_err();
        assert!(err.contains("summary disagrees"), "got: {err}");

        // An unknown verdict string is rejected.
        let bad = t.to_json().replace("VACUOUS", "MAYBE");
        assert!(VerdictTable::validate(&Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn counts_and_any_fail() {
        let mut t = sample_table();
        assert_eq!(t.counts(), (1, 0, 1));
        assert!(!t.any_fail());
        t.cells.push(sample_cell(Verdict::Fail));
        assert!(t.any_fail());
        assert_eq!(t.counts(), (1, 1, 1));
    }

    #[test]
    fn table_rendering_includes_shrunk_section_only_on_fail() {
        let mut t = sample_table();
        assert!(!t.to_table().contains("shrunk len"));
        let mut failing = sample_cell(Verdict::Fail);
        failing.shrunk = Some(Shrunk {
            len: 12,
            k: 2,
            lhs: 9.0,
            rhs: 8.0,
        });
        t.cells.push(failing);
        let text = t.to_table();
        assert!(text.contains("shrunk len"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn infinite_ratio_serializes_as_null() {
        let mut t = sample_table();
        t.cells[0].ratio = f64::INFINITY;
        let v = Json::parse(&t.to_json()).unwrap();
        let cells = v.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells[0].get("ratio"), Some(&Json::Null));
        VerdictTable::validate(&v).unwrap();
    }

    #[test]
    fn verdict_strings_round_trip() {
        for v in [Verdict::Pass, Verdict::Fail, Verdict::Vacuous] {
            assert_eq!(Verdict::parse(v.as_str()), Some(v));
        }
        assert_eq!(Verdict::parse("maybe"), None);
    }
}
