//! Evaluate one conformance cell: build the instance, run the online
//! policy (with recorder hooks attached), run the offline reference,
//! and compare against the paper's bound.
//!
//! Oracle selection, in decreasing strength:
//!
//! 1. **belady** — single-user instances, where minimizing misses
//!    minimizes any increasing cost: an *exact* OPT.
//! 2. **exact** — multi-user instances small enough for
//!    `occ_offline::try_exact_opt` within a fixed state budget.
//! 3. **heuristic** — `best_offline_heuristic`, an *upper bound* on
//!    OPT's cost. Since the theorem's right-hand side is increasing in
//!    the offline miss vector, a PASS against the heuristic is a
//!    *necessary-condition* check only; the verdict note says so.
//!
//! The selection is a pure function of the instance, so verdicts stay
//! deterministic.

use crate::grid::{Cell, CheckKind, CostKind, PolicyKind, WorkloadKind};
use crate::verdict::Verdict;
use occ_analysis::{check_theorem_1_1_scaled, check_theorem_1_3_scaled};
use occ_baselines::Lru;
use occ_core::{
    theorem_1_4_lower, try_check_claim_2_3, ConvexCaching, CostFn, CostProfile, Linear, Monomial,
    PiecewiseLinear,
};
use occ_offline::{batch_offline, belady_miss_vector, best_offline_heuristic, try_exact_opt};
use occ_probe::MetricsRecorder;
use occ_sim::{ReplacementPolicy, SteppingEngine, Trace, Universe};
use occ_workloads::{cycle_trace, run_lower_bound, two_tier, uniform_trace, zipf_trace};
use std::sync::Arc;

/// Relative slack for floating-point comparisons (matches the
/// `BoundCheck` tolerance in `occ-analysis`).
const REL_EPS: f64 = 1e-9;

/// Instances at or below this size go to the exact offline solver.
const EXACT_MAX_PAGES: u32 = 8;
/// Trace-length ceiling for the exact solver.
const EXACT_MAX_LEN: usize = 16;
/// State budget handed to `try_exact_opt`; on exhaustion the cell falls
/// back to the heuristic oracle (deterministically — the budget is part
/// of the instance→oracle function).
const EXACT_STATE_BUDGET: usize = 2_000_000;

/// Number of epochs the Claim 2.3 cells split their run into.
const CLAIM23_EPOCHS: usize = 8;

/// Everything the runner needs to turn into a `CellVerdict`.
#[derive(Clone, Debug)]
pub(crate) struct Evaluated {
    pub verdict: Verdict,
    pub oracle: &'static str,
    pub alpha: Option<f64>,
    pub op: &'static str,
    pub lhs: f64,
    pub rhs: f64,
    pub online_cost: f64,
    pub offline_cost: f64,
    pub ratio: f64,
    pub note: String,
}

impl Evaluated {
    fn vacuous(note: &str) -> Self {
        Evaluated {
            verdict: Verdict::Vacuous,
            oracle: "none",
            alpha: None,
            op: "<=",
            lhs: 0.0,
            rhs: 0.0,
            online_cost: 0.0,
            offline_cost: 0.0,
            ratio: 1.0,
            note: note.into(),
        }
    }
}

/// Build the cell's cost profile.
pub(crate) fn build_costs(cell: &Cell) -> CostProfile {
    let n = cell.users;
    match cell.cost {
        CostKind::Monomial { beta } => CostProfile::uniform(n, Monomial::power(beta)),
        CostKind::Sla {
            tolerance,
            base,
            penalty,
        } => CostProfile::uniform(n, PiecewiseLinear::sla(tolerance, base, penalty)),
        CostKind::TwoTierMix => {
            assert_eq!(n, 2, "the two-tier mix prices exactly two users");
            CostProfile::new(vec![
                Arc::new(Monomial::power(2.0)) as CostFn,
                Arc::new(Linear::unit()) as CostFn,
            ])
        }
        // Flat first segment ⇒ f(b₁) = 0 ⇒ α unbounded (alpha() = None).
        CostKind::FlatSla => {
            CostProfile::uniform(n, PiecewiseLinear::new(vec![0.0, 5.0], vec![3.0]))
        }
    }
}

/// Build the cell's trace. Panics on [`WorkloadKind::Adversary`], whose
/// trace depends on the online policy (see [`lower_bound`]).
fn build_trace(cell: &Cell, seed: u64) -> Trace {
    match cell.workload {
        WorkloadKind::Cycle => cycle_trace(cell.pages, cell.len),
        WorkloadKind::Zipf { s } => zipf_trace(cell.pages, cell.len, s, seed),
        WorkloadKind::Uniform => uniform_trace(cell.pages, cell.len, seed),
        WorkloadKind::TinyMix => {
            assert_eq!(cell.pages % cell.users, 0, "pages must split evenly");
            let u = Universe::uniform(cell.users, cell.pages / cell.users);
            let m = cell.pages as u64;
            let pages: Vec<u32> = (0..cell.len as u64)
                .map(|i| ((i * 7 + seed % m) % m) as u32)
                .collect();
            Trace::from_page_indices(&u, &pages)
        }
        WorkloadKind::TwoTier => two_tier().trace(cell.len, seed),
        WorkloadKind::Adversary => {
            unreachable!("adversary traces are produced by the online run itself")
        }
    }
}

fn make_policy(kind: PolicyKind, costs: &CostProfile) -> Box<dyn ReplacementPolicy> {
    match kind {
        PolicyKind::Convex => Box::new(ConvexCaching::new(costs.clone())),
        PolicyKind::Lru => Box::new(Lru::new()),
    }
}

/// Drive the trace through a [`SteppingEngine`] with the recorder
/// attached, returning the per-user miss vector and (when `epoch_len`
/// is set) the per-epoch per-user miss *increments* for Claim 2.3.
fn run_online(
    policy: Box<dyn ReplacementPolicy>,
    trace: &Trace,
    k: usize,
    epoch_len: Option<u64>,
    rec: &mut MetricsRecorder,
) -> (Vec<u64>, Vec<Vec<u64>>) {
    let universe = trace.universe().clone();
    let num_users = universe.num_users() as usize;
    let mut eng = SteppingEngine::new(k, universe, policy).with_recorder(&mut *rec);
    let mut epochs: Vec<Vec<u64>> = Vec::new();
    let mut at_epoch_start = vec![0u64; num_users];
    for (t, req) in trace.iter() {
        eng.step(req);
        if let Some(el) = epoch_len {
            if (t + 1) % el == 0 {
                push_epoch(eng.stats().miss_vector(), &mut at_epoch_start, &mut epochs);
            }
        }
    }
    let misses = eng.stats().miss_vector();
    if let Some(el) = epoch_len {
        if !(trace.len() as u64).is_multiple_of(el) {
            push_epoch(misses.clone(), &mut at_epoch_start, &mut epochs);
        }
    }
    (misses, epochs)
}

fn push_epoch(cumulative: Vec<u64>, at_start: &mut Vec<u64>, epochs: &mut Vec<Vec<u64>>) {
    let delta: Vec<u64> = cumulative
        .iter()
        .zip(at_start.iter())
        .map(|(now, before)| now - before)
        .collect();
    epochs.push(delta);
    *at_start = cumulative;
}

/// Pick the strongest affordable offline reference (see module docs).
fn offline_reference(trace: &Trace, k: usize, costs: &CostProfile) -> (&'static str, Vec<u64>) {
    let u = trace.universe();
    if u.num_users() == 1 {
        return ("belady", belady_miss_vector(trace, k));
    }
    if u.num_pages() <= EXACT_MAX_PAGES && trace.len() <= EXACT_MAX_LEN {
        if let Some(opt) = try_exact_opt(trace, k, costs, EXACT_STATE_BUDGET) {
            return ("exact", opt.misses);
        }
    }
    let (_cost, misses) = best_offline_heuristic(trace, k, costs);
    ("heuristic", misses)
}

/// Evaluate one cell. `weaken` scales upper-bound right-hand sides (and
/// divides the T1.4 growth requirement): `1.0` checks the theorems as
/// stated, values `< 1` tighten them into the deliberate-failure
/// fixture.
pub(crate) fn evaluate(
    cell: &Cell,
    seed: u64,
    weaken: f64,
    rec: &mut MetricsRecorder,
) -> Evaluated {
    match cell.check {
        CheckKind::Theorem11 => upper_bound(cell, seed, weaken, cell.k, rec),
        CheckKind::Theorem13 { h } => upper_bound(cell, seed, weaken, h, rec),
        CheckKind::Claim23 => claim23(cell, seed, weaken, rec),
        CheckKind::LowerBound14 => lower_bound(cell, weaken, rec),
    }
}

fn upper_bound(
    cell: &Cell,
    seed: u64,
    weaken: f64,
    h: usize,
    rec: &mut MetricsRecorder,
) -> Evaluated {
    let costs = build_costs(cell);
    let Some(alpha) = costs.alpha() else {
        return Evaluated::vacuous("α unbounded for this cost profile: the bound says nothing");
    };
    let trace = build_trace(cell, seed);
    let (online, _) = run_online(make_policy(cell.policy, &costs), &trace, cell.k, None, rec);
    let (oracle, offline) = if trace.is_empty() {
        ("none", vec![0u64; cell.users as usize])
    } else {
        offline_reference(&trace, h, &costs)
    };
    let check = match cell.check {
        CheckKind::Theorem11 => {
            check_theorem_1_1_scaled(&costs, &online, &offline, alpha, cell.k, weaken)
        }
        CheckKind::Theorem13 { h } => {
            check_theorem_1_3_scaled(&costs, &online, &offline, alpha, cell.k, h, weaken)
        }
        _ => unreachable!("upper_bound only serves T1.1/T1.3"),
    };
    if check.online_cost == 0.0 && check.rhs == 0.0 {
        let mut e = Evaluated::vacuous("zero-cost instance: both sides of the bound are 0");
        e.oracle = oracle;
        e.alpha = Some(alpha);
        return e;
    }
    let note = if oracle == "heuristic" {
        "offline is an upper bound on OPT: necessary-side check".into()
    } else {
        String::new()
    };
    Evaluated {
        verdict: if check.satisfied {
            Verdict::Pass
        } else {
            Verdict::Fail
        },
        oracle,
        alpha: Some(alpha),
        op: "<=",
        lhs: check.online_cost,
        rhs: check.rhs,
        online_cost: check.online_cost,
        offline_cost: check.offline_cost,
        ratio: check.ratio,
        note,
    }
}

fn claim23(cell: &Cell, seed: u64, weaken: f64, rec: &mut MetricsRecorder) -> Evaluated {
    let costs = build_costs(cell);
    let trace = build_trace(cell, seed);
    let epoch_len = (cell.len as u64 / CLAIM23_EPOCHS as u64).max(1);
    let (misses, epochs) = run_online(
        make_policy(cell.policy, &costs),
        &trace,
        cell.k,
        Some(epoch_len),
        rec,
    );
    // Check the claim for every user's epoch increments; report the
    // worst margin (most FAIL-prone user) as the cell's lhs/rhs.
    let mut worst: Option<(f64, f64)> = None; // (lhs, rhs), by margin
    let mut max_lhs = 0.0f64;
    for user in 0..cell.users as usize {
        let xs: Vec<f64> = epochs.iter().map(|e| e[user] as f64).collect();
        let f = costs.user(occ_sim::UserId(user as u32));
        let Some(out) = try_check_claim_2_3(f, &xs, None) else {
            return Evaluated::vacuous("α unbounded for this cost profile: the bound says nothing");
        };
        let rhs = out.rhs * weaken;
        max_lhs = max_lhs.max(out.lhs);
        let better = match worst {
            Some((lhs0, rhs0)) => out.lhs - rhs > lhs0 - rhs0,
            None => true,
        };
        if better {
            worst = Some((out.lhs, rhs));
        }
    }
    let (lhs, rhs) = worst.expect("every cell has at least one user");
    if max_lhs == 0.0 {
        return Evaluated::vacuous("no misses recorded: both sides of the claim are 0");
    }
    let alpha = costs.alpha();
    Evaluated {
        verdict: if lhs <= rhs * (1.0 + REL_EPS) + REL_EPS {
            Verdict::Pass
        } else {
            Verdict::Fail
        },
        oracle: "none",
        alpha,
        op: "<=",
        lhs,
        rhs,
        online_cost: costs.total_cost(&misses),
        offline_cost: 0.0,
        ratio: if lhs > 0.0 { rhs / lhs } else { f64::INFINITY },
        note: format!("worst user over {CLAIM23_EPOCHS} epochs"),
    }
}

fn lower_bound(cell: &Cell, weaken: f64, rec: &mut MetricsRecorder) -> Evaluated {
    let CostKind::Monomial { beta } = cell.cost else {
        return Evaluated::vacuous("Theorem 1.4 is stated for x^β costs");
    };
    let costs = build_costs(cell);
    let n = cell.users;
    // The adversary adapts to the policy; both are deterministic, so
    // replaying the recorded trace through a fresh policy instance
    // reproduces the run exactly — that replay is what the recorder
    // observes (same misses, same outcome, hooks attached).
    let mut probe = make_policy(cell.policy, &costs);
    let (_live, trace) = run_lower_bound(&mut probe, n, cell.len as u64);
    let (online, _) = run_online(make_policy(cell.policy, &costs), &trace, cell.k, None, rec);
    let online_cost = costs.total_cost(&online);
    let offline = batch_offline(&trace, cell.k);
    let offline_cost = costs.total_cost(&offline.misses);
    if offline_cost == 0.0 {
        return Evaluated::vacuous("offline cost is 0: the ratio is unbounded, nothing to check");
    }
    let ratio = online_cost / offline_cost;
    let required = theorem_1_4_lower(n as usize, beta) / weaken;
    Evaluated {
        verdict: if ratio >= required * (1.0 - REL_EPS) - REL_EPS {
            Verdict::Pass
        } else {
            Verdict::Fail
        },
        oracle: "batch",
        alpha: costs.alpha(),
        op: ">=",
        lhs: ratio,
        rhs: required,
        online_cost,
        offline_cost,
        ratio,
        note: format!("(n/4)^β growth on the §4 adversary, n={n}, T=8n²"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Cell, CheckKind, CostKind, PolicyKind, WorkloadKind};

    fn base_cell() -> Cell {
        Cell {
            check: CheckKind::Theorem11,
            policy: PolicyKind::Convex,
            workload: WorkloadKind::Cycle,
            cost: CostKind::Monomial { beta: 2.0 },
            users: 1,
            pages: 5,
            k: 4,
            len: 200,
        }
    }

    #[test]
    fn belady_cell_passes_theorem_1_1() {
        let mut rec = MetricsRecorder::new();
        let e = evaluate(&base_cell(), 7, 1.0, &mut rec);
        assert_eq!(e.verdict, Verdict::Pass, "note: {}", e.note);
        assert_eq!(e.oracle, "belady");
        assert_eq!(e.alpha, Some(2.0));
        assert!(e.lhs <= e.rhs);
        // Recorder hooks really fired: one record per request.
        assert_eq!(rec.requests(), 200);
    }

    #[test]
    fn weakened_bound_fails_the_same_cell() {
        let mut rec = MetricsRecorder::new();
        let e = evaluate(&base_cell(), 7, 1e-6, &mut rec);
        assert_eq!(e.verdict, Verdict::Fail);
        assert!(e.lhs > e.rhs);
    }

    #[test]
    fn flat_sla_is_vacuous_not_pass() {
        let mut cell = base_cell();
        cell.cost = CostKind::FlatSla;
        let e = evaluate(&cell, 7, 1.0, &mut MetricsRecorder::new());
        assert_eq!(e.verdict, Verdict::Vacuous);
        assert!(e.note.contains("α unbounded"), "note: {}", e.note);
    }

    #[test]
    fn empty_trace_is_vacuous() {
        let mut cell = base_cell();
        cell.len = 0;
        let e = evaluate(&cell, 7, 1.0, &mut MetricsRecorder::new());
        assert_eq!(e.verdict, Verdict::Vacuous);
        assert!(e.note.contains("zero-cost"), "note: {}", e.note);
    }

    #[test]
    fn tiny_mix_uses_the_exact_oracle() {
        let cell = Cell {
            check: CheckKind::Theorem11,
            policy: PolicyKind::Convex,
            workload: WorkloadKind::TinyMix,
            cost: CostKind::Monomial { beta: 2.0 },
            users: 2,
            pages: 6,
            k: 3,
            len: 14,
        };
        let e = evaluate(&cell, 7, 1.0, &mut MetricsRecorder::new());
        assert_eq!(e.oracle, "exact");
        assert_eq!(e.verdict, Verdict::Pass, "note: {}", e.note);
    }

    #[test]
    fn lower_bound_cell_clears_the_analytic_growth() {
        let cell = Cell {
            check: CheckKind::LowerBound14,
            policy: PolicyKind::Lru,
            workload: WorkloadKind::Adversary,
            cost: CostKind::Monomial { beta: 2.0 },
            users: 5,
            pages: 5,
            k: 4,
            len: 200,
        };
        let mut rec = MetricsRecorder::new();
        let e = evaluate(&cell, 7, 1.0, &mut rec);
        assert_eq!(e.verdict, Verdict::Pass, "ratio {} vs {}", e.lhs, e.rhs);
        assert_eq!(e.op, ">=");
        assert!((e.rhs - 1.5625).abs() < 1e-12, "required (5/4)^2");
        assert_eq!(rec.requests(), 200, "replay goes through the recorder");
    }

    #[test]
    fn claim23_holds_on_a_real_run() {
        let cell = Cell {
            check: CheckKind::Claim23,
            policy: PolicyKind::Convex,
            workload: WorkloadKind::Zipf { s: 0.9 },
            cost: CostKind::Monomial { beta: 2.0 },
            users: 1,
            pages: 12,
            k: 5,
            len: 320,
        };
        let e = evaluate(&cell, 7, 1.0, &mut MetricsRecorder::new());
        assert_eq!(e.verdict, Verdict::Pass, "note: {}", e.note);
        assert!(e.lhs > 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let cell = Cell {
            workload: WorkloadKind::Zipf { s: 0.8 },
            pages: 16,
            k: 6,
            len: 400,
            ..base_cell()
        };
        let a = evaluate(&cell, 11, 1.0, &mut MetricsRecorder::new());
        let b = evaluate(&cell, 11, 1.0, &mut MetricsRecorder::new());
        assert_eq!(a.lhs, b.lhs);
        assert_eq!(a.rhs, b.rhs);
        assert_eq!(a.verdict, b.verdict);
        // A different seed changes the trace (and generally the costs).
        let c = evaluate(&cell, 12, 1.0, &mut MetricsRecorder::new());
        assert_eq!(c.verdict, Verdict::Pass);
    }
}
