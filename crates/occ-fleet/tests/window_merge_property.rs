//! Property: merging per-shard window series across a fleet is exactly
//! equivalent to summing the shards window-by-window, and the merged
//! series sums to the fleet's merged whole-run recorder — for arbitrary
//! shard counts, unequal shard lengths, and arbitrary window widths.

use occ_baselines::Lru;
use occ_fleet::{run_fleet, FleetConfig};
use occ_sim::ReplacementPolicy;
use occ_workloads::presets::two_tier;
use proptest::prelude::*;

fn lru_factory(_shard: usize) -> Box<dyn ReplacementPolicy> {
    Box::new(Lru::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merged_series_is_the_window_wise_sum_of_shards(
        lens in proptest::collection::vec(50u64..800, 1..4),
        width in 1u64..700,
        seed in 0u64..1000,
    ) {
        let scenario = two_tier();
        let mut cfg = FleetConfig::new(scenario.suggested_k);
        cfg.window = Some(width);
        let report = run_fleet(
            lens.iter()
                .enumerate()
                .map(|(i, &len)| scenario.stream(len, seed + i as u64))
                .collect(),
            &cfg,
            lru_factory,
        );

        let merged = report.merged_series.as_ref().expect("windowing was on");
        prop_assert_eq!(merged.width, width);

        // Every shard's own series sums to that shard's whole-run stats,
        // and covers ceil(len/width) windows.
        for (i, shard) in report.shards.iter().enumerate() {
            let series = shard.series.as_ref().expect("per-shard series");
            prop_assert_eq!(series.windows.len() as u64, lens[i].div_ceil(width));
            let total = series.total();
            prop_assert_eq!(total.hits, shard.stats.total_hits(), "shard {} hits", i);
            prop_assert_eq!(total.misses(), shard.stats.total_misses(), "shard {} misses", i);
        }

        // The merge has exactly the windows of the longest shard, and
        // window index i is the field-wise sum of every shard's window i
        // (shards shorter than i*width simply don't contribute).
        let longest = lens.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(merged.windows.len() as u64, longest.div_ceil(width));
        for (i, w) in merged.windows.iter().enumerate() {
            prop_assert_eq!(w.index, i as u64);
            let sum = |f: &dyn Fn(&occ_probe::WindowDelta) -> u64| -> u64 {
                report
                    .shards
                    .iter()
                    .filter_map(|s| s.series.as_ref().unwrap().windows.get(i))
                    .map(f)
                    .sum()
            };
            prop_assert_eq!(w.hits, sum(&|d| d.hits), "window {} hits", i);
            prop_assert_eq!(w.inserts, sum(&|d| d.inserts), "window {} inserts", i);
            prop_assert_eq!(w.evictions, sum(&|d| d.evictions), "window {} evictions", i);
            prop_assert_eq!(
                w.flush_evictions,
                sum(&|d| d.flush_evictions),
                "window {} flush", i
            );
            prop_assert_eq!(w.requests(), sum(&|d| d.requests()), "window {} requests", i);
        }

        // And the merged series sums to the fleet's merged recorder,
        // i.e. merge-then-sum equals sum-then-merge.
        let total = merged.total();
        prop_assert_eq!(total.hits, report.merged.hits());
        prop_assert_eq!(total.inserts, report.merged.inserts());
        prop_assert_eq!(total.evictions, report.merged.evictions());
        prop_assert_eq!(total.requests(), report.merged.requests());
    }
}
