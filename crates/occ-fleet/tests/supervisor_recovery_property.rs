//! Property: a supervised fleet run under an arbitrary seeded kill
//! schedule recovers to output **byte-identical** to the uninterrupted
//! run — merged window series (serialized bytes), per-shard window
//! series, per-user miss vectors, and whole-run stats — for arbitrary
//! kill points, shard counts, and window widths. The correctness gate
//! of the fault-tolerance work: recovery must be invisible in the data.

use occ_baselines::Lru;
use occ_fleet::{
    run_supervised_fleet, NoPersist, ShardKill, ShardPersist, StoreFault, SupervisorConfig,
};
use occ_workloads::presets::two_tier;
use proptest::prelude::*;

const LEN: u64 = 900;

fn run(
    shards: usize,
    width: u64,
    kills: Vec<ShardKill>,
    faults: Vec<StoreFault>,
) -> occ_fleet::FleetReport {
    let scenario = two_tier();
    let mut cfg = SupervisorConfig::new(scenario.suggested_k, width);
    // Budget covers the densest schedule the strategy can draw.
    cfg.max_restarts = 64;
    cfg.kills = kills;
    cfg.store_faults = faults;
    run_supervised_fleet(
        shards,
        &cfg,
        |shard| two_tier().stream(LEN, 7 + shard as u64),
        |_shard| Lru::new(),
        |_shard| Box::new(NoPersist) as Box<dyn ShardPersist>,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_is_byte_identical_to_the_uninterrupted_run(
        shards in 1usize..5,
        width in 1u64..500,
        // Kill points over shard indices possibly past the fleet (those
        // never fire) and times spanning the whole stream including
        // t=0 and t=LEN.
        kill_spec in proptest::collection::vec((0usize..5, 0u64..=LEN), 0..8),
        fault_spec in proptest::collection::vec((0usize..5, 1u64..6), 0..3),
    ) {
        let kills: Vec<ShardKill> = kill_spec
            .iter()
            .map(|&(shard, at)| ShardKill { shard: shard % shards, at })
            .collect();
        let faults: Vec<StoreFault> = fault_spec
            .iter()
            .map(|&(shard, nth)| StoreFault { shard: shard % shards, nth })
            .collect();

        let clean = run(shards, width, Vec::new(), Vec::new());
        let chaos = run(shards, width, kills.clone(), faults);

        let sup = chaos.supervisor.as_ref().expect("supervised run");
        prop_assert!(!sup.is_degraded(), "budget covers every schedule");

        for (a, b) in clean.shards.iter().zip(&chaos.shards) {
            prop_assert_eq!(&a.stats, &b.stats, "shard {} stats", a.shard);
            prop_assert_eq!(
                a.stats.miss_vector(),
                b.stats.miss_vector(),
                "shard {} per-user miss vector", a.shard
            );
            prop_assert_eq!(a.served, b.served, "shard {} served", a.shard);
            prop_assert_eq!(&a.series, &b.series, "shard {} series", a.shard);
        }

        // Byte-identity of the merged series, not just structural
        // equality: serialize both and compare the strings.
        let clean_bytes = clean.merged_series.as_ref().unwrap().to_json_value().to_json();
        let chaos_bytes = chaos.merged_series.as_ref().unwrap().to_json_value().to_json();
        prop_assert_eq!(clean_bytes, chaos_bytes, "merged series bytes diverged");

        // Every kill that targeted a live shard at a reachable time was
        // actually absorbed as a restart (faults add more).
        let fired = kills.iter().filter(|k| k.shard < shards).count() as u64;
        prop_assert!(
            sup.total_restarts() >= fired,
            "{} kills scheduled but only {} restarts",
            fired,
            sup.total_restarts()
        );
    }
}
