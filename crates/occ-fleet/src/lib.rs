#![warn(missing_docs)]
//! Sharded fleet runner: many independent cache instances in parallel.
//!
//! A *fleet* models the deployment the paper's SQLVM motivation implies
//! but a single simulator cannot express: `F` servers, each running its
//! own cache of size `k` over its own tenant mix, observed as one
//! system. Each shard is a complete [`SteppingEngine`] replay —
//! sharding is **not** a split of one cache's capacity; it is `F`
//! independent caches whose telemetry is merged afterwards.
//!
//! The runner drives shards on scoped worker threads
//! ([`std::thread::scope`], no detached lifetimes) — at most one worker
//! per available hardware thread, each replaying its queue of shards
//! sequentially, and no thread at all when a single worker suffices —
//! feeds each shard from a streaming [`RequestSource`] through the
//! batched engine path ([`SteppingEngine::step_batch`], trace-backed
//! sources handing over whole slices via [`RequestSource::next_run`]),
//! and folds the per-shard [`MetricsRecorder`]s into one merged
//! recorder with the same shard-merge machinery the observability layer
//! already ships — so the merged report is indistinguishable from a
//! single recorder that watched every shard.
//!
//! Determinism: each shard's outcome depends only on its own source and
//! policy, never on scheduling, so per-shard stats are byte-identical
//! to running the shards sequentially (pinned by tests). Only the
//! wall-clock aggregate varies with parallelism.
//!
//! Two entry points share one implementation: [`run_fleet`] takes boxed
//! policies for heterogeneous fleets, and [`run_fleet_typed`] is the
//! monomorphized fast path for throughput work — concrete policy type,
//! statically dispatched callbacks, and (with recording off) no
//! recorder merge.

pub mod shared;
pub mod supervisor;

use occ_probe::{MetricsRecorder, WindowSeries, WindowedRecorder};
use occ_sim::probe::Recorder;
use occ_sim::{ReplacementPolicy, RequestSource, SimStats, SteppingEngine, DEFAULT_BATCH_SIZE};
use std::time::{Duration, Instant};

pub use occ_probe::Json;
pub use shared::{run_shared_fleet, SharedConfig, SharedError, SharedReport, SHARED_SCHEMA};
pub use supervisor::{
    run_supervised_fleet, BackoffPolicy, DirPersist, FaultyPersist, NoPersist, ShardKill,
    ShardPersist, ShardState, ShardStatus, StoreFault, SupervisorConfig, SupervisorReport,
};

/// Schema stamp for [`FleetReport::to_json_value`].
///
/// v2: per-shard `misses_by_user`, and supervised runs add a
/// `supervisor` section (plus a `degraded` section when a shard was
/// quarantined).
pub const FLEET_SCHEMA: u64 = 2;

/// How each shard of the fleet is run.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Cache capacity `k` of every shard (each shard gets its own full
    /// `k` — see the module docs).
    pub capacity: usize,
    /// Requests per [`SteppingEngine::step_batch`] call.
    pub batch_size: usize,
    /// Apply the paper's end-of-run flush convention per shard.
    pub flush_at_end: bool,
    /// Attach a [`MetricsRecorder`] to every shard. Costs a monotonic
    /// clock sample per request (the recorder is `TIMED`); turn it off
    /// for pure-throughput runs, which then take the zero-overhead
    /// batched path and leave [`ShardReport::recorder`] empty.
    pub record: bool,
    /// Cap on worker threads; `None` means one per available hardware
    /// thread. The runner never uses more workers than shards, and a
    /// single worker runs every shard sequentially on the calling
    /// thread with no spawn at all — oversubscribing cores buys nothing
    /// but context switches, so the default matches the hardware.
    pub max_workers: Option<usize>,
    /// Attach a tumbling-window [`WindowedRecorder`] of this width to
    /// every shard (requires [`FleetConfig::record`]), populating
    /// [`ShardReport::series`] and [`FleetReport::merged_series`]. The
    /// shard windows are untimed, so the series is deterministic.
    pub window: Option<u64>,
}

impl FleetConfig {
    /// A recording fleet with capacity `k` and the default batch size.
    pub fn new(capacity: usize) -> Self {
        FleetConfig {
            capacity,
            batch_size: DEFAULT_BATCH_SIZE,
            flush_at_end: false,
            record: true,
            max_workers: None,
            window: None,
        }
    }

    /// Worker threads this config would use for `shards` shards: the
    /// explicit cap if set, else the machine's available parallelism,
    /// never more than the shard count and never zero.
    fn workers_for(&self, shards: usize) -> usize {
        self.max_workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, shards.max(1))
    }
}

/// Outcome of one shard's replay.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (position in the source list handed to [`run_fleet`]).
    pub shard: usize,
    /// Per-user counters, identical to a sequential run of this shard.
    pub stats: SimStats,
    /// Requests served by this shard.
    pub served: u64,
    /// This shard's own wall-clock time.
    pub elapsed: Duration,
    /// The shard's recorder ([`FleetConfig::record`]); empty when
    /// recording was off.
    pub recorder: MetricsRecorder,
    /// This shard's tumbling-window series ([`FleetConfig::window`]);
    /// `None` when windowing was off.
    pub series: Option<WindowSeries>,
}

impl ShardReport {
    /// This shard's throughput in requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.served as f64 / self.elapsed.as_secs_f64()
    }
}

/// Outcome of a whole fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardReport>,
    /// All shard recorders folded into one (empty when recording was
    /// off), merged in shard order.
    pub merged: MetricsRecorder,
    /// All shard window series merged in shard order
    /// ([`FleetConfig::window`]): window `i` of the merge is the sum of
    /// every shard's window `i`. `None` when windowing was off.
    pub merged_series: Option<WindowSeries>,
    /// Requests served across every shard.
    pub total_requests: u64,
    /// Wall-clock time for the whole fleet (parallel, so typically far
    /// below the sum of per-shard `elapsed`).
    pub wall: Duration,
    /// Supervision outcome — `Some` only for
    /// [`run_supervised_fleet`] runs; the plain runners never fail
    /// partially (a shard panic aborts them), so they carry `None`.
    pub supervisor: Option<SupervisorReport>,
}

impl FleetReport {
    /// Fleet-wide throughput: total requests over fleet wall-clock.
    /// This is the number that should scale with shard count on idle
    /// multicore hardware.
    pub fn aggregate_requests_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.total_requests as f64 / self.wall.as_secs_f64()
    }

    /// Misses summed over every shard's stats.
    pub fn total_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.total_misses()).sum()
    }

    /// Hits summed over every shard's stats.
    pub fn total_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.stats.total_hits()).sum()
    }

    /// The schema-stamped JSON report behind `occ fleet --format json`.
    pub fn to_json_value(&self) -> Json {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("shard".into(), Json::from_u64(s.shard as u64)),
                    ("requests".into(), Json::from_u64(s.served)),
                    ("hits".into(), Json::from_u64(s.stats.total_hits())),
                    ("misses".into(), Json::from_u64(s.stats.total_misses())),
                    (
                        "evictions".into(),
                        Json::from_u64(s.stats.total_evictions()),
                    ),
                    (
                        "misses_by_user".into(),
                        Json::Arr(
                            s.stats
                                .miss_vector()
                                .into_iter()
                                .map(Json::from_u64)
                                .collect(),
                        ),
                    ),
                    (
                        "elapsed_ms".into(),
                        Json::Num(s.elapsed.as_secs_f64() * 1e3),
                    ),
                    ("requests_per_sec".into(), Json::Num(s.requests_per_sec())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema".into(), Json::from_u64(FLEET_SCHEMA)),
            ("kind".into(), Json::Str("fleet-report".into())),
            ("shards".into(), Json::Arr(shards)),
            ("merged".into(), self.merged.to_json_value()),
            ("total_requests".into(), Json::from_u64(self.total_requests)),
            ("wall_ms".into(), Json::Num(self.wall.as_secs_f64() * 1e3)),
            (
                "aggregate_requests_per_sec".into(),
                Json::Num(self.aggregate_requests_per_sec()),
            ),
        ];
        if let Some(series) = &self.merged_series {
            fields.push(("series".into(), series.to_json_value()));
        }
        if let Some(sup) = &self.supervisor {
            fields.push(("supervisor".into(), sup.to_json_value()));
            if sup.is_degraded() {
                // The degraded section exists only when data is
                // actually missing (a shard quarantined); a recovered
                // run is byte-identical to a clean one and reports
                // nothing here.
                let shards = sup
                    .shards
                    .iter()
                    .filter(|s| s.state == supervisor::ShardState::Quarantined)
                    .map(|s| {
                        Json::Obj(vec![
                            ("shard".into(), Json::from_u64(s.shard as u64)),
                            ("restarts".into(), Json::from_u64(s.restarts as u64)),
                            (
                                "error".into(),
                                Json::Str(s.error.clone().unwrap_or_default()),
                            ),
                            ("windows_lost".into(), Json::from_u64(s.windows_lost)),
                        ])
                    })
                    .collect();
                fields.push((
                    "degraded".into(),
                    Json::Obj(vec![("quarantined".into(), Json::Arr(shards))]),
                ));
            }
        }
        Json::Obj(fields)
    }
}

/// Run one engine to exhaustion of its source, batch by batch.
///
/// Sources that serve bare page-id runs
/// ([`RequestSource::next_page_run`] — the mmap-backed binary reader)
/// feed [`SteppingEngine::step_page_batch`] slices of the file mapping
/// itself; sources that support materialized bulk runs
/// ([`RequestSource::next_run`] — fixed traces) feed
/// [`SteppingEngine::step_batch`] slices of their own backing storage;
/// everything else goes through the per-request pull loop into a reused
/// batch buffer. The three styles can interleave freely without
/// changing the served sequence.
fn drive<S, P, R>(engine: &mut SteppingEngine<P, R>, source: &mut S, cfg: &FleetConfig) -> u64
where
    S: RequestSource,
    P: ReplacementPolicy,
    R: Recorder,
{
    // The batch buffer is only for the pull loop below; bulk sources
    // (fixed traces — the throughput path) never enter it, so defer the
    // allocation until a shard actually needs it.
    let mut buf = Vec::new();
    let mut served = 0u64;
    loop {
        if let Some(run) = source
            .next_page_run(cfg.batch_size)
            .filter(|r| !r.is_empty())
        {
            served += run.len() as u64;
            engine.step_page_batch(run);
            continue;
        }
        if let Some(run) = source.next_run(cfg.batch_size).filter(|r| !r.is_empty()) {
            served += run.len() as u64;
            engine.step_batch(run);
            continue;
        }
        buf.clear();
        buf.reserve(cfg.batch_size);
        while buf.len() < cfg.batch_size {
            let next = {
                let ctx = engine.ctx();
                source.next_request(&ctx)
            };
            match next {
                Some(r) => buf.push(r),
                None => break,
            }
        }
        if buf.is_empty() {
            break;
        }
        served += buf.len() as u64;
        engine.step_batch(&buf);
    }
    if cfg.flush_at_end {
        engine.flush();
    }
    served
}

fn run_shard<S: RequestSource, P: ReplacementPolicy>(
    shard: usize,
    mut source: S,
    cfg: &FleetConfig,
    policy: P,
) -> ShardReport {
    let universe = source.universe().clone();
    let start = Instant::now();
    match (cfg.record, cfg.window) {
        (true, Some(width)) => {
            // Pair recorder: exact whole-run counters plus untimed
            // tumbling windows. Latency goes to the `MetricsRecorder`
            // half only, so the window series stays deterministic. The
            // ring bound is lifted because the report needs every
            // window — callers size `width` to keep `len / width` sane.
            let windows = WindowedRecorder::<false>::new(width).with_ring_capacity(usize::MAX);
            let mut engine = SteppingEngine::new(cfg.capacity, universe, policy)
                .with_recorder((MetricsRecorder::new(), windows));
            let served = drive(&mut engine, &mut source, cfg);
            let stats = engine.stats().clone();
            let elapsed = start.elapsed();
            let end = engine.time();
            let (recorder, mut windows) = engine.into_recorder();
            windows.finalize(end);
            ShardReport {
                shard,
                stats,
                served,
                elapsed,
                recorder,
                series: Some(windows.into_series()),
            }
        }
        (true, None) => {
            let mut engine = SteppingEngine::new(cfg.capacity, universe, policy)
                .with_recorder(MetricsRecorder::new());
            let served = drive(&mut engine, &mut source, cfg);
            ShardReport {
                shard,
                stats: engine.stats().clone(),
                served,
                elapsed: start.elapsed(),
                recorder: engine.recorder().clone(),
                series: None,
            }
        }
        (false, _) => {
            let mut engine = SteppingEngine::new(cfg.capacity, universe, policy);
            let served = drive(&mut engine, &mut source, cfg);
            ShardReport {
                shard,
                stats: engine.stats().clone(),
                served,
                elapsed: start.elapsed(),
                recorder: MetricsRecorder::new(),
                series: None,
            }
        }
    }
}

/// Run every source as an independent cache shard across up to
/// [`FleetConfig::max_workers`] scoped worker threads (default: the
/// machine's available parallelism) and merge the telemetry.
///
/// `make_policy` is called once per shard (with the shard index) from
/// the worker that replays it, so policies never cross threads and need
/// not be `Send`. Per-shard results are deterministic — worker count
/// and scheduling affect only wall-clock fields.
///
/// Panics if `sources` is empty, `cfg.batch_size` is zero, or a shard
/// thread panics (the shard's own panic is propagated).
pub fn run_fleet<S, F>(sources: Vec<S>, cfg: &FleetConfig, make_policy: F) -> FleetReport
where
    S: RequestSource + Send,
    F: Fn(usize) -> Box<dyn ReplacementPolicy> + Sync,
{
    run_fleet_typed(sources, cfg, make_policy)
}

/// [`run_fleet`] monomorphized over a concrete policy type.
///
/// `Box<dyn ReplacementPolicy>` implements [`ReplacementPolicy`], so
/// [`run_fleet`] is exactly this function with `P` = the boxed trait
/// object; heterogeneous fleets keep working through it. Handing a
/// concrete `P` instead compiles each shard's replay loop with the
/// policy callbacks statically dispatched and inlinable — the
/// zero-overhead fast path for throughput measurement, where a virtual
/// call per request is the difference between the fleet and a bare
/// [`SteppingEngine`] loop. Combined with `cfg.record = false` (which
/// also skips the recorder merge below) a one-shard fleet run is the
/// same machine code as the scalar engine loop, modulo thread spawn.
pub fn run_fleet_typed<S, P, F>(sources: Vec<S>, cfg: &FleetConfig, make_policy: F) -> FleetReport
where
    S: RequestSource + Send,
    P: ReplacementPolicy,
    F: Fn(usize) -> P + Sync,
{
    assert!(!sources.is_empty(), "a fleet needs at least one shard");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let workers = cfg.workers_for(sources.len());
    let start = Instant::now();
    let make_policy = &make_policy;
    let shards: Vec<ShardReport> = if workers == 1 {
        // One worker (one shard, a one-core machine, or an explicit
        // cap): run the shards sequentially right here — no spawn, no
        // join, no context switches. Per-shard results are identical
        // either way (see the module docs on determinism).
        sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| run_shard(i, source, cfg, make_policy(i)))
            .collect()
    } else {
        std::thread::scope(|scope| {
            // Deal shards round-robin onto `workers` threads; each
            // worker replays its queue sequentially. Shard order is
            // restored afterwards so reports are position-stable.
            let mut queues: Vec<Vec<(usize, S)>> = Vec::new();
            queues.resize_with(workers, Vec::new);
            for (i, source) in sources.into_iter().enumerate() {
                queues[i % workers].push((i, source));
            }
            let handles: Vec<_> = queues
                .into_iter()
                .map(|queue| {
                    scope.spawn(move || {
                        queue
                            .into_iter()
                            .map(|(i, source)| run_shard(i, source, cfg, make_policy(i)))
                            .collect::<Vec<ShardReport>>()
                    })
                })
                .collect();
            let mut shards: Vec<ShardReport> = handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(reports) => reports,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect();
            shards.sort_by_key(|s| s.shard);
            shards
        })
    };
    let wall = start.elapsed();
    let mut merged = MetricsRecorder::new();
    if cfg.record {
        // With recording off every shard recorder is empty; skip the
        // merge entirely so the unrecorded path does no folding work.
        for s in &shards {
            merged.merge(&s.recorder);
        }
    }
    let merged_series = cfg.window.filter(|_| cfg.record).map(|width| {
        let mut folded = WindowSeries {
            width,
            dropped: 0,
            windows: Vec::new(),
        };
        for s in &shards {
            if let Some(series) = &s.series {
                folded.merge(series);
            }
        }
        folded
    });
    let total_requests = shards.iter().map(|s| s.served).sum();
    FleetReport {
        shards,
        merged,
        merged_series,
        total_requests,
        wall,
        supervisor: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_sim::Simulator;
    use occ_workloads::{sqlvm_like, two_tier, AccessPattern, PatternSource};

    fn lru_factory(_shard: usize) -> Box<dyn ReplacementPolicy> {
        Box::new(Lru::new())
    }

    #[test]
    fn shard_results_match_sequential_scalar_runs() {
        let scenario = sqlvm_like();
        let cfg = FleetConfig::new(scenario.suggested_k);
        let sources: Vec<_> = (0..4).map(|i| scenario.stream(3_000, 100 + i)).collect();
        let report = run_fleet(sources, &cfg, lru_factory);

        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.shard, i);
            assert_eq!(shard.served, 3_000);
            let trace = scenario.trace(3_000, 100 + i as u64);
            let seq = Simulator::new(cfg.capacity).run(&mut Lru::new(), &trace);
            assert_eq!(
                shard.stats, seq.stats,
                "shard {i} must match its sequential twin"
            );
        }
        assert_eq!(report.total_requests, 12_000);
    }

    #[test]
    fn merged_recorder_sums_the_shards() {
        let scenario = two_tier();
        let cfg = FleetConfig::new(scenario.suggested_k);
        let sources: Vec<_> = (0..3).map(|i| scenario.stream(2_000, i)).collect();
        let report = run_fleet(sources, &cfg, lru_factory);

        let shard_requests: u64 = report.shards.iter().map(|s| s.recorder.requests()).sum();
        assert_eq!(report.merged.requests(), shard_requests);
        assert_eq!(report.merged.requests(), report.total_requests);
        assert_eq!(
            report.merged.hits() + report.merged.inserts() + report.merged.evictions(),
            6_000
        );
        assert_eq!(report.total_hits() + report.total_misses(), 6_000);
    }

    #[test]
    fn unrecorded_fleet_matches_recorded_stats() {
        let scenario = sqlvm_like();
        let mut cfg = FleetConfig::new(scenario.suggested_k);
        let recorded = run_fleet(
            (0..2).map(|i| scenario.stream(2_500, i)).collect(),
            &cfg,
            lru_factory,
        );
        cfg.record = false;
        let bare = run_fleet(
            (0..2).map(|i| scenario.stream(2_500, i)).collect(),
            &cfg,
            lru_factory,
        );
        for (a, b) in recorded.shards.iter().zip(&bare.shards) {
            assert_eq!(a.stats, b.stats, "record flag must not change replay");
        }
        assert_eq!(bare.merged.requests(), 0, "no recorder attached");
        assert_eq!(bare.total_misses(), recorded.total_misses());
    }

    #[test]
    fn typed_fleet_matches_boxed_fleet() {
        // The monomorphized entry point must be observationally identical
        // to the boxed one — same per-shard stats, same totals — with or
        // without recording.
        let scenario = sqlvm_like();
        for record in [true, false] {
            let mut cfg = FleetConfig::new(scenario.suggested_k);
            cfg.record = record;
            let boxed = run_fleet(
                (0..3).map(|i| scenario.stream(2_000, i)).collect(),
                &cfg,
                lru_factory,
            );
            let typed = run_fleet_typed(
                (0..3).map(|i| scenario.stream(2_000, i)).collect(),
                &cfg,
                |_shard| Lru::new(),
            );
            for (a, b) in boxed.shards.iter().zip(&typed.shards) {
                assert_eq!(a.stats, b.stats, "record={record}: shard stats diverged");
                assert_eq!(a.served, b.served);
            }
            assert_eq!(boxed.total_requests, typed.total_requests);
            assert_eq!(boxed.merged.requests(), typed.merged.requests());
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        // Sequential (cap 1), undersubscribed (cap 2 for 5 shards,
        // queues of unequal length), and one-thread-per-shard (cap ≥
        // shards) must produce identical per-shard reports.
        let scenario = sqlvm_like();
        let run_with = |cap: Option<usize>| {
            let mut cfg = FleetConfig::new(scenario.suggested_k);
            cfg.max_workers = cap;
            run_fleet(
                (0..5).map(|i| scenario.stream(2_000, 40 + i)).collect(),
                &cfg,
                lru_factory,
            )
        };
        let sequential = run_with(Some(1));
        for cap in [Some(2), Some(64), None] {
            let capped = run_with(cap);
            for (a, b) in sequential.shards.iter().zip(&capped.shards) {
                assert_eq!(a.shard, b.shard, "cap {cap:?}: shard order changed");
                assert_eq!(a.stats, b.stats, "cap {cap:?}: stats diverged");
                assert_eq!(a.served, b.served);
            }
            assert_eq!(capped.merged.requests(), sequential.merged.requests());
        }
    }

    #[test]
    fn windowed_fleet_merges_shard_series_and_sums_to_totals() {
        let scenario = sqlvm_like();
        let mut cfg = FleetConfig::new(scenario.suggested_k);
        cfg.window = Some(500);
        let report = run_fleet(
            (0..3).map(|i| scenario.stream(2_000, 60 + i)).collect(),
            &cfg,
            lru_factory,
        );

        let merged = report.merged_series.as_ref().expect("windowing was on");
        assert_eq!(merged.width, 500);
        assert_eq!(merged.windows.len(), 4, "2000 requests / 500 per window");
        for (i, shard) in report.shards.iter().enumerate() {
            let series = shard.series.as_ref().expect("per-shard series");
            assert_eq!(series.windows.len(), 4);
            let total = series.total();
            assert_eq!(total.hits, shard.stats.total_hits(), "shard {i}");
            assert_eq!(total.misses(), shard.stats.total_misses(), "shard {i}");
        }
        // Window i of the merge is the sum of every shard's window i.
        for (i, w) in merged.windows.iter().enumerate() {
            let hits: u64 = report
                .shards
                .iter()
                .map(|s| s.series.as_ref().unwrap().windows[i].hits)
                .sum();
            assert_eq!(w.hits, hits, "window {i}");
        }
        // And the merged series sums to the merged recorder's totals.
        let total = merged.total();
        assert_eq!(total.requests(), report.merged.requests());
        assert_eq!(total.hits, report.merged.hits());

        // The JSON report gains a `series` key only when windowing is on.
        let v = report.to_json_value();
        let series = v.get("series").expect("series in JSON");
        assert_eq!(series.get("width").and_then(Json::as_u64), Some(500));
        cfg.window = None;
        let plain = run_fleet(
            (0..2).map(|i| scenario.stream(500, i)).collect(),
            &cfg,
            lru_factory,
        );
        assert!(plain.merged_series.is_none());
        assert!(plain.to_json_value().get("series").is_none());
    }

    #[test]
    fn flush_at_end_charges_every_cached_page() {
        let mut cfg = FleetConfig::new(8);
        cfg.flush_at_end = true;
        let sources = vec![PatternSource::new(AccessPattern::Scan, 8, 64, 0)];
        let report = run_fleet(sources, &cfg, lru_factory);
        assert_eq!(report.shards[0].recorder.flush_evictions(), 8);
        assert_eq!(report.shards[0].stats.total_evictions(), 8);
    }

    #[test]
    fn json_report_is_schema_stamped_and_consistent() {
        let scenario = two_tier();
        let cfg = FleetConfig::new(scenario.suggested_k);
        let report = run_fleet(
            (0..2).map(|i| scenario.stream(500, i)).collect(),
            &cfg,
            lru_factory,
        );
        let v = report.to_json_value();
        occ_probe::check_schema_stamp(&v, FLEET_SCHEMA, "fleet report").unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("fleet-report"));
        let shards = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 2);
        let sum: u64 = shards
            .iter()
            .map(|s| s.get("requests").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(sum, v.get("total_requests").unwrap().as_u64().unwrap());
        let round = Json::parse(&v.to_json()).expect("report must parse back");
        assert_eq!(round, v);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_fleet_is_rejected() {
        let cfg = FleetConfig::new(4);
        run_fleet(Vec::<PatternSource>::new(), &cfg, lru_factory);
    }
}
