//! Fault-tolerant fleet supervision: panic-isolated shards,
//! window-boundary checkpoints, bounded restart with deterministic
//! backoff, and quarantine instead of whole-run abort.
//!
//! [`run_fleet`](crate::run_fleet) propagates the first shard panic and
//! aborts the fleet — correct for a benchmark, wrong for the
//! deployment the ROADMAP targets, where one tenant pool hitting a bug
//! must not take down the other ninety-nine. [`run_supervised_fleet`]
//! replaces the propagating join with a per-shard state machine:
//!
//! ```text
//!            ┌──────────── restart (≤ max_restarts, backoff) ─────────┐
//!            ▼                                                        │
//!   RUNNING ──────── panic / persist fault ──────────────────────────▶│
//!      │                                                              │
//!      │ source exhausted                          retries exhausted  │
//!      ▼                                                              ▼
//!   CLEAN / RECOVERED (restarts > 0)                         QUARANTINED
//! ```
//!
//! Each attempt runs under [`std::panic::catch_unwind`]. Poison safety
//! is by construction rather than by `Mutex`: an attempt owns a fresh
//! engine, policy, recorder, and source (rebuilt from factories every
//! time), and the only state that crosses attempts — the last good
//! checkpoint and the committed window list — is mutated exclusively
//! at *commit points*, after the checkpoint has been durably saved. An
//! unwind therefore leaves the cross-attempt state exactly as of the
//! last commit, and the restart replays forward from there.
//!
//! **Determinism.** A restarted shard is byte-identical to one that
//! never crashed: the checkpoint restores the engine and policy
//! losslessly (PR 3), the source factory plus
//! [`SeekableSource::seek_forward`] reproduces the exact request
//! stream from the crash point (same RNG state), and the windowed
//! recorder restarts at the checkpoint boundary. The property test
//! pins merged series and per-user miss vectors across arbitrary kill
//! schedules, shard counts, and window widths.
//!
//! **Crash ordering.** At every window boundary the driver (1) appends
//! the closed windows to the shard's persist target, (2) saves the
//! checkpoint, (3) commits both to memory. A crash between (1) and (2)
//! re-appends the same windows after restart; [`DirPersist`] drops
//! duplicates by window index, so the on-disk series never tears or
//! double-counts. Writing the series line *before* its checkpoint is
//! load-bearing: the opposite order could persist a checkpoint whose
//! preceding window was never written, and nothing would ever
//! regenerate it.

use crate::{FleetConfig, FleetReport, ShardReport};
use occ_probe::atomicio;
use occ_probe::{
    snapshot_to_json, Json, MetricsRecorder, SeriesSink, WindowDelta, WindowSeries,
    WindowedRecorder,
};
use occ_sim::{EngineSnapshot, ReplacementPolicy, SeekableSource, SimStats, SteppingEngine};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Kill shard `shard` just before it serves request `at` (fleet-level
/// chaos: the `--chaos-shard-kill` plan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardKill {
    /// Target shard index.
    pub shard: usize,
    /// Engine time (requests served by that shard) at which to kill.
    pub at: u64,
}

/// Fail shard `shard`'s `nth` checkpoint save (1-based, counted across
/// restarts) with an injected I/O error — the failing-writer shim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreFault {
    /// Target shard index.
    pub shard: usize,
    /// Which save to fail (1 = the first save ever attempted).
    pub nth: u64,
}

/// Seeded, deterministic exponential backoff between restart attempts.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// Base delay; 0 disables sleeping entirely (the test setting).
    pub base_ms: u64,
    /// Ceiling on any single delay.
    pub cap_ms: u64,
    /// Jitter seed; the delay is a pure function of
    /// `(seed, shard, attempt)`.
    pub seed: u64,
}

impl BackoffPolicy {
    /// No sleeping at all — restarts are immediate. Tests use this so
    /// recovery timing never depends on the clock.
    pub fn none() -> Self {
        BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
            seed: 0,
        }
    }

    /// Exponential backoff starting at `base_ms`, doubling per attempt,
    /// capped at 30× base.
    pub fn exponential(base_ms: u64, seed: u64) -> Self {
        BackoffPolicy {
            base_ms,
            cap_ms: base_ms.saturating_mul(30),
            seed,
        }
    }

    /// The delay before restart `attempt` (1-based) of `shard`:
    /// `min(base · 2^(attempt-1), cap)`, halved and topped up with
    /// seeded jitter so simultaneous shard failures do not restart in
    /// lockstep. Deterministic in `(seed, shard, attempt)`.
    pub fn delay_ms(&self, shard: usize, attempt: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.cap_ms.max(self.base_ms));
        let x = splitmix64(
            self.seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt as u64,
        );
        exp / 2 + x % (exp / 2 + 1)
    }
}

/// SplitMix64 — the one-shot mixer used for per-cell seeds everywhere
/// in the workspace; here it decorrelates backoff jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration for [`run_supervised_fleet`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Shard capacity and worker cap ([`FleetConfig::capacity`],
    /// [`FleetConfig::max_workers`]). The supervised driver always
    /// records tumbling windows and pulls per request, so
    /// `record`/`window`/`batch_size`/`flush_at_end` are ignored here.
    pub fleet: FleetConfig,
    /// Window width = checkpoint cadence: every shard checkpoints at
    /// every multiple of this many requests.
    pub window: u64,
    /// Restarts allowed per shard before it is quarantined.
    pub max_restarts: u32,
    /// Backoff between restarts.
    pub backoff: BackoffPolicy,
    /// Seeded kill schedule (chaos).
    pub kills: Vec<ShardKill>,
    /// Injected checkpoint-save failures (chaos).
    pub store_faults: Vec<StoreFault>,
    /// Per-shard snapshots to resume from (`occ fleet --from-dir`);
    /// missing or short entries start the shard fresh.
    pub resume: Vec<Option<EngineSnapshot>>,
}

impl SupervisorConfig {
    /// A supervised fleet with capacity `k`, checkpoint cadence
    /// `window`, 3 restarts per shard, and no chaos.
    pub fn new(capacity: usize, window: u64) -> Self {
        SupervisorConfig {
            fleet: FleetConfig::new(capacity),
            window,
            max_restarts: 3,
            backoff: BackoffPolicy::none(),
            kills: Vec::new(),
            store_faults: Vec::new(),
            resume: Vec::new(),
        }
    }
}

/// Terminal state of one supervised shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Finished with no failures.
    Clean,
    /// Failed at least once, recovered, and finished; its results are
    /// byte-identical to a clean run.
    Recovered,
    /// Exhausted its restart budget; contributes its last checkpoint's
    /// stats and committed windows only.
    Quarantined,
}

impl ShardState {
    /// Stable lowercase label used in JSON reports and CLI tables.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardState::Clean => "clean",
            ShardState::Recovered => "recovered",
            ShardState::Quarantined => "quarantined",
        }
    }
}

/// Per-shard supervision outcome (the report's `supervisor` section).
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Terminal state.
    pub state: ShardState,
    /// Restarts performed (= failures absorbed, successful or not).
    pub restarts: u32,
    /// Backoff slept before each restart, in order.
    pub backoff_ms: Vec<u64>,
    /// The last failure's description (`Some` whenever `restarts > 0`).
    pub error: Option<String>,
    /// Committed windows never regenerated after a crash — 0 by
    /// construction for clean/recovered shards (every committed window
    /// sits at or before the checkpoint the restart resumed from).
    /// For a quarantined shard this counts nothing either: windows past
    /// its last checkpoint were never committed, so the merged series
    /// simply ends early for that shard rather than losing data.
    pub windows_lost: u64,
}

/// Fleet-level supervision summary attached to [`FleetReport`].
#[derive(Clone, Debug)]
pub struct SupervisorReport {
    /// One status per shard, in shard order.
    pub shards: Vec<ShardStatus>,
}

impl SupervisorReport {
    /// Total restarts across the fleet.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts as u64).sum()
    }

    /// Indices of quarantined shards.
    pub fn quarantined(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Quarantined)
            .map(|s| s.shard)
            .collect()
    }

    /// A run is degraded iff at least one shard was quarantined.
    /// Recovered shards do not degrade the run: their output is
    /// byte-identical to a clean one.
    pub fn is_degraded(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.state == ShardState::Quarantined)
    }

    /// JSON form (the report's `supervisor` key).
    pub fn to_json_value(&self) -> Json {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("shard".into(), Json::from_u64(s.shard as u64)),
                    ("state".into(), Json::Str(s.state.as_str().into())),
                    ("restarts".into(), Json::from_u64(s.restarts as u64)),
                    (
                        "backoff_ms".into(),
                        Json::Arr(s.backoff_ms.iter().map(|&ms| Json::from_u64(ms)).collect()),
                    ),
                    ("windows_lost".into(), Json::from_u64(s.windows_lost)),
                ];
                if let Some(e) = &s.error {
                    fields.push(("error".into(), Json::Str(e.clone())));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("shards".into(), Json::Arr(shards)),
            (
                "total_restarts".into(),
                Json::from_u64(self.total_restarts()),
            ),
            (
                "quarantined".into(),
                Json::Arr(
                    self.quarantined()
                        .into_iter()
                        .map(|i| Json::from_u64(i as u64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Where a supervised shard persists its recovery state: checkpoints
/// (latest wins) and the append-only window series. Implementations
/// need not be thread-safe — each shard owns its own target — but must
/// be `Send`: the factory may build them on one thread (e.g. the CLI
/// pre-opening files to classify errors) and hand them to the worker
/// that drives the shard.
pub trait ShardPersist: Send {
    /// Durably save `snap` as the shard's latest checkpoint. Failure
    /// aborts the attempt (and is retried like a panic).
    fn save_checkpoint(&mut self, snap: &EngineSnapshot) -> io::Result<()>;
    /// Append one closed window. Called before the checkpoint covering
    /// it is saved; implementations must drop windows they have
    /// already appended (restart replays regenerate them).
    fn append_window(&mut self, w: &WindowDelta) -> io::Result<()>;
    /// Called once when the shard finishes (clean or recovered);
    /// flushes and seals the series (checksum trailer).
    fn finish(&mut self) -> io::Result<()>;
}

/// Persist nothing (in-memory supervision only — the property tests'
/// setting; recovery state lives in the supervisor's address space).
#[derive(Debug, Default)]
pub struct NoPersist;

impl ShardPersist for NoPersist {
    fn save_checkpoint(&mut self, _snap: &EngineSnapshot) -> io::Result<()> {
        Ok(())
    }
    fn append_window(&mut self, _w: &WindowDelta) -> io::Result<()> {
        Ok(())
    }
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Persist into a directory: `shard-NNNN.ckpt.json` written atomically
/// with a CRC trailer on every save, and `shard-NNNN.series.jsonl`
/// appended line-by-line (flushed per window, duplicate indices
/// dropped) so a SIGKILLed process leaves a resumable prefix. The
/// series file gains its checksum trailer at [`finish`]; a mid-run
/// kill leaves it trailer-less, which readers accept.
///
/// [`finish`]: ShardPersist::finish
#[derive(Debug)]
pub struct DirPersist {
    ckpt_path: PathBuf,
    series: occ_probe::CrcWriter<BufWriter<File>>,
    /// Next window index the series file expects (the duplicate guard).
    next_index: u64,
    finished: bool,
}

impl DirPersist {
    /// Checkpoint path for shard `shard` under `dir`.
    pub fn ckpt_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard:04}.ckpt.json"))
    }

    /// Series path for shard `shard` under `dir`.
    pub fn series_path(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard:04}.series.jsonl"))
    }

    /// Open shard `shard`'s persist files under `dir` (created if
    /// missing). `resume_index` is the window index the shard resumes
    /// at (`checkpoint.time / width`), i.e. the first window this run
    /// will append; `header_meta` is written as the series header's
    /// metadata (shard identity etc.).
    pub fn open(
        dir: &Path,
        shard: usize,
        width: u64,
        resume_index: u64,
        header_meta: &[(&str, Json)],
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let file = File::create(Self::series_path(dir, shard))?;
        let mut series = occ_probe::CrcWriter::new(BufWriter::new(file));
        // Reuse SeriesSink's header line so SeriesFile::parse reads
        // these state files like any other series.
        let mut sink = SeriesSink::new(&mut series);
        sink.write_header(width, header_meta);
        if let Some(e) = sink.error() {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        series.flush()?;
        Ok(DirPersist {
            ckpt_path: Self::ckpt_path(dir, shard),
            series,
            next_index: resume_index,
            finished: false,
        })
    }
}

impl ShardPersist for DirPersist {
    fn save_checkpoint(&mut self, snap: &EngineSnapshot) -> io::Result<()> {
        let body = snapshot_to_json(snap) + "\n";
        atomicio::write_atomic_with_trailer(&self.ckpt_path, &body)
    }

    fn append_window(&mut self, w: &WindowDelta) -> io::Result<()> {
        if w.index < self.next_index {
            // Regenerated after a restart; already on disk.
            return Ok(());
        }
        let line = w.to_json_value().to_json();
        self.series.write_all(line.as_bytes())?;
        self.series.write_all(b"\n")?;
        self.series.flush()?;
        self.next_index = w.index + 1;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        let crc = self.series.crc();
        self.series
            .inner_mut()
            .write_all(atomicio::trailer_line(crc).as_bytes())?;
        self.series.flush()?;
        self.finished = true;
        Ok(())
    }
}

/// Wrap another persist target and fail chosen checkpoint saves with an
/// injected I/O error — the failing-writer shim behind
/// `--chaos-store-fail`. The save counter persists across restarts, so
/// "fail the 2nd save" fires exactly once.
pub struct FaultyPersist {
    inner: Box<dyn ShardPersist>,
    fail_nths: Vec<u64>,
    saves: u64,
}

impl FaultyPersist {
    /// Fail the `nth` (1-based) checkpoint saves listed in `fail_nths`.
    pub fn new(inner: Box<dyn ShardPersist>, fail_nths: Vec<u64>) -> Self {
        FaultyPersist {
            inner,
            fail_nths,
            saves: 0,
        }
    }
}

impl ShardPersist for FaultyPersist {
    fn save_checkpoint(&mut self, snap: &EngineSnapshot) -> io::Result<()> {
        self.saves += 1;
        if self.fail_nths.contains(&self.saves) {
            return Err(io::Error::other(format!(
                "injected checkpoint-store fault (save #{})",
                self.saves
            )));
        }
        self.inner.save_checkpoint(snap)
    }

    fn append_window(&mut self, w: &WindowDelta) -> io::Result<()> {
        self.inner.append_window(w)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }
}

/// The panic payload used by the kill schedule. The process-wide panic
/// hook stays silent for this payload only, so chaos runs do not spray
/// stack traces while real panics keep reporting normally.
struct InjectedKill {
    shard: usize,
    at: u64,
}

fn install_quiet_kill_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedKill>().is_none() {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(k) = payload.downcast_ref::<InjectedKill>() {
        format!("injected kill of shard {} at t={}", k.shard, k.at)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        format!("shard panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("shard panicked: {s}")
    } else {
        "shard panicked".into()
    }
}

/// Cross-attempt state of one supervised shard. Mutated only at commit
/// points (see the module docs on poison safety).
struct ShardDriver<'a> {
    shard: usize,
    width: u64,
    capacity: usize,
    /// Last durably checkpointed snapshot; restarts resume here.
    last_good: Option<EngineSnapshot>,
    /// Windows covered by `last_good` (plus, after a clean finish, the
    /// trailing partial window).
    committed: Vec<WindowDelta>,
    /// First window index not yet committed.
    next_commit: u64,
    /// Pending kill times for this shard, ascending; consumed as fired.
    pending_kills: std::collections::VecDeque<u64>,
    persist: &'a mut dyn ShardPersist,
}

impl ShardDriver<'_> {
    /// One attempt: rebuild everything from `last_good`, replay to the
    /// end of the stream, committing at each window boundary. Returns
    /// the engine's final stats and end time on success; any `Err` or
    /// panic is a failed attempt.
    fn attempt<S, P>(&mut self, mut source: S, policy: P) -> Result<(SimStats, u64), String>
    where
        S: SeekableSource,
        P: ReplacementPolicy,
    {
        let eng = match &self.last_good {
            Some(snap) => SteppingEngine::from_snapshot(snap, policy)
                .map_err(|e| format!("restoring checkpoint: {e}"))?,
            None => SteppingEngine::new(self.capacity, source.universe().clone(), policy),
        };
        let t0 = eng.time();
        source.seek_forward(t0);
        let mut eng = eng.with_recorder(
            WindowedRecorder::<false>::starting_at(self.width, t0).with_ring_capacity(usize::MAX),
        );
        loop {
            let t = eng.time();
            if self.pending_kills.front() == Some(&t) {
                self.pending_kills.pop_front();
                panic::panic_any(InjectedKill {
                    shard: self.shard,
                    at: t,
                });
            }
            let next = {
                let ctx = eng.ctx();
                source.next_request(&ctx)
            };
            let Some(r) = next else { break };
            eng.step(r);
            let t = eng.time();
            if t % self.width == 0 {
                eng.recorder_mut().roll_to(t);
                let drained = eng.recorder_mut().drain_new();
                self.commit(&mut eng, drained, true)?;
            }
        }
        let end = eng.time();
        eng.recorder_mut().finalize(end);
        let drained = eng.recorder_mut().drain_new();
        // A trailing partial window cannot be checkpointed (resume
        // requires a boundary), but the stream is over: commit it
        // without a snapshot. A crash after this point is impossible —
        // the attempt only returns.
        self.commit(&mut eng, drained, end % self.width == 0)?;
        let stats = eng.stats().clone();
        self.persist
            .finish()
            .map_err(|e| format!("sealing series: {e}"))?;
        Ok((stats, end))
    }

    /// Commit point: persist the windows, then (at boundaries) the
    /// checkpoint, then update in-memory state. Ordering is the crash
    /// contract — see the module docs.
    fn commit<S: occ_sim::probe::Recorder, P: ReplacementPolicy>(
        &mut self,
        eng: &mut SteppingEngine<P, S>,
        drained: Vec<WindowDelta>,
        checkpoint: bool,
    ) -> Result<(), String> {
        for w in &drained {
            self.persist
                .append_window(w)
                .map_err(|e| format!("appending window {}: {e}", w.index))?;
        }
        let snap = if checkpoint {
            let snap = eng.snapshot().map_err(|e| format!("snapshotting: {e}"))?;
            self.persist
                .save_checkpoint(&snap)
                .map_err(|e| format!("saving checkpoint: {e}"))?;
            Some(snap)
        } else {
            None
        };
        // Everything durable — commit to memory.
        if let Some(snap) = snap {
            self.last_good = Some(snap);
        }
        for w in drained {
            if w.index >= self.next_commit {
                self.next_commit = w.index + 1;
                self.committed.push(w);
            }
        }
        Ok(())
    }
}

/// Drive one shard under supervision to a terminal state.
#[allow(clippy::too_many_arguments)]
fn supervise_shard<S, P>(
    shard: usize,
    cfg: &SupervisorConfig,
    make_source: &(impl Fn(usize) -> S + Sync),
    make_policy: &(impl Fn(usize) -> P + Sync),
    persist: &mut dyn ShardPersist,
) -> (ShardReport, ShardStatus)
where
    S: SeekableSource,
    P: ReplacementPolicy,
{
    install_quiet_kill_hook();
    let start = Instant::now();
    let initial = cfg.resume.get(shard).cloned().flatten();
    let resume_t = initial.as_ref().map_or(0, |s| s.time);
    let mut kills: Vec<u64> = cfg
        .kills
        .iter()
        .filter(|k| k.shard == shard)
        .map(|k| k.at)
        .collect();
    kills.sort_unstable();
    let mut driver = ShardDriver {
        shard,
        width: cfg.window,
        capacity: cfg.fleet.capacity,
        last_good: initial,
        committed: Vec::new(),
        next_commit: resume_t / cfg.window,
        pending_kills: kills.into(),
        persist,
    };
    let mut restarts = 0u32;
    let mut backoff_ms = Vec::new();
    let mut last_error = None;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            driver.attempt(make_source(shard), make_policy(shard))
        }));
        let error = match outcome {
            Ok(Ok((stats, end))) => {
                let state = if restarts == 0 {
                    ShardState::Clean
                } else {
                    ShardState::Recovered
                };
                let series = WindowSeries {
                    width: cfg.window,
                    dropped: 0,
                    windows: std::mem::take(&mut driver.committed),
                };
                let report = ShardReport {
                    shard,
                    stats,
                    served: end - resume_t,
                    elapsed: start.elapsed(),
                    recorder: MetricsRecorder::new(),
                    series: Some(series),
                };
                let status = ShardStatus {
                    shard,
                    state,
                    restarts,
                    backoff_ms,
                    error: last_error,
                    windows_lost: 0,
                };
                return (report, status);
            }
            Ok(Err(msg)) => msg,
            Err(payload) => panic_message(payload),
        };
        restarts += 1;
        last_error = Some(error);
        if restarts > cfg.max_restarts {
            // Quarantine: contribute the last checkpoint's stats and
            // the committed windows; nothing past the checkpoint.
            let (stats, end) = match &driver.last_good {
                Some(snap) => (SimStats::from_per_user(snap.stats.clone()), snap.time),
                None => {
                    let n = make_source(shard).universe().num_users();
                    (SimStats::new(n), resume_t)
                }
            };
            let series = WindowSeries {
                width: cfg.window,
                dropped: 0,
                windows: std::mem::take(&mut driver.committed),
            };
            let report = ShardReport {
                shard,
                stats,
                served: end - resume_t,
                elapsed: start.elapsed(),
                recorder: MetricsRecorder::new(),
                series: Some(series),
            };
            let status = ShardStatus {
                shard,
                state: ShardState::Quarantined,
                restarts: restarts - 1,
                backoff_ms,
                error: last_error,
                windows_lost: 0,
            };
            return (report, status);
        }
        let delay = cfg.backoff.delay_ms(shard, restarts);
        backoff_ms.push(delay);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
    }
}

/// Run `shards` supervised shards: each one panic-isolated,
/// checkpointing at every window boundary, restarting from its last
/// checkpoint on failure (bounded by [`SupervisorConfig::max_restarts`]
/// with [`BackoffPolicy`] delays), and quarantined — not aborting the
/// fleet — when the budget is exhausted.
///
/// `make_source` and `make_policy` are called once per *attempt* (a
/// restart rebuilds both; the source is then fast-forwarded to the
/// checkpoint via [`SeekableSource::seek_forward`]). `make_persist` is
/// called once per shard from the worker that owns it.
///
/// The returned report always carries [`FleetReport::supervisor`];
/// [`FleetReport::merged`] stays empty (the window series is the
/// telemetry channel for supervised runs — a `MetricsRecorder` cannot
/// be reconstructed across restarts).
///
/// Panics if `shards == 0` or `cfg.window == 0`.
pub fn run_supervised_fleet<S, P>(
    shards: usize,
    cfg: &SupervisorConfig,
    make_source: impl Fn(usize) -> S + Sync,
    make_policy: impl Fn(usize) -> P + Sync,
    make_persist: impl Fn(usize) -> Box<dyn ShardPersist> + Sync,
) -> FleetReport
where
    S: SeekableSource,
    P: ReplacementPolicy,
{
    assert!(shards > 0, "a fleet needs at least one shard");
    assert!(cfg.window > 0, "supervision needs a positive window width");
    let workers = cfg.fleet.workers_for(shards);
    let start = Instant::now();
    let make_source = &make_source;
    let make_policy = &make_policy;
    let make_persist = &make_persist;
    let run_one = |i: usize| {
        let mut persist = make_persist(i);
        // Injected store faults wrap the shard's persist target in the
        // failing-writer shim; the fault counter lives in the wrapper,
        // so it survives restarts and each listed save fails once.
        let fail_nths: Vec<u64> = cfg
            .store_faults
            .iter()
            .filter(|f| f.shard == i)
            .map(|f| f.nth)
            .collect();
        if !fail_nths.is_empty() {
            persist = Box::new(FaultyPersist::new(persist, fail_nths));
        }
        supervise_shard(i, cfg, make_source, make_policy, persist.as_mut())
    };
    let mut results: Vec<(ShardReport, ShardStatus)> = if workers == 1 {
        (0..shards).map(run_one).collect()
    } else {
        std::thread::scope(|scope| {
            let mut queues: Vec<Vec<usize>> = Vec::new();
            queues.resize_with(workers, Vec::new);
            for i in 0..shards {
                queues[i % workers].push(i);
            }
            let handles: Vec<_> = queues
                .into_iter()
                .map(|queue| {
                    scope.spawn(move || queue.into_iter().map(run_one).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(r) => r,
                    // Only a bug in the supervisor itself can get here:
                    // shard panics are caught inside supervise_shard.
                    Err(panic) => panic::resume_unwind(panic),
                })
                .collect()
        })
    };
    results.sort_by_key(|(r, _)| r.shard);
    let wall = start.elapsed();
    let mut shard_reports = Vec::with_capacity(shards);
    let mut statuses = Vec::with_capacity(shards);
    for (r, s) in results {
        shard_reports.push(r);
        statuses.push(s);
    }
    let mut merged_series = WindowSeries {
        width: cfg.window,
        dropped: 0,
        windows: Vec::new(),
    };
    for s in &shard_reports {
        if let Some(series) = &s.series {
            merged_series.merge(series);
        }
    }
    let total_requests = shard_reports.iter().map(|s| s.served).sum();
    FleetReport {
        shards: shard_reports,
        merged: MetricsRecorder::new(),
        merged_series: Some(merged_series),
        total_requests,
        wall,
        supervisor: Some(SupervisorReport { shards: statuses }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_fleet_typed, FleetConfig};
    use occ_baselines::Lru;
    use occ_probe::{require_trailer, snapshot_from_json, SeriesFile};
    use occ_sim::RequestSource;
    use occ_workloads::sqlvm_like;

    const LEN: u64 = 1_000;
    const WIDTH: u64 = 250;
    const SHARDS: usize = 3;

    fn source_for(shard: usize) -> occ_workloads::TenantMixSource {
        sqlvm_like().stream(LEN, 60 + shard as u64)
    }

    fn no_persist(_shard: usize) -> Box<dyn ShardPersist> {
        Box::new(NoPersist)
    }

    fn supervised(cfg: &SupervisorConfig) -> crate::FleetReport {
        run_supervised_fleet(SHARDS, cfg, source_for, |_| Lru::new(), no_persist)
    }

    fn base_cfg() -> SupervisorConfig {
        SupervisorConfig::new(sqlvm_like().suggested_k, WIDTH)
    }

    /// The reference run: the plain windowed fleet over the same
    /// sources — no supervision in the loop at all.
    fn plain_fleet() -> crate::FleetReport {
        let mut fc = FleetConfig::new(sqlvm_like().suggested_k);
        fc.window = Some(WIDTH);
        run_fleet_typed((0..SHARDS).map(source_for).collect(), &fc, |_shard| {
            Lru::new()
        })
    }

    fn assert_matches_plain(report: &crate::FleetReport, plain: &crate::FleetReport, what: &str) {
        for (a, b) in plain.shards.iter().zip(&report.shards) {
            assert_eq!(a.stats, b.stats, "{what}: shard {} stats", a.shard);
            assert_eq!(a.served, b.served, "{what}: shard {} served", a.shard);
            assert_eq!(a.series, b.series, "{what}: shard {} series", a.shard);
        }
        // Byte-identity, not just structural equality: the merged
        // series must serialize to the same bytes.
        let a = plain
            .merged_series
            .as_ref()
            .unwrap()
            .to_json_value()
            .to_json();
        let b = report
            .merged_series
            .as_ref()
            .unwrap()
            .to_json_value()
            .to_json();
        assert_eq!(a, b, "{what}: merged series bytes");
        assert_eq!(plain.total_requests, report.total_requests, "{what}");
    }

    #[test]
    fn clean_supervised_run_matches_the_plain_fleet() {
        let report = supervised(&base_cfg());
        assert_matches_plain(&report, &plain_fleet(), "clean");
        let sup = report.supervisor.as_ref().expect("supervised run");
        assert!(!sup.is_degraded());
        assert_eq!(sup.total_restarts(), 0);
        for s in &sup.shards {
            assert_eq!(s.state, ShardState::Clean);
            assert_eq!(s.restarts, 0);
            assert!(s.error.is_none());
            assert_eq!(s.windows_lost, 0);
        }
        let v = report.to_json_value();
        assert!(v.get("supervisor").is_some());
        assert!(
            v.get("degraded").is_none(),
            "clean run must not be degraded"
        );
    }

    #[test]
    fn kill_schedules_recover_byte_identically() {
        let plain = plain_fleet();
        // Kills before the first request, on a checkpoint boundary,
        // mid-window, twice in one shard, and at end-of-stream.
        let mut cfg = base_cfg();
        cfg.kills = vec![
            ShardKill { shard: 0, at: 0 },
            ShardKill { shard: 0, at: 999 },
            ShardKill { shard: 1, at: 250 },
            ShardKill { shard: 1, at: 333 },
            ShardKill { shard: 2, at: LEN },
        ];
        let report = supervised(&cfg);
        assert_matches_plain(&report, &plain, "killed");
        let sup = report.supervisor.as_ref().unwrap();
        assert!(!sup.is_degraded(), "recovered, not degraded");
        assert_eq!(sup.total_restarts(), 5);
        for (shard, restarts) in [(0usize, 2u32), (1, 2), (2, 1)] {
            let s = &sup.shards[shard];
            assert_eq!(s.state, ShardState::Recovered, "shard {shard}");
            assert_eq!(s.restarts, restarts, "shard {shard}");
            assert!(s.error.as_deref().unwrap().contains("injected kill"));
            assert_eq!(s.windows_lost, 0);
        }
    }

    #[test]
    fn injected_store_fault_recovers_byte_identically() {
        let mut cfg = base_cfg();
        cfg.store_faults = vec![StoreFault { shard: 1, nth: 1 }];
        let report = supervised(&cfg);
        assert_matches_plain(&report, &plain_fleet(), "store-fault");
        let sup = report.supervisor.as_ref().unwrap();
        assert!(!sup.is_degraded());
        let s = &sup.shards[1];
        assert_eq!(s.state, ShardState::Recovered);
        assert_eq!(s.restarts, 1);
        assert!(
            s.error
                .as_deref()
                .unwrap()
                .contains("injected checkpoint-store fault"),
            "{:?}",
            s.error
        );
    }

    #[test]
    fn exhausted_retries_quarantine_the_shard_only() {
        let plain = plain_fleet();
        let mut cfg = base_cfg();
        cfg.max_restarts = 1;
        // Two kills at the same instant: the shard dies at t=500 on
        // every attempt until its budget runs out.
        cfg.kills = vec![
            ShardKill { shard: 2, at: 500 },
            ShardKill { shard: 2, at: 500 },
        ];
        let report = supervised(&cfg);
        let sup = report.supervisor.as_ref().unwrap();
        assert!(sup.is_degraded());
        assert_eq!(sup.quarantined(), vec![2]);
        // Healthy shards are untouched by the sick one.
        for shard in [0usize, 1] {
            assert_eq!(report.shards[shard].stats, plain.shards[shard].stats);
            assert_eq!(sup.shards[shard].state, ShardState::Clean);
        }
        // The quarantined shard contributes exactly its last
        // checkpoint: 500 requests, two full windows, nothing lost.
        let sick = &report.shards[2];
        assert_eq!(sick.served, 500);
        assert_eq!(
            sick.stats.total_hits() + sick.stats.total_misses(),
            500,
            "stats reflect the checkpoint, not the failed tail"
        );
        let series = sick.series.as_ref().unwrap();
        assert_eq!(series.windows.len(), 2, "windows 0 and 1 committed");
        assert_eq!(sup.shards[2].windows_lost, 0);
        let v = report.to_json_value();
        let degraded = v.get("degraded").expect("degraded section");
        let q = degraded.get("quarantined").unwrap().as_array().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].get("shard").unwrap().as_u64(), Some(2));
        assert!(q[0]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("injected kill"));
    }

    #[test]
    fn quarantine_without_any_checkpoint_contributes_zeroes() {
        let mut cfg = base_cfg();
        cfg.max_restarts = 0;
        // Dies at t=100, before the first checkpoint boundary.
        cfg.kills = vec![ShardKill { shard: 0, at: 100 }];
        let report = supervised(&cfg);
        let sup = report.supervisor.as_ref().unwrap();
        assert_eq!(sup.quarantined(), vec![0]);
        let sick = &report.shards[0];
        assert_eq!(sick.served, 0);
        assert_eq!(sick.stats.total_hits() + sick.stats.total_misses(), 0);
        assert!(sick.series.as_ref().unwrap().windows.is_empty());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = BackoffPolicy::exponential(10, 42);
        for shard in 0..4 {
            for attempt in 1..8 {
                let d = p.delay_ms(shard, attempt);
                assert_eq!(d, p.delay_ms(shard, attempt), "pure function of inputs");
                let exp = (10u64 << (attempt - 1).min(16)).min(p.cap_ms);
                assert!(
                    d >= exp / 2 && d <= exp,
                    "delay {d} outside [{}, {exp}]",
                    exp / 2
                );
            }
        }
        // Jitter decorrelates shards.
        assert_ne!(p.delay_ms(0, 3), p.delay_ms(1, 3));
        // Base 0 disables sleeping entirely.
        assert_eq!(BackoffPolicy::none().delay_ms(7, 5), 0);
        // The recorded backoff log matches the policy.
        let mut cfg = base_cfg();
        cfg.backoff = BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
            seed: 9,
        };
        cfg.kills = vec![ShardKill { shard: 1, at: 300 }];
        let report = supervised(&cfg);
        let sup = report.supervisor.unwrap();
        assert_eq!(sup.shards[1].backoff_ms, vec![0]);
    }

    #[test]
    fn dir_persist_survives_kills_and_seals_verifiable_files() {
        let dir = std::env::temp_dir().join(format!("occ-supervisor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = base_cfg();
        cfg.kills = vec![
            ShardKill { shard: 0, at: 400 },
            ShardKill { shard: 2, at: 750 },
        ];
        let dir_ref = &dir;
        let report = run_supervised_fleet(
            SHARDS,
            &cfg,
            source_for,
            |_| Lru::new(),
            move |shard| {
                Box::new(
                    DirPersist::open(dir_ref, shard, WIDTH, 0, &[]).expect("persist dir opens"),
                )
            },
        );
        assert_matches_plain(&report, &plain_fleet(), "dir-persist");
        for shard in 0..SHARDS {
            // Checkpoints carry a mandatory trailer and restore to the
            // end of the stream.
            let ckpt = std::fs::read_to_string(DirPersist::ckpt_path(&dir, shard)).unwrap();
            let body = require_trailer(&ckpt).expect("checkpoint trailer verifies");
            let snap = snapshot_from_json(body).expect("checkpoint parses");
            assert_eq!(snap.time, LEN, "final checkpoint is at end of stream");
            // Series files parse, verify their trailer, and hold every
            // window exactly once despite the restart replays.
            let text = std::fs::read_to_string(DirPersist::series_path(&dir, shard)).unwrap();
            let parsed = SeriesFile::parse(&text).expect("series parses");
            assert_eq!(parsed.width, WIDTH);
            assert_eq!(
                parsed.windows,
                report.shards[shard].series.as_ref().unwrap().windows,
                "shard {shard}: on-disk series == in-memory series"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_from_mid_stream_snapshots() {
        // Run the first half supervised, snapshot by hand, then resume
        // a second supervised fleet from those snapshots: the stitched
        // stats must equal the one-shot run.
        let plain = plain_fleet();
        let snaps: Vec<Option<occ_sim::EngineSnapshot>> = (0..SHARDS)
            .map(|shard| {
                let mut src = source_for(shard);
                let mut eng = occ_sim::SteppingEngine::new(
                    sqlvm_like().suggested_k,
                    src.universe().clone(),
                    Lru::new(),
                );
                for _ in 0..500 {
                    let r = {
                        let ctx = eng.ctx();
                        src.next_request(&ctx)
                    }
                    .unwrap();
                    eng.step(r);
                }
                Some(eng.snapshot().unwrap())
            })
            .collect();
        let mut cfg = base_cfg();
        cfg.resume = snaps;
        cfg.kills = vec![ShardKill { shard: 1, at: 750 }];
        let report = supervised(&cfg);
        for (shard, s) in report.shards.iter().enumerate() {
            assert_eq!(s.served, 500, "second half only");
            assert_eq!(
                s.stats, plain.shards[shard].stats,
                "resumed stats equal the one-shot run (stats live in the snapshot)"
            );
            // Only windows 2 and 3 are produced by the resumed run.
            let windows = &s.series.as_ref().unwrap().windows;
            assert_eq!(windows.len(), 2);
            assert_eq!(windows[0].index, 2);
            assert_eq!(
                windows[0],
                plain.shards[shard].series.as_ref().unwrap().windows[2],
                "resumed window 2 is byte-identical"
            );
        }
    }
}
