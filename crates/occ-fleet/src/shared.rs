//! Shared-cache fleet mode: M worker threads, **one** k-sized cache.
//!
//! The plain fleet ([`run_fleet`](crate::run_fleet)) scales by cloning
//! independent caches; this module drives the page-sharded
//! [`ConcurrentEngine`] instead — every worker contends for the same
//! capacity, which is the deployment the paper's shared-cache model
//! actually describes. It layers on top of `occ_sim::concurrent`:
//! per-thread [`MetricsRecorder`]s merged in thread order, the
//! deterministic replay gate run in-process (on by default), and a
//! schema-stamped JSON report for `occ concurrent`.

use crate::Json;
use occ_probe::MetricsRecorder;
use occ_sim::concurrent::{
    replay_schedule, run_shared, verify_replay, ConcurrentEngine, ReplayError, ReplayOutcome,
    SharedOutcome,
};
use occ_sim::probe::NoopRecorder;
use occ_sim::{FaultPolicy, ReplacementPolicy, RequestSource, SimError, Universe};
use std::fmt;
use std::time::{Duration, Instant};

/// Schema stamp for [`SharedReport::to_json_value`].
pub const SHARED_SCHEMA: u64 = 1;

/// Configuration of a shared-cache run.
#[derive(Clone, Copy, Debug)]
pub struct SharedConfig {
    /// Capacity `k` of the single shared cache.
    pub capacity: usize,
    /// Number of lock-striped page-table segments S.
    pub table_shards: usize,
    /// Degradation policy applied to malformed records.
    pub degrade: FaultPolicy,
    /// Attach a [`MetricsRecorder`] per worker (merged in thread
    /// order). Off = zero-overhead [`NoopRecorder`] workers.
    pub record: bool,
    /// Run the deterministic replay gate after the concurrent run and
    /// fail on any divergence. On by default; turning it off only
    /// skips the in-process check — the schedule is always recorded.
    pub verify: bool,
}

impl SharedConfig {
    /// A recording, replay-verified config with `table_shards` = 8.
    pub fn new(capacity: usize) -> Self {
        SharedConfig {
            capacity,
            table_shards: 8,
            degrade: FaultPolicy::SkipAndCount,
            record: true,
            verify: true,
        }
    }
}

/// Why a shared-cache run failed.
#[derive(Debug)]
pub enum SharedError {
    /// The engine faulted (only fail-fast runs do).
    Sim(SimError),
    /// The replay gate rejected the run.
    Replay(ReplayError),
}

impl fmt::Display for SharedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharedError::Sim(e) => write!(f, "{e}"),
            SharedError::Replay(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SharedError {}

impl From<SimError> for SharedError {
    fn from(e: SimError) -> Self {
        SharedError::Sim(e)
    }
}

impl From<ReplayError> for SharedError {
    fn from(e: ReplayError) -> Self {
        SharedError::Replay(e)
    }
}

/// Outcome of a shared-cache run (plus the replay gate's verdict).
#[derive(Debug)]
pub struct SharedReport {
    /// Worker thread count M.
    pub threads: usize,
    /// Page-table segment count S.
    pub table_shards: usize,
    /// Shared cache capacity `k`.
    pub capacity: usize,
    /// Degradation policy that was in force.
    pub degrade: FaultPolicy,
    /// Merged stats / counters / quarantine set / commit schedule.
    pub outcome: SharedOutcome,
    /// All worker recorders folded into one (empty when recording off).
    pub merged: MetricsRecorder,
    /// The replay gate's aggregate state; `None` when verification was
    /// disabled. When `Some`, the replay matched (mismatch is an error).
    pub replay: Option<ReplayOutcome>,
    /// Wall-clock time of the concurrent phase (excludes the replay).
    pub wall: Duration,
}

impl SharedReport {
    /// Committed records per second of concurrent wall-clock.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.outcome.schedule.len() as f64 / self.wall.as_secs_f64()
    }

    /// The schema-stamped JSON report behind `occ concurrent --format json`.
    pub fn to_json_value(&self) -> Json {
        let users = self
            .outcome
            .stats
            .per_user()
            .iter()
            .map(|u| {
                Json::Obj(vec![
                    ("hits".into(), Json::from_u64(u.hits)),
                    ("misses".into(), Json::from_u64(u.misses)),
                    ("evictions".into(), Json::from_u64(u.evictions)),
                ])
            })
            .collect();
        let c = &self.outcome.counters;
        let faults = Json::Obj(vec![
            (
                "page_out_of_range".into(),
                Json::from_u64(c.page_out_of_range),
            ),
            ("owner_mismatch".into(), Json::from_u64(c.owner_mismatch)),
            (
                "quarantined_drops".into(),
                Json::from_u64(c.quarantined_drops),
            ),
            (
                "quarantined_users".into(),
                Json::from_u64(c.quarantined_users),
            ),
        ]);
        let quarantined = self
            .outcome
            .quarantined
            .iter()
            .map(|u| Json::from_u64(u.0 as u64))
            .collect();
        let mut fields = vec![
            ("schema".into(), Json::from_u64(SHARED_SCHEMA)),
            ("kind".into(), Json::Str("shared-report".into())),
            ("threads".into(), Json::from_u64(self.threads as u64)),
            (
                "table_shards".into(),
                Json::from_u64(self.table_shards as u64),
            ),
            ("capacity".into(), Json::from_u64(self.capacity as u64)),
            ("degrade".into(), Json::Str(self.degrade.name().into())),
            (
                "commits".into(),
                Json::from_u64(self.outcome.schedule.len() as u64),
            ),
            ("users".into(), Json::Arr(users)),
            ("faults".into(), faults),
            ("quarantined".into(), Json::Arr(quarantined)),
            ("merged".into(), self.merged.to_json_value()),
            ("wall_ms".into(), Json::Num(self.wall.as_secs_f64() * 1e3)),
            (
                "requests_per_sec".into(),
                Json::Num(self.requests_per_sec()),
            ),
        ];
        fields.push((
            "replay".into(),
            match &self.replay {
                Some(r) => Json::Obj(vec![
                    ("verified".into(), Json::Bool(true)),
                    ("identical".into(), Json::Bool(true)),
                    (
                        "commits".into(),
                        Json::from_u64(self.outcome.schedule.len() as u64),
                    ),
                    (
                        "replay_misses".into(),
                        Json::from_u64(r.stats.total_misses()),
                    ),
                ]),
                None => Json::Obj(vec![("verified".into(), Json::Bool(false))]),
            },
        ));
        Json::Obj(fields)
    }
}

/// Drive `sources[t]` on worker thread `t` against one shared cache,
/// merge recorders in thread order, and (unless disabled) gate the run
/// on its own deterministic replay. `make_policy(s)` builds the policy
/// instance for shard segment `s`; the replay gate calls it again for
/// its mirror instances, so it must be deterministic.
pub fn run_shared_fleet<P, S, F>(
    universe: Universe,
    cfg: &SharedConfig,
    sources: &mut [S],
    make_policy: F,
) -> Result<SharedReport, SharedError>
where
    P: ReplacementPolicy + Send,
    S: RequestSource + Send,
    F: Fn(usize) -> P,
{
    let threads = sources.len();
    let engine = ConcurrentEngine::new(
        cfg.capacity,
        universe.clone(),
        cfg.degrade,
        (0..cfg.table_shards).map(&make_policy).collect(),
    );
    let started = Instant::now();
    let (outcome, merged) = if cfg.record {
        let mut recorders: Vec<MetricsRecorder> =
            (0..threads).map(|_| MetricsRecorder::new()).collect();
        let outcome = run_shared(&engine, sources, &mut recorders)?;
        let mut merged = MetricsRecorder::new();
        for r in &recorders {
            merged.merge(r);
        }
        (outcome, merged)
    } else {
        let mut recorders = vec![NoopRecorder; threads];
        let outcome = run_shared(&engine, sources, &mut recorders)?;
        (outcome, MetricsRecorder::new())
    };
    let wall = started.elapsed();
    let replay = if cfg.verify {
        let replayed = replay_schedule(
            cfg.capacity,
            universe,
            (0..cfg.table_shards).map(&make_policy).collect(),
            cfg.degrade,
            &outcome.schedule,
        )?;
        verify_replay(&outcome, &replayed)?;
        Some(replayed)
    } else {
        None
    };
    Ok(SharedReport {
        threads,
        table_shards: cfg.table_shards,
        capacity: cfg.capacity,
        degrade: cfg.degrade,
        outcome,
        merged,
        replay,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use occ_baselines::Lru;
    use occ_probe::check_schema_stamp;
    use occ_workloads::presets::all_scenarios;

    #[test]
    fn shared_run_verifies_and_reports() {
        let scenarios = all_scenarios();
        let scenario = &scenarios[0];
        let mut sources: Vec<_> = (0..4)
            .map(|t| scenario.stream(2_000, 7 + t as u64))
            .collect();
        let universe = sources[0].universe().clone();
        let cfg = SharedConfig {
            capacity: scenario.suggested_k,
            table_shards: 4,
            degrade: FaultPolicy::SkipAndCount,
            record: true,
            verify: true,
        };
        let report =
            run_shared_fleet(universe, &cfg, &mut sources, |_| Lru::new()).expect("run + replay");
        assert_eq!(report.outcome.schedule.len(), 8_000);
        assert!(report.replay.is_some());
        assert_eq!(report.merged.requests(), 8_000);
        assert_eq!(
            report.merged.hits() + report.merged.inserts() + report.merged.evictions(),
            8_000
        );
        let v = report.to_json_value();
        check_schema_stamp(&v, SHARED_SCHEMA, "shared report").unwrap();
        let text = v.to_json();
        assert!(text.contains("\"identical\": true") || text.contains("\"identical\":true"));
    }

    #[test]
    fn unrecorded_run_matches_recorded_counters() {
        let scenarios = all_scenarios();
        let scenario = &scenarios[1];
        let universe = scenario.stream(1, 1).universe().clone();
        let run = |record: bool| {
            let mut sources: Vec<_> = (0..3).map(|t| scenario.stream(1_500, t as u64)).collect();
            let cfg = SharedConfig {
                capacity: scenario.suggested_k,
                table_shards: 3,
                degrade: FaultPolicy::SkipAndCount,
                record,
                verify: true,
            };
            run_shared_fleet(universe.clone(), &cfg, &mut sources, |_| Lru::new()).unwrap()
        };
        let recorded = run(true);
        let bare = run(false);
        // Scheduling differs between the two runs, but totals are
        // schedule-independent for a shared LRU over the same streams?
        // No — interleaving changes outcomes. What must hold: each run
        // equals its own replay (checked inside), and the unrecorded
        // run's merged recorder is empty.
        assert_eq!(bare.merged.requests(), 0);
        assert_eq!(recorded.merged.requests(), 4_500);
        assert_eq!(bare.outcome.schedule.len(), 4_500);
    }
}
