//! Polynomial costs with non-negative coefficients and no constant term.
//!
//! Claim 2.3's closing remark: for a polynomial with positive coefficients
//! and degree `β`, the curvature constant is `α = β` (each monomial term
//! contributes `x f'(x)/f(x)` at most its own degree, and the ratio is a
//! coefficient-weighted average of the term degrees, approaching the top
//! degree as `x → ∞`).

use super::CostFunction;

/// `f(x) = Σ_{d=1}^{D} coeffs[d-1] · x^d`, all coefficients `≥ 0`, at
/// least one positive.
#[derive(Clone, Debug, PartialEq)]
pub struct Polynomial {
    /// `coeffs[d-1]` multiplies `x^d`.
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Create from coefficients of `x^1, x^2, …` in order. Panics if any
    /// coefficient is negative, the list is empty, or all are zero.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "need at least one coefficient");
        assert!(
            coeffs.iter().all(|&c| c >= 0.0),
            "coefficients must be non-negative for convexity"
        );
        assert!(
            coeffs.iter().any(|&c| c > 0.0),
            "at least one coefficient must be positive"
        );
        Polynomial { coeffs }
    }

    /// Degree of the highest term with a positive coefficient.
    pub fn degree(&self) -> usize {
        self.coeffs
            .iter()
            .rposition(|&c| c > 0.0)
            .expect("constructor guarantees a positive coefficient")
            + 1
    }

    /// The coefficient vector (index `d-1` multiplies `x^d`).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }
}

impl CostFunction for Polynomial {
    fn eval(&self, x: f64) -> f64 {
        // Horner over c_D x^D + … + c_1 x  =  x·(c_1 + x·(c_2 + …)).
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc * x
    }

    fn deriv(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for (d, &c) in self.coeffs.iter().enumerate().rev() {
            acc = acc * x + c * (d as f64 + 1.0);
        }
        acc
    }

    fn alpha(&self) -> Option<f64> {
        Some(self.degree() as f64)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, &c)| format!("{}·x^{}", c, i + 1))
            .collect();
        terms.join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn eval_and_deriv() {
        // f(x) = 2x + 3x³
        let f = Polynomial::new(vec![2.0, 0.0, 3.0]);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(2.0), 4.0 + 24.0);
        assert_eq!(f.deriv(2.0), 2.0 + 9.0 * 4.0);
        testutil::check_contract(&f, 20.0);
        testutil::check_derivative(&f, &[0.1, 1.0, 5.0], 1e-4);
    }

    #[test]
    fn degree_skips_trailing_zeros() {
        let f = Polynomial::new(vec![1.0, 2.0, 0.0]);
        assert_eq!(f.degree(), 2);
        assert_eq!(f.alpha(), Some(2.0));
    }

    #[test]
    fn alpha_bounds_pointwise_ratio() {
        // x f'(x)/f(x) ≤ degree pointwise for positive coefficients.
        let f = Polynomial::new(vec![1.0, 0.5, 0.25]);
        let alpha = f.alpha().unwrap();
        for x in [0.1, 1.0, 10.0, 100.0] {
            let ratio = x * f.deriv(x) / f.eval(x);
            assert!(
                ratio <= alpha + 1e-9,
                "ratio {ratio} exceeds α={alpha} at x={x}"
            );
        }
        // …and approaches the degree for large x.
        let x = 1e6;
        let ratio = x * f.deriv(x) / f.eval(x);
        assert!((ratio - alpha).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_coefficient() {
        Polynomial::new(vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_all_zero() {
        Polynomial::new(vec![0.0, 0.0]);
    }

    #[test]
    fn describe_lists_nonzero_terms() {
        let f = Polynomial::new(vec![2.0, 0.0, 1.0]);
        assert_eq!(f.describe(), "2·x^1 + 1·x^3");
    }
}
