//! Linear costs `f(x) = w·x` — the weighted-caching special case.
//!
//! With linear costs each miss of user `i` costs a fixed `w_i`, recovering
//! the weighted caching problem of Young [20] / Bansal–Buchbinder–Naor [3];
//! `α = 1` and Theorem 1.1 degenerates to the classical `k`-competitive
//! guarantee. With *uniform* weights, ALG-DISCRETE's eviction rule
//! provably coincides with LRU (tested in `occ-core/src/alg`).

use super::CostFunction;

/// `f(x) = weight · x` with `weight > 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Linear {
    weight: f64,
}

impl Linear {
    /// Create a linear cost with the given per-miss weight.
    pub fn new(weight: f64) -> Self {
        assert!(weight > 0.0, "weight must be positive");
        Linear { weight }
    }

    /// Unit weight — classical unweighted paging.
    pub fn unit() -> Self {
        Linear { weight: 1.0 }
    }

    /// The per-miss weight `w`.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl CostFunction for Linear {
    fn eval(&self, x: f64) -> f64 {
        self.weight * x
    }

    fn deriv(&self, _x: f64) -> f64 {
        self.weight
    }

    fn marginal(&self, _m: u64) -> f64 {
        self.weight
    }

    fn alpha(&self) -> Option<f64> {
        Some(1.0)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        format!("{}·x", self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn basics() {
        let f = Linear::new(2.5);
        assert_eq!(f.eval(4.0), 10.0);
        assert_eq!(f.deriv(100.0), 2.5);
        assert_eq!(f.marginal(7), 2.5);
        assert_eq!(f.alpha(), Some(1.0));
        testutil::check_contract(&f, 100.0);
    }

    #[test]
    fn unit_weight() {
        let f = Linear::unit();
        assert_eq!(f.weight(), 1.0);
        assert_eq!(f.eval(3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weight() {
        Linear::new(0.0);
    }
}
