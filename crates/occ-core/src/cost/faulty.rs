//! Injectable cost-function pathologies for robustness testing.
//!
//! [`FaultyCost`] wraps any cost function and corrupts it past a
//! trigger point: chaos runs use it to verify that the checked
//! evaluation paths ([`CostProfile::total_cost_checked`]) and the
//! algorithm's NaN-marginal guard degrade gracefully instead of
//! propagating garbage into reports.
//!
//! [`CostProfile::total_cost_checked`]: super::CostProfile::total_cost_checked

use super::CostFunction;
use std::sync::Arc;

/// Which pathology [`FaultyCost`] injects once `x` reaches the trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostPathology {
    /// `f(x)` becomes NaN.
    Nan,
    /// `f(x)` overflows to `+∞`.
    Overflow,
    /// `f(x)` *decreases* past the trigger (violates monotonicity, and
    /// with it convexity — while the wrapper still parrots the inner
    /// function's convexity claim, stressing consumers that trust it).
    NonMonotone,
}

impl CostPathology {
    /// Stable label for tables and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            CostPathology::Nan => "nan",
            CostPathology::Overflow => "overflow",
            CostPathology::NonMonotone => "non-monotone",
        }
    }
}

/// A cost function that misbehaves for arguments `x ≥ trigger`.
///
/// Below the trigger it is exactly the inner function, so a chaos run
/// behaves normally until a user accumulates enough misses — the
/// realistic failure shape (overflow and NaN appear late, at large
/// arguments, not at construction).
#[derive(Clone, Debug)]
pub struct FaultyCost {
    inner: Arc<dyn CostFunction>,
    pathology: CostPathology,
    trigger: f64,
}

impl FaultyCost {
    /// Wrap `inner`, injecting `pathology` for arguments `≥ trigger`.
    pub fn new(inner: impl CostFunction + 'static, pathology: CostPathology, trigger: f64) -> Self {
        FaultyCost {
            inner: Arc::new(inner),
            pathology,
            trigger,
        }
    }

    #[inline]
    fn corrupt(&self, x: f64, honest: f64) -> f64 {
        if x < self.trigger {
            return honest;
        }
        match self.pathology {
            CostPathology::Nan => f64::NAN,
            CostPathology::Overflow => f64::INFINITY,
            CostPathology::NonMonotone => self.inner.eval(self.trigger) - (x - self.trigger),
        }
    }
}

impl CostFunction for FaultyCost {
    fn eval(&self, x: f64) -> f64 {
        self.corrupt(x, self.inner.eval(x))
    }

    fn deriv(&self, x: f64) -> f64 {
        if x < self.trigger {
            return self.inner.deriv(x);
        }
        match self.pathology {
            CostPathology::Nan => f64::NAN,
            CostPathology::Overflow => f64::INFINITY,
            CostPathology::NonMonotone => -1.0,
        }
    }

    fn alpha(&self) -> Option<f64> {
        self.inner.alpha()
    }

    // Deliberately parrots the inner function: a pathological profile
    // that *claims* convexity exercises the fast path's guards.
    fn is_convex(&self) -> bool {
        self.inner.is_convex()
    }

    fn describe(&self) -> String {
        format!(
            "faulty({}, {} @ x≥{})",
            self.inner.describe(),
            self.pathology.label(),
            self.trigger
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CostProfile, Linear, Monomial};
    use super::*;
    use occ_sim::CostAnomaly;

    #[test]
    fn honest_below_trigger() {
        let f = FaultyCost::new(Monomial::power(2.0), CostPathology::Nan, 10.0);
        assert_eq!(f.eval(3.0), 9.0);
        assert_eq!(f.deriv(3.0), 6.0);
        assert!(f.is_convex());
    }

    #[test]
    fn pathologies_fire_at_trigger() {
        let nan = FaultyCost::new(Linear::unit(), CostPathology::Nan, 5.0);
        assert!(nan.eval(5.0).is_nan());
        let ovf = FaultyCost::new(Linear::unit(), CostPathology::Overflow, 5.0);
        assert_eq!(ovf.eval(6.0), f64::INFINITY);
        let dec = FaultyCost::new(Linear::unit(), CostPathology::NonMonotone, 5.0);
        assert!(dec.eval(7.0) < dec.eval(5.0));
    }

    #[test]
    fn checked_total_cost_names_the_faulty_user() {
        let p = CostProfile::new(vec![
            Arc::new(Linear::unit()) as Arc<dyn CostFunction>,
            Arc::new(FaultyCost::new(Linear::unit(), CostPathology::Nan, 4.0)),
        ]);
        assert_eq!(p.total_cost_checked(&[10, 2]).unwrap(), 12.0);
        let err = p.total_cost_checked(&[10, 7]).unwrap_err();
        assert_eq!(err.user, Some(1));
        assert!(err.value.is_nan());
        assert_eq!(err.what, "f_i(m_i)");
        // The unchecked form silently propagates the NaN — that contrast
        // is the point of the checked path.
        assert!(p.total_cost(&[10, 7]).is_nan());
    }

    #[test]
    fn checked_total_cost_catches_overflowing_sum() {
        let p = CostProfile::uniform(
            2,
            FaultyCost::new(Linear::unit(), CostPathology::Overflow, 1.0),
        );
        let err: CostAnomaly = p.total_cost_checked(&[5, 5]).unwrap_err();
        assert_eq!(err.user, Some(0), "first offending user is named");
        assert_eq!(err.value, f64::INFINITY);
    }
}
