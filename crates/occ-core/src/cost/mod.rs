//! User cost functions `f_i` mapping miss counts to costs.
//!
//! The paper assumes each `f_i : ℝ → ℝ` is differentiable, convex,
//! increasing and non-negative with `f_i(0) = 0` for its *guarantees*, but
//! the algorithm itself runs on arbitrary (even discontinuous) cost
//! functions using discrete marginals (§2.5). The trait therefore exposes
//! both the analytic derivative and the discrete marginal, and the
//! algorithms select between them via [`Marginals`].
//!
//! The curvature constant that drives every bound in the paper is
//! `α = sup_x x·f'(x)/f(x)` (Theorem 1.1); [`CostFunction::alpha`] reports
//! it analytically when known, and `crate::theory::alpha` estimates it
//! numerically otherwise.

mod combinators;
mod faulty;
mod linear;
mod monomial;
mod piecewise;
mod polynomial;
mod profile;
mod special;

pub use combinators::{Scaled, SumCost};
pub use faulty::{CostPathology, FaultyCost};
pub use linear::Linear;
pub use monomial::Monomial;
pub use piecewise::PiecewiseLinear;
pub use polynomial::Polynomial;
pub use profile::CostProfile;
pub use special::{Exponential, HugeCost, ThresholdCost};

use std::fmt::Debug;
use std::sync::Arc;

/// A per-user miss cost function.
///
/// Implementations must satisfy `eval(0) == 0` and be non-decreasing; the
/// convexity-dependent guarantees additionally require convexity, which
/// [`Self::is_convex`] advertises.
pub trait CostFunction: Debug + Send + Sync {
    /// `f(x)`: cost of `x` misses. Defined for `x ≥ 0`.
    fn eval(&self, x: f64) -> f64;

    /// `f'(x)`: the (right-)derivative at `x`.
    fn deriv(&self, x: f64) -> f64;

    /// Discrete marginal `f(m+1) − f(m)`, the §2.5 replacement for the
    /// derivative when `f` is not differentiable (or not even continuous).
    fn marginal(&self, m: u64) -> f64 {
        self.eval((m + 1) as f64) - self.eval(m as f64)
    }

    /// The curvature constant `sup_{x>0} x·f'(x)/f(x)` if analytically
    /// known; `None` when unknown or unbounded.
    fn alpha(&self) -> Option<f64>;

    /// Whether the function is convex on `x ≥ 0` (determines whether the
    /// paper's guarantees apply).
    fn is_convex(&self) -> bool;

    /// Short human-readable description for experiment tables.
    fn describe(&self) -> String;
}

/// Shared-ownership handle to a cost function.
pub type CostFn = Arc<dyn CostFunction>;

/// Which notion of marginal cost the algorithms feed into the budgets of
/// Figure 3 (§2.5 permits either).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Marginals {
    /// The analytic derivative `f'(m+1)` — the form used in the paper's
    /// pseudo-code and analysis.
    #[default]
    Derivative,
    /// The discrete marginal `f(m+1) − f(m)` — works for arbitrary `f`.
    Discrete,
}

impl Marginals {
    /// The marginal cost charged for a user's next eviction given `m`
    /// evictions so far.
    #[inline]
    pub fn next_eviction_cost(self, f: &dyn CostFunction, m: u64) -> f64 {
        match self {
            Marginals::Derivative => f.deriv((m + 1) as f64),
            Marginals::Discrete => f.marginal(m),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Check basic contract properties of a cost function on a grid.
    pub fn check_contract(f: &dyn CostFunction, xmax: f64) {
        assert!(
            f.eval(0.0).abs() < 1e-12,
            "{}: f(0) must be 0, got {}",
            f.describe(),
            f.eval(0.0)
        );
        let steps = 200;
        let mut prev = f.eval(0.0);
        for i in 1..=steps {
            let x = xmax * i as f64 / steps as f64;
            let v = f.eval(x);
            assert!(
                v + 1e-9 >= prev,
                "{}: not non-decreasing at x={x}: {v} < {prev}",
                f.describe()
            );
            assert!(v.is_finite(), "{}: non-finite value at x={x}", f.describe());
            assert!(
                f.deriv(x) >= -1e-12,
                "{}: negative derivative at x={x}",
                f.describe()
            );
            prev = v;
        }
    }

    /// Check that `deriv` matches a central finite difference of `eval`.
    pub fn check_derivative(f: &dyn CostFunction, xs: &[f64], tol: f64) {
        let h = 1e-5;
        for &x in xs {
            let num = (f.eval(x + h) - f.eval(x - h)) / (2.0 * h);
            let ana = f.deriv(x);
            assert!(
                (num - ana).abs() <= tol * (1.0 + ana.abs()),
                "{}: derivative mismatch at x={x}: analytic {ana}, numeric {num}",
                f.describe()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginals_modes_agree_for_linear() {
        let f = Linear::new(3.0);
        // For linear costs f'(m+1) == f(m+1) - f(m) == w.
        assert_eq!(Marginals::Derivative.next_eviction_cost(&f, 5), 3.0);
        assert_eq!(Marginals::Discrete.next_eviction_cost(&f, 5), 3.0);
    }

    #[test]
    fn marginals_modes_differ_for_quadratic() {
        let f = Monomial::new(1.0, 2.0);
        // f(x) = x²: f'(m+1) = 2(m+1); Δf(m) = 2m+1.
        assert_eq!(Marginals::Derivative.next_eviction_cost(&f, 3), 8.0);
        assert_eq!(Marginals::Discrete.next_eviction_cost(&f, 3), 7.0);
    }

    #[test]
    fn default_marginal_is_difference_of_eval() {
        let f = Monomial::new(2.0, 3.0);
        let expect = 2.0 * (5f64.powi(3) - 4f64.powi(3));
        assert!((f.marginal(4) - expect).abs() < 1e-9);
    }
}
