//! Monomial costs `f(x) = c·x^β` — the family of Corollary 1.2.

use super::CostFunction;

/// `f(x) = scale · x^beta` with `scale > 0`, `beta ≥ 1`.
///
/// For this family the curvature constant is exactly `α = β`
/// (`x f'(x)/f(x) = β` for every `x > 0`), so Corollary 1.2's competitive
/// ratio is `β^β k^β`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Monomial {
    scale: f64,
    beta: f64,
}

impl Monomial {
    /// Create `scale · x^beta`. Panics unless `scale > 0` and `beta ≥ 1`
    /// (the paper's convexity assumption needs `β ≥ 1`).
    pub fn new(scale: f64, beta: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(beta >= 1.0, "beta must be at least 1 for convexity");
        Monomial { scale, beta }
    }

    /// `x^beta` with unit scale.
    pub fn power(beta: f64) -> Self {
        Self::new(1.0, beta)
    }

    /// The exponent `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The multiplicative scale `c`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl CostFunction for Monomial {
    fn eval(&self, x: f64) -> f64 {
        debug_assert!(x >= 0.0, "cost functions are defined on x ≥ 0");
        self.scale * x.powf(self.beta)
    }

    fn deriv(&self, x: f64) -> f64 {
        if self.beta == 1.0 {
            self.scale
        } else {
            self.scale * self.beta * x.powf(self.beta - 1.0)
        }
    }

    fn alpha(&self) -> Option<f64> {
        Some(self.beta)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        if (self.scale - 1.0).abs() < 1e-12 {
            format!("x^{}", self.beta)
        } else {
            format!("{}·x^{}", self.scale, self.beta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn values_and_derivatives() {
        let f = Monomial::new(2.0, 3.0);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(2.0), 16.0);
        assert_eq!(f.deriv(2.0), 24.0);
        testutil::check_contract(&f, 50.0);
        testutil::check_derivative(&f, &[0.5, 1.0, 3.0, 10.0], 1e-5);
    }

    #[test]
    fn linear_special_case_derivative_at_zero() {
        let f = Monomial::new(4.0, 1.0);
        // β = 1 must not produce 0^0 trouble.
        assert_eq!(f.deriv(0.0), 4.0);
        assert_eq!(f.eval(5.0), 20.0);
    }

    #[test]
    fn alpha_is_beta() {
        for beta in [1.0, 1.5, 2.0, 4.0] {
            let f = Monomial::power(beta);
            assert_eq!(f.alpha(), Some(beta));
            // Verify x f'(x)/f(x) == β pointwise.
            for x in [0.3, 1.0, 7.0] {
                let ratio = x * f.deriv(x) / f.eval(x);
                assert!((ratio - beta).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_concave_exponent() {
        Monomial::new(1.0, 0.5);
    }

    #[test]
    fn describe_forms() {
        assert_eq!(Monomial::power(2.0).describe(), "x^2");
        assert_eq!(Monomial::new(3.0, 2.0).describe(), "3·x^2");
    }
}
