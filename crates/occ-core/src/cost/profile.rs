//! A cost profile: one cost function per user, and the objective
//! `Σ_i f_i(misses_i)` the whole paper is about.

use super::{CostFn, CostFunction, Marginals};
use occ_sim::{CostAnomaly, UserId};
use std::sync::Arc;

/// One cost function per user, indexed by dense user id.
#[derive(Clone, Debug)]
pub struct CostProfile {
    fns: Vec<CostFn>,
}

impl CostProfile {
    /// Per-user functions, `fns[i]` for user `i`.
    pub fn new(fns: Vec<CostFn>) -> Self {
        assert!(!fns.is_empty(), "a profile needs at least one user");
        CostProfile { fns }
    }

    /// The same function for all `n` users.
    pub fn uniform(n: u32, f: impl CostFunction + 'static) -> Self {
        let f: CostFn = Arc::new(f);
        CostProfile {
            fns: (0..n).map(|_| Arc::clone(&f)).collect(),
        }
    }

    /// Build from a closure mapping user index to a cost function.
    pub fn from_fn(n: u32, mut make: impl FnMut(u32) -> CostFn) -> Self {
        CostProfile {
            fns: (0..n).map(&mut make).collect(),
        }
    }

    /// Number of users covered.
    pub fn num_users(&self) -> u32 {
        self.fns.len() as u32
    }

    /// The cost function of one user.
    #[inline]
    pub fn user(&self, user: UserId) -> &dyn CostFunction {
        &*self.fns[user.index()]
    }

    /// Shared handle to one user's cost function.
    pub fn user_fn(&self, user: UserId) -> CostFn {
        Arc::clone(&self.fns[user.index()])
    }

    /// The paper's objective: `Σ_i f_i(misses[i])`. `misses` must have one
    /// entry per user.
    pub fn total_cost(&self, misses: &[u64]) -> f64 {
        assert_eq!(
            misses.len(),
            self.fns.len(),
            "miss vector length must match the number of users"
        );
        misses
            .iter()
            .zip(&self.fns)
            .map(|(&m, f)| f.eval(m as f64))
            .sum()
    }

    /// [`total_cost`](Self::total_cost) with the arithmetic checked:
    /// a non-finite per-user value or a non-finite (overflowed) sum is
    /// returned as a typed [`CostAnomaly`] naming the offending user
    /// instead of silently propagating NaN/∞ into reports.
    pub fn total_cost_checked(&self, misses: &[u64]) -> Result<f64, CostAnomaly> {
        assert_eq!(
            misses.len(),
            self.fns.len(),
            "miss vector length must match the number of users"
        );
        let mut total = 0.0_f64;
        for (u, (&m, f)) in misses.iter().zip(&self.fns).enumerate() {
            let x = m as f64;
            let v = f.eval(x);
            if !v.is_finite() {
                return Err(CostAnomaly {
                    user: Some(u as u32),
                    argument: x,
                    value: v,
                    what: "f_i(m_i)",
                });
            }
            total += v;
        }
        if !total.is_finite() {
            return Err(CostAnomaly {
                user: None,
                argument: misses.len() as f64,
                value: total,
                what: "sum f_i(m_i)",
            });
        }
        Ok(total)
    }

    /// `Σ_i f_i(factor · misses[i])` — the right-hand side of Theorem 1.1
    /// (with `factor = αk`) and Theorem 1.3 (with `factor = αk/(k−h+1)`).
    pub fn total_cost_scaled(&self, misses: &[u64], factor: f64) -> f64 {
        assert_eq!(misses.len(), self.fns.len());
        misses
            .iter()
            .zip(&self.fns)
            .map(|(&m, f)| f.eval(factor * m as f64))
            .sum()
    }

    /// Marginal cost of the next eviction for `user` given `m` evictions
    /// so far, under the chosen marginal mode.
    #[inline]
    pub fn next_eviction_cost(&self, mode: Marginals, user: UserId, m: u64) -> f64 {
        mode.next_eviction_cost(&*self.fns[user.index()], m)
    }

    /// Curvature constant of the profile: `α = sup_{x,i} x f_i'(x)/f_i(x)`
    /// = max over users. `None` if any user's α is unknown/unbounded.
    pub fn alpha(&self) -> Option<f64> {
        self.fns
            .iter()
            .map(|f| f.alpha())
            .try_fold(0.0_f64, |acc, a| a.map(|a| acc.max(a)))
    }

    /// Whether every user's function is convex (i.e. the paper's
    /// guarantees apply).
    pub fn all_convex(&self) -> bool {
        self.fns.iter().all(|f| f.is_convex())
    }

    /// Extend the profile with one extra user (used for the dummy flush
    /// user of §2.1).
    pub fn with_extra_user(&self, f: impl CostFunction + 'static) -> Self {
        let mut fns = self.fns.clone();
        fns.push(Arc::new(f));
        CostProfile { fns }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Linear, Monomial, PiecewiseLinear};
    use super::*;

    #[test]
    fn uniform_profile_shares_one_function() {
        let p = CostProfile::uniform(3, Monomial::power(2.0));
        assert_eq!(p.num_users(), 3);
        assert_eq!(p.total_cost(&[1, 2, 3]), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn heterogeneous_profile() {
        let p = CostProfile::new(vec![
            Arc::new(Linear::new(5.0)) as CostFn,
            Arc::new(Monomial::power(2.0)) as CostFn,
        ]);
        assert_eq!(p.total_cost(&[2, 3]), 10.0 + 9.0);
        assert_eq!(p.user(UserId(0)).deriv(1.0), 5.0);
    }

    #[test]
    fn scaled_cost_is_theorem_rhs() {
        let p = CostProfile::uniform(2, Monomial::power(2.0));
        // Σ f(3·m) with m = (1, 2): 9 + 36.
        assert_eq!(p.total_cost_scaled(&[1, 2], 3.0), 9.0 + 36.0);
    }

    #[test]
    fn profile_alpha_is_max_over_users() {
        let p = CostProfile::new(vec![
            Arc::new(Linear::unit()) as CostFn,
            Arc::new(Monomial::power(3.0)) as CostFn,
            Arc::new(PiecewiseLinear::sla(10.0, 1.0, 20.0)) as CostFn,
        ]);
        assert_eq!(p.alpha(), Some(20.0));
        assert!(p.all_convex());
    }

    #[test]
    fn from_fn_builder() {
        let p = CostProfile::from_fn(3, |i| Arc::new(Linear::new((i + 1) as f64)) as CostFn);
        assert_eq!(p.total_cost(&[1, 1, 1]), 6.0);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_miss_vector_rejected() {
        CostProfile::uniform(2, Linear::unit()).total_cost(&[1]);
    }

    #[test]
    fn with_extra_user_appends() {
        let p = CostProfile::uniform(1, Linear::unit()).with_extra_user(Linear::new(2.0));
        assert_eq!(p.num_users(), 2);
        assert_eq!(p.total_cost(&[1, 1]), 3.0);
    }
}
