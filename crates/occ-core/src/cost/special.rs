//! Special-purpose cost functions: unbounded-curvature, non-convex, and
//! the dummy-user sentinel.

use super::CostFunction;

/// `f(x) = scale·(e^{rate·x} − 1)`: convex and increasing, but with
/// *unbounded* curvature constant (`x f'(x)/f(x) → ∞`), so Theorem 1.1
/// gives no finite guarantee. Used to probe the algorithm beyond the
/// theory's reach (§2.5 notes the algorithm itself needs no convexity).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    scale: f64,
    rate: f64,
}

impl Exponential {
    /// Create `scale·(e^{rate·x} − 1)` with positive parameters.
    pub fn new(scale: f64, rate: f64) -> Self {
        assert!(scale > 0.0 && rate > 0.0);
        Exponential { scale, rate }
    }
}

impl CostFunction for Exponential {
    fn eval(&self, x: f64) -> f64 {
        self.scale * ((self.rate * x).exp() - 1.0)
    }

    fn deriv(&self, x: f64) -> f64 {
        self.scale * self.rate * (self.rate * x).exp()
    }

    fn alpha(&self) -> Option<f64> {
        None // sup x f'(x)/f(x) = ∞
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        format!("{}·(e^({}·x)−1)", self.scale, self.rate)
    }
}

/// A *non-convex* threshold cost: `f(x) = slope·x` for `x ≤ threshold`,
/// jumping by `jump` beyond it (`f(x) = slope·x + jump` for
/// `x > threshold`). Discontinuous, so only the discrete marginal
/// ([`CostFunction::marginal`]) is meaningful; `deriv` returns the slope.
///
/// §2.5: *"the cost functions need not even be continuous; the derivatives
/// in the algorithms can be replaced by their discrete versions."* This
/// type exists to exercise exactly that regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdCost {
    slope: f64,
    threshold: u64,
    jump: f64,
}

impl ThresholdCost {
    /// Create a threshold cost. `slope ≥ 0`, `jump > 0`.
    pub fn new(slope: f64, threshold: u64, jump: f64) -> Self {
        assert!(slope >= 0.0 && jump > 0.0);
        ThresholdCost {
            slope,
            threshold,
            jump,
        }
    }
}

impl CostFunction for ThresholdCost {
    fn eval(&self, x: f64) -> f64 {
        let base = self.slope * x;
        if x > self.threshold as f64 {
            base + self.jump
        } else {
            base
        }
    }

    fn deriv(&self, _x: f64) -> f64 {
        self.slope
    }

    fn marginal(&self, m: u64) -> f64 {
        // The step from m to m+1 crosses the threshold exactly when
        // m == threshold (eval is right-open at the threshold).
        let jump = if m == self.threshold { self.jump } else { 0.0 };
        self.slope + jump
    }

    fn alpha(&self) -> Option<f64> {
        None
    }

    fn is_convex(&self) -> bool {
        false
    }

    fn describe(&self) -> String {
        format!("{}·x + {}·1[x>{}]", self.slope, self.jump, self.threshold)
    }
}

/// Sentinel cost for the paper's dummy flush user (§2.1): a linear cost
/// with an astronomically large weight, so dummy pages are never chosen
/// for eviction while remaining finite (avoiding `∞ − ∞` in budget
/// arithmetic).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct HugeCost;

/// The weight used by [`HugeCost`]. Large enough to dominate any
/// realistic budget, small enough that sums of `k` of them stay finite.
pub const HUGE_WEIGHT: f64 = 1e30;

impl CostFunction for HugeCost {
    fn eval(&self, x: f64) -> f64 {
        HUGE_WEIGHT * x
    }

    fn deriv(&self, _x: f64) -> f64 {
        HUGE_WEIGHT
    }

    fn marginal(&self, _m: u64) -> f64 {
        HUGE_WEIGHT
    }

    fn alpha(&self) -> Option<f64> {
        Some(1.0)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        "dummy(huge)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn exponential_contract() {
        let f = Exponential::new(2.0, 0.5);
        assert!(f.eval(0.0).abs() < 1e-12);
        testutil::check_contract(&f, 10.0);
        testutil::check_derivative(&f, &[0.5, 2.0, 5.0], 1e-4);
        assert_eq!(f.alpha(), None);
        // The curvature ratio really does grow without bound.
        let r = |x: f64| x * f.deriv(x) / f.eval(x);
        assert!(r(20.0) > r(5.0) && r(5.0) > r(1.0));
    }

    #[test]
    fn threshold_marginals() {
        let f = ThresholdCost::new(1.0, 3, 10.0);
        assert_eq!(f.eval(3.0), 3.0);
        assert_eq!(f.eval(4.0), 14.0);
        assert_eq!(f.marginal(2), 1.0);
        assert_eq!(f.marginal(3), 11.0); // crosses the threshold
        assert_eq!(f.marginal(4), 1.0);
        assert!(!f.is_convex());
    }

    #[test]
    fn threshold_eval_matches_marginal_sum() {
        let f = ThresholdCost::new(2.0, 2, 5.0);
        let mut acc = 0.0;
        for m in 0..6u64 {
            acc += f.marginal(m);
            assert!(
                (acc - f.eval((m + 1) as f64)).abs() < 1e-9,
                "prefix-sum of marginals must reproduce eval"
            );
        }
    }

    #[test]
    fn huge_cost_dominates() {
        let f = HugeCost;
        assert!(f.deriv(0.0) > 1e20);
        assert_eq!(f.eval(0.0), 0.0);
        assert!(f.eval(3.0).is_finite());
    }
}
