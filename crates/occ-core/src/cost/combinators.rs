//! Cost-function combinators: scaling and sums.
//!
//! Both preserve the properties the paper needs: a positive scaling leaves
//! the curvature constant unchanged (`x·(c·f)'/(c·f) = x·f'/f`), and a sum
//! of convex functions is convex with `α(f+g) ≤ max(α(f), α(g))` by the
//! mediant inequality — an upper bound, which is the safe direction for
//! every bound in the paper (they all hold for any `α' ≥ α`).

use super::{CostFn, CostFunction};
use std::sync::Arc;

/// `factor · f(x)` for a positive `factor`.
#[derive(Clone, Debug)]
pub struct Scaled {
    inner: CostFn,
    factor: f64,
}

impl Scaled {
    /// Scale `inner` by `factor > 0`.
    pub fn new(inner: CostFn, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Scaled { inner, factor }
    }
}

impl CostFunction for Scaled {
    fn eval(&self, x: f64) -> f64 {
        self.factor * self.inner.eval(x)
    }

    fn deriv(&self, x: f64) -> f64 {
        self.factor * self.inner.deriv(x)
    }

    fn marginal(&self, m: u64) -> f64 {
        self.factor * self.inner.marginal(m)
    }

    fn alpha(&self) -> Option<f64> {
        self.inner.alpha()
    }

    fn is_convex(&self) -> bool {
        self.inner.is_convex()
    }

    fn describe(&self) -> String {
        format!("{}·[{}]", self.factor, self.inner.describe())
    }
}

/// `f(x) + g(x) + …` over one or more parts.
#[derive(Clone, Debug)]
pub struct SumCost {
    parts: Vec<CostFn>,
}

impl SumCost {
    /// Sum of the given parts (at least one).
    pub fn new(parts: Vec<CostFn>) -> Self {
        assert!(!parts.is_empty(), "a sum needs at least one part");
        SumCost { parts }
    }

    /// Convenience for a two-part sum.
    pub fn of(a: impl CostFunction + 'static, b: impl CostFunction + 'static) -> Self {
        SumCost::new(vec![Arc::new(a), Arc::new(b)])
    }
}

impl CostFunction for SumCost {
    fn eval(&self, x: f64) -> f64 {
        self.parts.iter().map(|p| p.eval(x)).sum()
    }

    fn deriv(&self, x: f64) -> f64 {
        self.parts.iter().map(|p| p.deriv(x)).sum()
    }

    fn marginal(&self, m: u64) -> f64 {
        self.parts.iter().map(|p| p.marginal(m)).sum()
    }

    fn alpha(&self) -> Option<f64> {
        // Upper bound: max over parts (mediant inequality). `None` if any
        // part's α is unknown/unbounded.
        self.parts
            .iter()
            .map(|p| p.alpha())
            .try_fold(1.0_f64, |acc, a| a.map(|a| acc.max(a)))
    }

    fn is_convex(&self) -> bool {
        self.parts.iter().all(|p| p.is_convex())
    }

    fn describe(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.describe())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Exponential, Linear, Monomial};
    use super::*;

    #[test]
    fn scaled_preserves_alpha() {
        let f = Scaled::new(Arc::new(Monomial::power(3.0)), 7.0);
        assert_eq!(f.alpha(), Some(3.0));
        assert_eq!(f.eval(2.0), 7.0 * 8.0);
        assert_eq!(f.deriv(2.0), 7.0 * 12.0);
        assert_eq!(f.marginal(1), 7.0 * (8.0 - 1.0));
    }

    #[test]
    fn sum_evaluates_and_bounds_alpha() {
        let f = SumCost::of(Linear::new(2.0), Monomial::power(2.0));
        assert_eq!(f.eval(3.0), 6.0 + 9.0);
        assert_eq!(f.deriv(3.0), 2.0 + 6.0);
        // α(f) ≤ max(1, 2) = 2, and the pointwise ratio respects it.
        let alpha = f.alpha().unwrap();
        assert_eq!(alpha, 2.0);
        for x in [0.5, 1.0, 4.0, 50.0] {
            assert!(x * f.deriv(x) / f.eval(x) <= alpha + 1e-9);
        }
        assert!(f.is_convex());
    }

    #[test]
    fn sum_with_unbounded_part_has_no_alpha() {
        let f = SumCost::of(Linear::unit(), Exponential::new(1.0, 1.0));
        assert_eq!(f.alpha(), None);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_sum_rejected() {
        SumCost::new(vec![]);
    }
}
