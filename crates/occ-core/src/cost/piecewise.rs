//! Convex piecewise-linear costs — the paper's motivating SLA shape.
//!
//! §1.1: *"a user can tolerate up to around M misses in a time window, and
//! any number of misses greater than that will result in substantial
//! degradation in performance. Such scenarios can be captured through,
//! e.g., piecewise-linear, convex cost functions."* These model SLA refund
//! schedules in the SQLVM prototype [14].

use super::CostFunction;

/// A convex piecewise-linear function through the origin.
///
/// Defined by segment slopes `s_0 ≤ s_1 ≤ …` and the breakpoints where the
/// slope changes. `f` is linear with slope `s_j` on `[b_j, b_{j+1})` where
/// `b_0 = 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct PiecewiseLinear {
    /// Breakpoints `b_1 < b_2 < …` (excluding the implicit `b_0 = 0`).
    breaks: Vec<f64>,
    /// `slopes[j]` applies on `[b_j, b_{j+1})`; one more slope than breaks.
    slopes: Vec<f64>,
    /// `values[j] = f(b_j)` for `b_0 = 0, b_1, …` (precomputed prefix).
    values: Vec<f64>,
}

impl PiecewiseLinear {
    /// Build from slopes and breakpoints. `slopes.len()` must equal
    /// `breaks.len() + 1`; breakpoints strictly increasing and positive;
    /// slopes non-negative and non-decreasing (convexity).
    pub fn new(slopes: Vec<f64>, breaks: Vec<f64>) -> Self {
        assert_eq!(
            slopes.len(),
            breaks.len() + 1,
            "need one more slope than breakpoints"
        );
        assert!(
            slopes.windows(2).all(|w| w[0] <= w[1]),
            "slopes must be non-decreasing for convexity"
        );
        assert!(slopes[0] >= 0.0, "slopes must be non-negative");
        assert!(
            breaks.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly increasing"
        );
        assert!(
            breaks.first().is_none_or(|&b| b > 0.0),
            "breakpoints must be positive"
        );
        let mut values = Vec::with_capacity(breaks.len() + 1);
        values.push(0.0);
        let mut prev_b = 0.0;
        let mut v = 0.0;
        for (j, &b) in breaks.iter().enumerate() {
            v += slopes[j] * (b - prev_b);
            values.push(v);
            prev_b = b;
        }
        PiecewiseLinear {
            breaks,
            slopes,
            values,
        }
    }

    /// The SLA shape of §1.1: a gentle `base_slope` up to a tolerance of
    /// `tolerance` misses, then a steep `penalty_slope` beyond it.
    ///
    /// `base_slope` must be positive: with a perfectly flat first segment
    /// the curvature constant `α = sup x f'(x)/f(x)` is unbounded (the
    /// denominator vanishes at the tolerance) and the paper's guarantee is
    /// vacuous — the algorithm still runs, but `alpha()` returns `None`.
    pub fn sla(tolerance: f64, base_slope: f64, penalty_slope: f64) -> Self {
        assert!(tolerance > 0.0);
        assert!(penalty_slope >= base_slope);
        Self::new(vec![base_slope, penalty_slope], vec![tolerance])
    }

    /// Index of the segment containing `x`.
    fn segment(&self, x: f64) -> usize {
        // breaks is sorted; partition_point = number of breaks ≤ x.
        self.breaks.partition_point(|&b| b <= x)
    }

    /// Segment slopes.
    pub fn slopes(&self) -> &[f64] {
        &self.slopes
    }

    /// Breakpoints (excluding the implicit 0).
    pub fn breaks(&self) -> &[f64] {
        &self.breaks
    }
}

impl CostFunction for PiecewiseLinear {
    fn eval(&self, x: f64) -> f64 {
        let j = self.segment(x);
        let b_j = if j == 0 { 0.0 } else { self.breaks[j - 1] };
        self.values[j] + self.slopes[j] * (x - b_j)
    }

    fn deriv(&self, x: f64) -> f64 {
        // Right-derivative: at a breakpoint, the steeper next slope.
        self.slopes[self.segment(x)]
    }

    fn alpha(&self) -> Option<f64> {
        // Within segment j, f(x) = s_j·x + c_j with c_j ≤ 0 by convexity,
        // so x f'/f = s_j x / (s_j x + c_j) is non-increasing in x and the
        // supremum over the segment is attained at the left breakpoint.
        if self.slopes[0] <= 0.0 && self.slopes.len() > 1 {
            return None; // flat start: f(b_1) = 0, ratio unbounded.
        }
        let mut alpha: f64 = 1.0; // segment 0 ratio is identically 1.
        for (j, &b) in self.breaks.iter().enumerate() {
            let f_b = self.values[j + 1];
            if f_b <= 0.0 {
                return None;
            }
            alpha = alpha.max(self.slopes[j + 1] * b / f_b);
        }
        Some(alpha)
    }

    fn is_convex(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        format!("pwl(slopes={:?}, breaks={:?})", self.slopes, self.breaks)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    fn sla() -> PiecewiseLinear {
        // Slope 1 up to 10 misses, slope 20 beyond.
        PiecewiseLinear::sla(10.0, 1.0, 20.0)
    }

    #[test]
    fn eval_across_segments() {
        let f = sla();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(5.0), 5.0);
        assert_eq!(f.eval(10.0), 10.0);
        assert_eq!(f.eval(12.0), 10.0 + 40.0);
        testutil::check_contract(&f, 50.0);
    }

    #[test]
    fn right_derivative_at_breakpoint() {
        let f = sla();
        assert_eq!(f.deriv(9.999), 1.0);
        assert_eq!(f.deriv(10.0), 20.0); // right-derivative
        assert_eq!(f.deriv(11.0), 20.0);
    }

    #[test]
    fn three_segments() {
        let f = PiecewiseLinear::new(vec![1.0, 2.0, 4.0], vec![2.0, 5.0]);
        assert_eq!(f.eval(2.0), 2.0);
        assert_eq!(f.eval(5.0), 2.0 + 6.0);
        assert_eq!(f.eval(6.0), 8.0 + 4.0);
        assert_eq!(f.deriv(3.0), 2.0);
    }

    #[test]
    fn alpha_matches_numeric_sup() {
        let f = sla();
        let alpha = f.alpha().expect("positive base slope ⇒ finite α");
        // Analytic: sup is at x = 10⁺, ratio = 20·10/f(10) = 200/10 = 20.
        assert!((alpha - 20.0).abs() < 1e-9);
        // Pointwise the ratio never exceeds α.
        for i in 1..2000 {
            let x = i as f64 * 0.05;
            let ratio = x * f.deriv(x) / f.eval(x);
            assert!(ratio <= alpha + 1e-9, "ratio {ratio} at x={x}");
        }
    }

    #[test]
    fn flat_start_has_unbounded_alpha() {
        let f = PiecewiseLinear::new(vec![0.0, 5.0], vec![3.0]);
        assert_eq!(f.alpha(), None);
        assert_eq!(f.eval(3.0), 0.0);
        assert_eq!(f.eval(4.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_concave_slopes() {
        PiecewiseLinear::new(vec![2.0, 1.0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "one more slope")]
    fn rejects_mismatched_lengths() {
        PiecewiseLinear::new(vec![1.0], vec![1.0]);
    }

    #[test]
    fn single_segment_is_linear() {
        let f = PiecewiseLinear::new(vec![3.0], vec![]);
        assert_eq!(f.eval(7.0), 21.0);
        assert_eq!(f.alpha(), Some(1.0));
    }
}
