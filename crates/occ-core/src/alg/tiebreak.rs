//! Deterministic tie-breaking between pages with equal budgets.
//!
//! Figure 2 says "let p' be the *first* page in the cache for which … is
//! satisfied": when the continuously rising dual `y_t` hits several
//! budgets simultaneously, the paper leaves the choice unspecified. The
//! choice does not affect the guarantees (any zero-budget page is a valid
//! victim) but must be deterministic for the ALG-CONT ≡ ALG-DISCRETE
//! equivalence tests, and it is an ablation axis (experiment E8).

/// How to break ties between equal-budget eviction candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Prefer the page whose last request is oldest (LRU-like). With
    /// uniform linear costs this makes ALG-DISCRETE *exactly* LRU.
    #[default]
    OldestRequest,
    /// Prefer the smallest page id.
    LowestPage,
    /// Prefer the page owned by the smallest user id, then the oldest
    /// request within that user.
    LowestUser,
}

impl TieBreak {
    /// All variants, for ablation sweeps.
    pub const ALL: [TieBreak; 3] = [
        TieBreak::OldestRequest,
        TieBreak::LowestPage,
        TieBreak::LowestUser,
    ];

    /// Stable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TieBreak::OldestRequest => "oldest-request",
            TieBreak::LowestPage => "lowest-page",
            TieBreak::LowestUser => "lowest-user",
        }
    }
}

/// A candidate victim: budget key plus the tie-breaking attributes.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    /// The comparison key (budget, or budget-equivalent).
    pub key: f64,
    /// Global sequence number of the page's last request (lower = older).
    pub seq: u64,
    /// Page id raw value.
    pub page: u32,
    /// User id raw value.
    pub user: u32,
}

impl Candidate {
    /// Whether `self` beats `other` under `tb`, comparing keys with an
    /// absolute tolerance `eps` (keys within `eps` count as tied).
    pub fn beats(&self, other: &Candidate, tb: TieBreak, eps: f64) -> bool {
        let d = self.key - other.key;
        if d < -eps {
            return true;
        }
        if d > eps {
            return false;
        }
        match tb {
            TieBreak::OldestRequest => (self.seq, self.page) < (other.seq, other.page),
            TieBreak::LowestPage => self.page < other.page,
            TieBreak::LowestUser => {
                (self.user, self.seq, self.page) < (other.user, other.seq, other.page)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(key: f64, seq: u64, page: u32, user: u32) -> Candidate {
        Candidate {
            key,
            seq,
            page,
            user,
        }
    }

    #[test]
    fn strict_key_order_wins_regardless_of_tiebreak() {
        let a = cand(1.0, 99, 9, 9);
        let b = cand(2.0, 0, 0, 0);
        for tb in TieBreak::ALL {
            assert!(a.beats(&b, tb, 0.0));
            assert!(!b.beats(&a, tb, 0.0));
        }
    }

    #[test]
    fn oldest_request_breaks_ties_by_seq() {
        let a = cand(1.0, 5, 9, 1);
        let b = cand(1.0, 3, 1, 0);
        assert!(b.beats(&a, TieBreak::OldestRequest, 0.0));
        assert!(!a.beats(&b, TieBreak::OldestRequest, 0.0));
    }

    #[test]
    fn lowest_page_breaks_ties_by_page() {
        let a = cand(1.0, 5, 2, 1);
        let b = cand(1.0, 3, 7, 0);
        assert!(a.beats(&b, TieBreak::LowestPage, 0.0));
    }

    #[test]
    fn lowest_user_then_recency() {
        let a = cand(1.0, 9, 5, 0);
        let b = cand(1.0, 1, 2, 1);
        assert!(a.beats(&b, TieBreak::LowestUser, 0.0));
        let c = cand(1.0, 1, 2, 0);
        assert!(c.beats(&a, TieBreak::LowestUser, 0.0));
    }

    #[test]
    fn epsilon_tolerance_groups_near_ties() {
        let a = cand(1.0 + 1e-12, 1, 1, 0);
        let b = cand(1.0, 9, 9, 0);
        // Without tolerance b wins on key; with tolerance a wins on seq.
        assert!(b.beats(&a, TieBreak::OldestRequest, 0.0));
        assert!(a.beats(&b, TieBreak::OldestRequest, 1e-9));
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = TieBreak::ALL.iter().map(|t| t.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }
}
