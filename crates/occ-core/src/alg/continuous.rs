//! ALG-CONT (Figure 2): the continuous primal–dual algorithm with its
//! full dual state materialized.
//!
//! The continuous algorithm raises `y_t°` until the first cached page's
//! gradient condition
//! `f'_{i(p')}(m(i(p'), t−1)+1) − Σ y° + z°(p', j) = 0` becomes tight,
//! then evicts that page. All continuous raises collapse to one discrete
//! amount per eviction — exactly the victim's remaining budget — which is
//! why ALG-DISCRETE implements it (§2.5). This runner executes those
//! discrete amounts while recording the entire primal solution `x°(p, j)`,
//! dual solution `(y°, z°)` and the eviction timestamps `s(p, j)`, so the
//! §2.3 invariants can be checked *ex post* by
//! [`crate::cp::invariants`].
//!
//! Complexity is `O(T · (k + |P|))` — this is a reference implementation
//! for validation, not the production policy.

use crate::alg::tiebreak::{Candidate, TieBreak};
use crate::cost::{CostProfile, Marginals};
use occ_sim::{CacheSet, PageId, SimStats, Time, Trace, UserId};
use std::collections::BTreeSet;

/// The complete primal–dual trajectory of one ALG-CONT run.
#[derive(Clone, Debug)]
pub struct PrimalDualState {
    /// `x[p][j-1]`: was page `p` evicted during its `j`-th interval?
    pub x: Vec<Vec<bool>>,
    /// `z[p][j-1]`: dual variable of the `x(p,j) ≤ 1` constraint.
    pub z: Vec<Vec<f64>>,
    /// `set_at[p][j-1]`: time at which `x(p,j)` was set to 1 (the paper's
    /// `s(p, j)`), if it was.
    pub set_at: Vec<Vec<Option<Time>>>,
    /// `m_at_eviction[p][j-1]`: the victim owner's eviction count `m(i(p), ŝ)`
    /// *including* this eviction, recorded at `s(p, j)`.
    pub m_at_eviction: Vec<Vec<Option<u64>>>,
    /// `y[t]`: dual variable of the time-`t` covering constraint.
    pub y: Vec<f64>,
    /// Final per-user eviction counts `m(i, T)`.
    pub final_m: Vec<u64>,
}

impl PrimalDualState {
    /// Total number of `(p, j)` interval variables.
    pub fn num_vars(&self) -> usize {
        self.x.iter().map(Vec::len).sum()
    }

    /// Sum of all dual `y` mass.
    pub fn total_y(&self) -> f64 {
        self.y.iter().sum()
    }
}

/// Result of running ALG-CONT over a trace.
#[derive(Clone, Debug)]
pub struct ContinuousRun {
    /// Per-user hit/miss/eviction counters (identical semantics to the
    /// engine's).
    pub stats: SimStats,
    /// The recorded primal–dual trajectory.
    pub state: PrimalDualState,
    /// `(t, victim)` pairs, for equivalence tests against ALG-DISCRETE.
    pub eviction_sequence: Vec<(Time, PageId)>,
}

/// Run ALG-CONT over `trace` with cache size `k`.
///
/// `costs` must cover every user of the trace's universe. Use
/// [`crate::flush::with_dummy_flush`] first if the run will feed the
/// gradient-condition invariant (3a), which the paper proves under the
/// dummy-user flush convention.
pub fn run_continuous(
    trace: &Trace,
    k: usize,
    costs: &CostProfile,
    mode: Marginals,
    tiebreak: TieBreak,
) -> ContinuousRun {
    let universe = trace.universe();
    let num_pages = universe.num_pages() as usize;
    let num_users = universe.num_users() as usize;
    assert!(k > 0, "cache size must be positive");
    assert!(
        costs.num_users() as usize >= num_users,
        "cost profile covers {} users, trace has {num_users}",
        costs.num_users()
    );

    let mut cache = CacheSet::new(k, universe.num_pages());
    let mut stats = SimStats::new(universe.num_users());
    let mut x: Vec<Vec<bool>> = vec![Vec::new(); num_pages];
    let mut z: Vec<Vec<f64>> = vec![Vec::new(); num_pages];
    let mut set_at: Vec<Vec<Option<Time>>> = vec![Vec::new(); num_pages];
    let mut m_at_eviction: Vec<Vec<Option<u64>>> = vec![Vec::new(); num_pages];
    let mut y: Vec<f64> = vec![0.0; trace.len()];
    let mut m: Vec<u64> = vec![0; num_users];

    // Per-page bookkeeping for the open interval.
    let mut occ: Vec<u32> = vec![0; num_pages]; // requests seen so far
    let mut acc_y: Vec<f64> = vec![0.0; num_pages]; // Σ y inside open interval
    let mut last_seq: Vec<u64> = vec![0; num_pages];
    let mut seq: u64 = 0;
    // Pages evicted since their last request (their current interval has
    // x = 1); these accumulate z, not interval-y.
    let mut outside: BTreeSet<u32> = BTreeSet::new();
    let mut evictions: Vec<(Time, PageId)> = Vec::new();

    for (t, req) in trace.iter() {
        let p = req.page;
        let pi = p.index();

        if cache.contains(p) {
            // Hit: close interval occ[p], open interval occ[p]+1.
            stats.record_hit(req.user);
            occ[pi] += 1;
            open_interval(pi, &mut x, &mut z, &mut set_at, &mut m_at_eviction);
            acc_y[pi] = 0.0;
            seq += 1;
            last_seq[pi] = seq;
            continue;
        }

        // Miss. If the page was seen before it is currently "outside".
        stats.record_miss(req.user);
        if occ[pi] > 0 {
            let removed = outside.remove(&p.0);
            debug_assert!(removed, "a previously seen uncached page must be outside");
        }
        occ[pi] += 1;
        open_interval(pi, &mut x, &mut z, &mut set_at, &mut m_at_eviction);
        acc_y[pi] = 0.0;
        seq += 1;
        last_seq[pi] = seq;

        if !cache.is_full() {
            cache.insert(p);
            continue;
        }

        // Full cache: raise y_t° until the smallest budget hits zero.
        let mut best: Option<Candidate> = None;
        for q in cache.iter() {
            let qu = universe.owner(q);
            let g = costs.next_eviction_cost(mode, qu, m[qu.index()]);
            let cand = Candidate {
                key: g - acc_y[q.index()],
                seq: last_seq[q.index()],
                page: q.0,
                user: qu.0,
            };
            if best.is_none_or(|b| cand.beats(&b, tiebreak, 0.0)) {
                best = Some(cand);
            }
        }
        let victim = best.expect("cache is full");
        let y_t = victim.key; // the victim's remaining budget
        y[t as usize] = y_t;

        // Every other cached page accumulates y_t inside its open interval.
        for q in cache.iter() {
            if q.0 != victim.page {
                acc_y[q.index()] += y_t;
            }
        }
        // Every page outside the cache (except p_t, which is being brought
        // in) accumulates z on its closed interval.
        for &q in &outside {
            let j = occ[q as usize] as usize; // current interval index
            z[q as usize][j - 1] += y_t;
        }

        // Evict the victim: set x°(victim, j) = 1.
        let vi = victim.page as usize;
        let vj = occ[vi] as usize;
        x[vi][vj - 1] = true;
        set_at[vi][vj - 1] = Some(t);
        let vu = victim.user as usize;
        m[vu] += 1;
        m_at_eviction[vi][vj - 1] = Some(m[vu]);
        stats.record_eviction(UserId(victim.user));
        cache.remove(PageId(victim.page));
        outside.insert(victim.page);
        evictions.push((t, PageId(victim.page)));

        cache.insert(p);
    }

    ContinuousRun {
        stats,
        state: PrimalDualState {
            x,
            z,
            set_at,
            m_at_eviction,
            y,
            final_m: m,
        },
        eviction_sequence: evictions,
    }
}

/// Append a fresh interval's variables for page `pi`.
fn open_interval(
    pi: usize,
    x: &mut [Vec<bool>],
    z: &mut [Vec<f64>],
    set_at: &mut [Vec<Option<Time>>],
    m_at_eviction: &mut [Vec<Option<u64>>],
) {
    x[pi].push(false);
    z[pi].push(0.0);
    set_at[pi].push(None);
    m_at_eviction[pi].push(None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::discrete::ConvexCaching;
    use crate::cost::{CostFn, Linear, Monomial, PiecewiseLinear};
    use occ_sim::{ReplacementPolicy, Simulator, Universe};
    use std::sync::Arc;

    fn pseudo_pages(len: usize, universe_pages: u32, seed: u64) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % universe_pages as u64) as u32
            })
            .collect()
    }

    fn discrete_evictions<P: ReplacementPolicy>(
        p: &mut P,
        trace: &Trace,
        k: usize,
    ) -> Vec<(Time, PageId)> {
        Simulator::new(k)
            .record_events(true)
            .run(p, trace)
            .events
            .unwrap()
            .eviction_sequence()
    }

    #[test]
    fn continuous_equals_discrete_quadratic() {
        let u = Universe::uniform(2, 4);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(400, 8, 3));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let cont = run_continuous(
            &trace,
            3,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let mut disc = ConvexCaching::new(costs);
        assert_eq!(
            cont.eviction_sequence,
            discrete_evictions(&mut disc, &trace, 3)
        );
    }

    #[test]
    fn continuous_equals_discrete_heterogeneous() {
        let u = Universe::with_sizes(&[2, 3, 3]);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(500, 8, 11));
        let costs = CostProfile::new(vec![
            Arc::new(Linear::new(3.0)) as CostFn,
            Arc::new(Monomial::power(2.0)) as CostFn,
            Arc::new(PiecewiseLinear::sla(4.0, 1.0, 8.0)) as CostFn,
        ]);
        for k in [2, 5] {
            let cont = run_continuous(
                &trace,
                k,
                &costs,
                Marginals::Derivative,
                TieBreak::OldestRequest,
            );
            let mut disc = ConvexCaching::new(costs.clone());
            assert_eq!(
                cont.eviction_sequence,
                discrete_evictions(&mut disc, &trace, k),
                "divergence at k={k}"
            );
        }
    }

    #[test]
    fn dual_y_is_nonnegative_and_charged_only_on_evictions() {
        let u = Universe::uniform(2, 3);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(200, 6, 17));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let run = run_continuous(
            &trace,
            2,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let eviction_times: std::collections::BTreeSet<u64> =
            run.eviction_sequence.iter().map(|&(t, _)| t).collect();
        for (t, &yt) in run.state.y.iter().enumerate() {
            assert!(yt >= 0.0, "y[{t}] = {yt} negative");
            if yt > 0.0 {
                assert!(
                    eviction_times.contains(&(t as u64)),
                    "positive y at non-eviction time {t}"
                );
            }
        }
        assert!(run.state.total_y() > 0.0);
    }

    #[test]
    fn z_positive_only_on_evicted_intervals() {
        // Complementary slackness (2a): z(p,j) > 0 ⇒ x(p,j) = 1.
        let u = Universe::uniform(2, 4);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(300, 8, 23));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let run = run_continuous(
            &trace,
            3,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        for (p, zs) in run.state.z.iter().enumerate() {
            for (j, &zv) in zs.iter().enumerate() {
                assert!(zv >= 0.0);
                if zv > 0.0 {
                    assert!(run.state.x[p][j], "z(p{p},{}) = {zv} > 0 but x = 0", j + 1);
                }
            }
        }
    }

    #[test]
    fn stats_match_engine_semantics() {
        let u = Universe::uniform(2, 3);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(150, 6, 31));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let cont = run_continuous(
            &trace,
            2,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let mut disc = ConvexCaching::new(costs);
        let r = Simulator::new(2).run(&mut disc, &trace);
        assert_eq!(cont.stats.miss_vector(), r.stats.miss_vector());
        assert_eq!(cont.stats.eviction_vector(), r.stats.eviction_vector());
        assert_eq!(cont.stats.total_hits(), r.stats.total_hits());
    }

    #[test]
    fn interval_variable_counts_match_request_counts() {
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 3, 1, 0]);
        let costs = CostProfile::uniform(1, Linear::unit());
        let run = run_continuous(
            &trace,
            2,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let idx = trace.index();
        for p in 0..4u32 {
            assert_eq!(
                run.state.x[p as usize].len() as u32,
                idx.total_requests(PageId(p)),
                "one interval variable per request of p{p}"
            );
        }
        assert_eq!(run.state.num_vars(), trace.len());
    }
}
