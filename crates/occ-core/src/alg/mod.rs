//! The paper's online algorithm in three forms.
//!
//! * [`ConvexCaching`] — the production implementation of ALG-DISCRETE
//!   (Figure 3), with the two `O(k)` per-eviction update rules collapsed
//!   into closed form so each request costs `O(n)` in the worst case
//!   (`n` = number of users) and `O(1)` on hits.
//! * [`DiscreteReference`] — a literal transcription of Figure 3 that
//!   pays the `O(k)` updates; exists to validate `ConvexCaching` against.
//! * [`continuous::run_continuous`] — ALG-CONT (Figure 2) with the full
//!   primal–dual state `(x°, y°, z°)` materialized, feeding the §2.3
//!   invariant checker.
//!
//! All three produce identical eviction sequences on the same input
//! (tested exhaustively and property-based), which is the paper's claim
//! that ALG-DISCRETE implements ALG-CONT.

pub mod continuous;
pub mod discrete;
pub mod reference;
pub mod tiebreak;

pub use continuous::{run_continuous, ContinuousRun, PrimalDualState};
pub use discrete::ConvexCaching;
pub use reference::DiscreteReference;
pub use tiebreak::TieBreak;
