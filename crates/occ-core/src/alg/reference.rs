//! `DiscreteReference` — a literal transcription of Figure 3.
//!
//! Budgets are stored explicitly per cached page and both `O(k)` update
//! sweeps are executed exactly as written in the paper:
//!
//! * on eviction of `p`: `B(p') ← B(p') − B(p)` for every cached
//!   `p' ∉ {p, p_t}`;
//! * then `B(p') ← B(p') + g_u(m+1) − g_u(m)` for every cached page of the
//!   evicted page's user `u`.
//!
//! This implementation exists purely as an oracle: `occ-core`'s tests and
//! the E5 experiment assert that [`ConvexCaching`](super::ConvexCaching)
//! produces the identical eviction sequence while doing none of the
//! sweeps. Victim selection uses the same two-level rule (per-user best by
//! `(budget, seq, page)`, across users by [`TieBreak`]) so the two
//! implementations are comparable decision-for-decision.

use crate::alg::tiebreak::{Candidate, TieBreak};
use crate::cost::{CostProfile, Marginals};
use occ_sim::{EngineCtx, PageId, ReplacementPolicy, UserId};

/// Literal Figure 3 implementation (`O(k)` per eviction).
#[derive(Debug)]
pub struct DiscreteReference {
    costs: CostProfile,
    mode: Marginals,
    tiebreak: TieBreak,
    ready: bool,
    seq: u64,
    /// Explicit budget per page (meaningful only while cached).
    budget: Vec<f64>,
    /// Sequence number of each page's last request.
    last_seq: Vec<u64>,
    /// Per-user eviction counts `m(u, t)`.
    m: Vec<u64>,
}

impl DiscreteReference {
    /// Create the reference policy.
    pub fn new(costs: CostProfile) -> Self {
        DiscreteReference {
            costs,
            mode: Marginals::Derivative,
            tiebreak: TieBreak::OldestRequest,
            ready: false,
            seq: 0,
            budget: Vec::new(),
            last_seq: Vec::new(),
            m: Vec::new(),
        }
    }

    /// Use discrete marginals instead of derivatives (§2.5).
    pub fn with_marginals(mut self, mode: Marginals) -> Self {
        self.mode = mode;
        self
    }

    /// Select the tie-breaking rule.
    pub fn with_tiebreak(mut self, tb: TieBreak) -> Self {
        self.tiebreak = tb;
        self
    }

    fn ensure_ready(&mut self, ctx: &EngineCtx) {
        if self.ready {
            return;
        }
        self.budget = vec![0.0; ctx.universe.num_pages() as usize];
        self.last_seq = vec![0; ctx.universe.num_pages() as usize];
        self.m = vec![0; ctx.universe.num_users() as usize];
        self.ready = true;
    }

    /// Figure 3's request update: `B(p_t) ← g_u(m(u, t-1))` (with the
    /// same-user correction already folded in when the eviction preceded
    /// this insert — see the module docs of [`super::discrete`]).
    fn refresh_budget(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure_ready(ctx);
        let user = ctx.universe.owner(page);
        self.seq += 1;
        self.last_seq[page.index()] = self.seq;
        self.budget[page.index()] =
            self.costs
                .next_eviction_cost(self.mode, user, self.m[user.index()]);
    }
}

impl ReplacementPolicy for DiscreteReference {
    fn name(&self) -> String {
        format!("convex-caching-reference({:?})", self.mode)
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.refresh_budget(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.refresh_budget(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        self.ensure_ready(ctx);
        // Two-level selection identical to ConvexCaching: best candidate
        // per user by (budget, seq, page), then across users by tie-break.
        let num_users = ctx.universe.num_users() as usize;
        let mut per_user: Vec<Option<Candidate>> = vec![None; num_users];
        for page in ctx.cache.iter() {
            let user = ctx.universe.owner(page);
            let cand = Candidate {
                key: self.budget[page.index()],
                seq: self.last_seq[page.index()],
                page: page.0,
                user: user.0,
            };
            let slot = &mut per_user[user.index()];
            let better = match slot {
                None => true,
                Some(b) => {
                    (cand.key, cand.seq, cand.page).partial_cmp(&(b.key, b.seq, b.page))
                        == Some(std::cmp::Ordering::Less)
                }
            };
            if better {
                *slot = Some(cand);
            }
        }
        let mut best: Option<Candidate> = None;
        for cand in per_user.into_iter().flatten() {
            if best.is_none_or(|b| cand.beats(&b, self.tiebreak, 0.0)) {
                best = Some(cand);
            }
        }
        let victim = best.expect("full cache implies a candidate");
        let b_victim = victim.key;
        let victim_user = victim.user as usize;

        // Sweep 1: everyone else pays the dual raise y_t = B(victim).
        for page in ctx.cache.iter() {
            if page.0 != victim.page {
                self.budget[page.index()] -= b_victim;
            }
        }
        // The user's miss count grows: m(u, t) = m(u, t-1) + 1.
        let g_old =
            self.costs
                .next_eviction_cost(self.mode, UserId(victim.user), self.m[victim_user]);
        self.m[victim_user] += 1;
        let g_new =
            self.costs
                .next_eviction_cost(self.mode, UserId(victim.user), self.m[victim_user]);
        // Sweep 2: same-user pages' marginal eviction cost increased.
        for page in ctx.cache.iter() {
            if page.0 != victim.page && ctx.universe.owner(page).0 == victim.user {
                self.budget[page.index()] += g_new - g_old;
            }
        }
        PageId(victim.page)
    }

    fn reset(&mut self) {
        self.ready = false;
        self.seq = 0;
        self.budget.clear();
        self.last_seq.clear();
        self.m.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::super::discrete::ConvexCaching;
    use super::*;
    use crate::cost::{CostFn, Linear, Monomial, PiecewiseLinear};
    use occ_sim::{Simulator, Trace, Universe};
    use std::sync::Arc;

    fn eviction_seq<P: ReplacementPolicy>(
        policy: &mut P,
        trace: &Trace,
        k: usize,
    ) -> Vec<(u64, u32)> {
        let r = Simulator::new(k).record_events(true).run(policy, trace);
        r.events
            .unwrap()
            .eviction_sequence()
            .iter()
            .map(|&(t, p)| (t, p.0))
            .collect()
    }

    /// Deterministic pseudo-random page sequence (no rand dependency in
    /// unit tests; integer-slope costs keep all float math exact).
    fn pseudo_pages(len: usize, universe_pages: u32, seed: u64) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % universe_pages as u64) as u32
            })
            .collect()
    }

    #[test]
    fn reference_equals_fast_uniform_quadratic() {
        let u = Universe::uniform(2, 4);
        let pages = pseudo_pages(400, 8, 42);
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let mut fast = ConvexCaching::new(costs.clone());
        let mut slow = DiscreteReference::new(costs);
        assert_eq!(
            eviction_seq(&mut fast, &trace, 3),
            eviction_seq(&mut slow, &trace, 3)
        );
    }

    #[test]
    fn reference_equals_fast_heterogeneous_costs() {
        let u = Universe::with_sizes(&[3, 2, 4]);
        let pages = pseudo_pages(600, 9, 7);
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::new(vec![
            Arc::new(Linear::new(2.0)) as CostFn,
            Arc::new(Monomial::power(2.0)) as CostFn,
            Arc::new(PiecewiseLinear::sla(5.0, 1.0, 16.0)) as CostFn,
        ]);
        for k in [2, 4, 6] {
            let mut fast = ConvexCaching::new(costs.clone());
            let mut slow = DiscreteReference::new(costs.clone());
            assert_eq!(
                eviction_seq(&mut fast, &trace, k),
                eviction_seq(&mut slow, &trace, k),
                "divergence at k={k}"
            );
        }
    }

    #[test]
    fn reference_equals_fast_discrete_marginals() {
        let u = Universe::uniform(2, 3);
        let pages = pseudo_pages(300, 6, 99);
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::uniform(2, Monomial::power(3.0));
        let mut fast = ConvexCaching::new(costs.clone()).with_marginals(Marginals::Discrete);
        let mut slow = DiscreteReference::new(costs).with_marginals(Marginals::Discrete);
        assert_eq!(
            eviction_seq(&mut fast, &trace, 4),
            eviction_seq(&mut slow, &trace, 4)
        );
    }

    #[test]
    fn reference_equals_slow_path_non_convex() {
        // A non-convex threshold cost disables the intrusive-list fast
        // path (its marginal jumps at the threshold and then drops back,
        // so the dual offset is not monotone); the BTreeSet fallback must
        // still match the literal Figure 3 sweeps decision-for-decision.
        use crate::cost::ThresholdCost;
        let u = Universe::uniform(2, 4);
        let pages = pseudo_pages(500, 8, 13);
        let trace = Trace::from_page_indices(&u, &pages);
        let costs = CostProfile::new(vec![
            Arc::new(ThresholdCost::new(1.0, 3, 10.0)) as CostFn,
            Arc::new(Linear::new(2.0)) as CostFn,
        ]);
        assert!(!costs.all_convex());
        for k in [2, 3, 5] {
            let mut fast = ConvexCaching::new(costs.clone()).with_marginals(Marginals::Discrete);
            assert!(!fast.uses_fast_path(), "non-convex profile must fall back");
            let mut slow =
                DiscreteReference::new(costs.clone()).with_marginals(Marginals::Discrete);
            assert_eq!(
                eviction_seq(&mut fast, &trace, k),
                eviction_seq(&mut slow, &trace, k),
                "divergence at k={k}"
            );
        }
    }

    #[test]
    fn all_tiebreaks_agree_between_implementations() {
        let u = Universe::uniform(3, 2);
        let pages = pseudo_pages(250, 6, 5);
        let trace = Trace::from_page_indices(&u, &pages);
        // Uniform linear costs generate many exact budget ties.
        let costs = CostProfile::uniform(3, Linear::unit());
        for tb in TieBreak::ALL {
            let mut fast = ConvexCaching::new(costs.clone()).with_tiebreak(tb);
            let mut slow = DiscreteReference::new(costs.clone()).with_tiebreak(tb);
            assert_eq!(
                eviction_seq(&mut fast, &trace, 3),
                eviction_seq(&mut slow, &trace, 3),
                "divergence under {:?}",
                tb
            );
        }
    }
}
