//! `ConvexCaching` — the efficient implementation of ALG-DISCRETE
//! (Figure 3 of the paper).
//!
//! # From Figure 3 to closed form
//!
//! Figure 3 maintains a budget `B(p)` per cached page and, on every
//! eviction of a page `p` owned by user `u`, performs two `O(k)` sweeps:
//!
//! 1. `B(p') ← B(p') − B(p)` for every other cached page `p'` (the dual
//!    variable `y_t` rises by `B(p)`), and
//! 2. `B(p') ← B(p') + f'_u(m+2) − f'_u(m+1)` for every cached page of the
//!    same user `u` (the user's marginal eviction cost just grew).
//!
//! Both sweeps collapse: rule 1 is a global offset `Y = Σ_t y_t` (subtract
//! lazily), and rule 2 *telescopes* over a user's successive evictions, so
//! at any moment
//!
//! ```text
//! B(p) = g_u(m_u) − (Y − Y_p)
//! ```
//!
//! where `g_u(m) = f'_u(m+1)` (or the discrete marginal, §2.5), `m_u` is
//! user `u`'s current eviction count, and `Y_p` is the value of the global
//! offset at `p`'s most recent request. The eviction victim is therefore
//! `argmin_p [g_u(m_u) + Y_p]`, and the new offset is exactly that
//! minimum key (`Y ← Y + B(victim)`).
//!
//! Within one user the `g` term is common, so the per-user minimum is the
//! page with the smallest `Y_p`. Each eviction then does an `O(n)` scan
//! across users (`n` = number of users, typically ≪ `k`).
//!
//! # The `O(1)` convex fast path
//!
//! For *convex* costs the keys `g_u(m_u) + Y_p` only grow, budgets stay
//! non-negative and `Y` is non-decreasing — the dual feasibility the
//! analysis needs (asserted in debug builds, exposed via
//! [`ConvexCaching::diagnostics`]). Monotone `Y` has a structural
//! consequence: the `Y_p` recorded at successive touches of one user's
//! pages are non-decreasing in touch order, so ordering a user's cached
//! pages by `(Y_p, seq)` is *identical* to ordering them by touch
//! recency. The per-user minimum is simply the least-recently-touched
//! page — maintained in an intrusive doubly-linked list
//! ([`occ_sim::PageLists`], one shared arena for all users since each
//! page has one owner) at `O(1)` per request with no allocation, instead
//! of `O(log k)` in an ordered set.
//!
//! This holds in floating point, not just in exact arithmetic: `Y` is
//! always set to the minimum key, every surviving key is `≥` that
//! minimum, and both touches (`key = g + Y`, `g ≥ 0`) and marginal
//! growth (`g` non-decreasing in `m` — convexity) move keys upward under
//! monotone rounding. The fast path is selected at construction iff
//! [`CostProfile::all_convex`] holds.
//!
//! For non-convex costs (allowed per §2.5, no guarantee) `Y` can
//! decrease, a later touch can record a *smaller* `Y_p`, and recency
//! order no longer agrees with key order. The policy then falls back to
//! the original per-user `BTreeSet` keyed by `(Y_p, seq, page)`, which
//! stays correct because it orders by `Y_p` directly rather than relying
//! on insertion order. Equivalence of both paths against the literal
//! Figure 3 transcription is enforced by `DiscreteReference` property
//! tests.
//!
//! # The per-user arena
//!
//! The eviction scan is `O(n)` over users, and the marginal
//! `g_u(m_u) = f'_u(m_u + 1)` depends only on `(u, m_u)` — yet the naive
//! scan re-evaluates it through an `Arc<dyn CostFunction>` for every
//! user on every eviction, which is `n` virtual calls (plus `exp`/`ln`
//! for monomial costs) per victim and is exactly what halves
//! multi-tenant throughput. All per-user dual bookkeeping therefore
//! lives in one contiguous arena (`UserLane`, one `Vec` indexed by
//! user id): the eviction count `m_u` next to the **memoized, already
//! NaN-clamped** marginal `g_u(m_u)`. The marginal is recomputed only
//! when a user's `m` changes (once per eviction, for the victim's owner
//! — and once per user at startup/restore), so the scan reads one
//! 16-byte lane per user and does pure float compares. Decisions are
//! bit-identical to recomputation: the marginal is a pure function of
//! `(mode, u, m)` and the clamp commutes with memoization.

use crate::alg::tiebreak::{Candidate, TieBreak};
use crate::cost::{CostProfile, Marginals};
use occ_sim::{
    prefetch_slice_element, CostAnomaly, EngineCtx, PageId, PageLists, PolicyState,
    ReplacementPolicy, SnapshotError, UserId,
};
use std::collections::BTreeSet;

/// Totally ordered `f64` key (never NaN in this module).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Key(f64);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Offset magnitude beyond which stored `Y_p` values are rebased to keep
/// float resolution (budgets are differences of same-magnitude keys).
const RENORMALIZE_AT: f64 = 1e13;

/// Runtime diagnostics exposed for tests and experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgDiagnostics {
    /// Smallest eviction budget (`y_t`) charged so far. Non-negative for
    /// convex costs — dual feasibility.
    pub min_budget: f64,
    /// Total evictions performed.
    pub evictions: u64,
    /// Current global dual offset `Y = Σ y_t`.
    pub global_y: f64,
    /// How many times the offset was rebased.
    pub renormalizations: u64,
    /// NaN marginals encountered and clamped to `+∞` while
    /// (re)computing a user's memoized marginal (a pathological cost
    /// function; nonzero means the victim choice degraded to "avoid
    /// that user" rather than crashing).
    pub nan_marginals: u64,
}

/// One lane of the contiguous per-user arena: all dual bookkeeping the
/// eviction scan needs for one user, packed so the `O(n)` victim scan
/// touches a single sequential allocation.
#[derive(Clone, Copy, Debug)]
struct UserLane {
    /// Eviction count `m(u, t)`.
    m: u64,
    /// Memoized marginal `g_u(m)`, already NaN-clamped to `+∞`.
    /// Invariant: equals `clamp(next_eviction_cost(mode, u, m))` for the
    /// lane's current `m` — recomputed exactly when `m` changes.
    g: f64,
}

/// The paper's cost-aware online replacement policy (ALG-DISCRETE).
#[derive(Debug)]
pub struct ConvexCaching {
    costs: CostProfile,
    mode: Marginals,
    tiebreak: TieBreak,
    // --- state, lazily sized on first use ---
    ready: bool,
    global_y: f64,
    /// Total offset removed by renormalizations, so
    /// [`Self::cumulative_dual_offset`] reports the monotone dual
    /// trajectory `Σ_t y_t` regardless of rebasing.
    y_shifted: f64,
    seq: u64,
    /// The per-user arena: eviction count and memoized marginal per
    /// user, one contiguous allocation indexed by user id.
    users: Vec<UserLane>,
    /// Per-page: global offset at the page's last request.
    y_at: Vec<f64>,
    /// Per-page: sequence number of the page's last request.
    last_seq: Vec<u64>,
    /// Whether the `O(1)` convex fast path is active (decided at
    /// construction from [`CostProfile::all_convex`]).
    fast: bool,
    /// Fast path: per-user intrusive recency lists over one shared arena.
    /// Touch order equals `(Y_p, seq)` order when `Y` is monotone.
    lists: PageLists,
    /// Slow path (non-convex costs): per-user ordered set of cached
    /// pages, `(Y_p, seq, page)`.
    sets: Vec<BTreeSet<(Key, u64, u32)>>,
    diag: AlgDiagnostics,
}

impl ConvexCaching {
    /// Create the policy for the given per-user cost profile, using the
    /// analytic derivative marginals and LRU-like tie-breaking (the
    /// paper's defaults).
    pub fn new(costs: CostProfile) -> Self {
        let fast = costs.all_convex();
        ConvexCaching {
            costs,
            mode: Marginals::Derivative,
            tiebreak: TieBreak::OldestRequest,
            ready: false,
            global_y: 0.0,
            y_shifted: 0.0,
            seq: 0,
            users: Vec::new(),
            y_at: Vec::new(),
            last_seq: Vec::new(),
            fast,
            lists: PageLists::new(),
            sets: Vec::new(),
            diag: AlgDiagnostics {
                min_budget: f64::INFINITY,
                ..Default::default()
            },
        }
    }

    /// Use discrete marginals `f(m+1) − f(m)` instead of derivatives
    /// (§2.5; required for discontinuous cost functions).
    pub fn with_marginals(mut self, mode: Marginals) -> Self {
        self.mode = mode;
        self
    }

    /// Select the tie-breaking rule (ablation axis E8).
    pub fn with_tiebreak(mut self, tb: TieBreak) -> Self {
        self.tiebreak = tb;
        self
    }

    /// Runtime diagnostics (dual feasibility, eviction count, offset).
    pub fn diagnostics(&self) -> AlgDiagnostics {
        let mut d = self.diag;
        d.global_y = self.cumulative_dual_offset();
        d
    }

    /// The cumulative dual offset `Y = Σ_t y_t`: the monotone (for
    /// convex costs) dual trajectory of Figure 3, unaffected by internal
    /// float rebasing. This is the quantity `occ-probe`'s `DualTrace`
    /// samples per epoch.
    pub fn cumulative_dual_offset(&self) -> f64 {
        self.y_shifted + self.global_y
    }

    /// Per-user eviction counts `m(·, t)` so far, indexed by user id —
    /// empty until the first request arrives (state is lazily sized).
    /// Returned owned: the counts live interleaved with the memoized
    /// marginals in the per-user arena, not as a standalone slice.
    pub fn eviction_counts(&self) -> Vec<u64> {
        self.users.iter().map(|lane| lane.m).collect()
    }

    /// The cost profile this policy optimizes against.
    pub fn costs(&self) -> &CostProfile {
        &self.costs
    }

    /// The running primal objective under eviction accounting:
    /// `Σ_i f_i(m_i)` with `m_i` the per-user eviction counts so far.
    /// After a run with the §2.1 flush this equals the paper's total
    /// cost `Σ_i f_i(a_i)` exactly.
    pub fn primal_cost(&self) -> f64 {
        self.users
            .iter()
            .enumerate()
            .map(|(u, lane)| self.costs.user(UserId(u as u32)).eval(lane.m as f64))
            .sum()
    }

    /// [`primal_cost`](Self::primal_cost) with the arithmetic checked: a
    /// non-finite per-user cost or sum is a typed [`CostAnomaly`].
    pub fn primal_cost_checked(&self) -> Result<f64, CostAnomaly> {
        // The arena covers the universe's users, which may be fewer than
        // the profile covers; the missing users have zero evictions.
        let mut misses = self.eviction_counts();
        misses.resize(self.costs.num_users() as usize, 0);
        self.costs.total_cost_checked(&misses)
    }

    /// Whether the `O(1)` intrusive-list fast path is active (true iff
    /// every cost function in the profile is convex).
    pub fn uses_fast_path(&self) -> bool {
        self.fast
    }

    /// Current eviction count of a user (the algorithm's `m(u, t)`).
    pub fn eviction_count(&self, user: UserId) -> u64 {
        self.users.get(user.index()).map(|lane| lane.m).unwrap_or(0)
    }

    /// Compute `g_u(m)` with the NaN→`+∞` clamp, counting clamps in the
    /// diagnostics. Called exactly when a lane's `m` changes (and once
    /// per user at startup), never during the eviction scan itself.
    fn clamped_marginal(&mut self, u: usize, m: u64) -> f64 {
        let g = self
            .costs
            .next_eviction_cost(self.mode, UserId(u as u32), m);
        if g.is_nan() {
            // A pathological cost function. +∞ is the graceful reading:
            // an unknowable marginal makes the user's pages the *last*
            // resort, and the run keeps going.
            self.diag.nan_marginals = self.diag.nan_marginals.saturating_add(1);
            f64::INFINITY
        } else {
            g
        }
    }

    fn ensure_ready(&mut self, ctx: &EngineCtx) {
        if self.ready {
            return;
        }
        let users = ctx.universe.num_users() as usize;
        let pages = ctx.universe.num_pages() as usize;
        assert!(
            self.costs.num_users() as usize >= users,
            "cost profile covers {} users but the universe has {users}",
            self.costs.num_users()
        );
        self.users.clear();
        self.users.reserve_exact(users);
        for u in 0..users {
            let g = self.clamped_marginal(u, 0);
            self.users.push(UserLane { m: 0, g });
        }
        self.y_at = vec![0.0; pages];
        self.last_seq = vec![0; pages];
        if self.fast {
            self.lists.ensure(users, pages);
        } else {
            self.sets = vec![BTreeSet::new(); users];
        }
        self.ready = true;
    }

    /// Record a request of `page` (hit or fresh insert): open a new
    /// interval, i.e. reset the page's budget to `g_u(m_u)`.
    fn touch(&mut self, ctx: &EngineCtx, page: PageId) {
        self.ensure_ready(ctx);
        let user = ctx.universe.owner(page);
        if self.fast {
            // Monotone `Y` makes touch order equal key order: moving the
            // page to the back of its owner's recency list is the whole
            // update. O(1), no allocation.
            self.lists.move_to_back(user.index(), page);
        } else {
            let set = &mut self.sets[user.index()];
            // Drop the page's previous entry if it is still in the set
            // (hit).
            let old = (
                Key(self.y_at[page.index()]),
                self.last_seq[page.index()],
                page.0,
            );
            set.remove(&old);
        }
        self.seq += 1;
        self.last_seq[page.index()] = self.seq;
        self.y_at[page.index()] = self.global_y;
        if !self.fast {
            self.sets[user.index()].insert((Key(self.global_y), self.seq, page.0));
        }
    }

    fn renormalize(&mut self) {
        let shift = self.global_y;
        // The fast path orders by recency, not by stored keys, so rebasing
        // is just the subtraction from `y_at`; only the slow path must
        // rebuild its ordered sets.
        for set in &mut self.sets {
            let rebased: BTreeSet<_> = set
                .iter()
                .map(|&(Key(y), s, p)| (Key(y - shift), s, p))
                .collect();
            *set = rebased;
        }
        for y in &mut self.y_at {
            *y -= shift;
        }
        self.y_shifted += shift;
        self.global_y = 0.0;
        self.diag.renormalizations += 1;
    }

    /// Current budget of a cached page (diagnostic; `O(1)` — reads the
    /// memoized marginal, no cost-function call).
    pub fn budget_of(&self, user: UserId, page: PageId) -> f64 {
        self.users[user.index()].g - (self.global_y - self.y_at[page.index()])
    }
}

impl ReplacementPolicy for ConvexCaching {
    fn name(&self) -> String {
        format!("convex-caching({:?})", self.mode)
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        self.touch(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
        self.ensure_ready(ctx);
        let mut best: Option<Candidate> = None;
        let num_users = self.users.len();
        for u in 0..num_users {
            // Per-user minimum: list front on the fast path (touch order
            // equals key order under monotone `Y`), set minimum otherwise.
            let (y_p, seq, page) = if self.fast {
                match self.lists.front(u) {
                    Some(p) => (self.y_at[p.index()], self.last_seq[p.index()], p.0),
                    None => continue,
                }
            } else {
                match self.sets[u].first() {
                    Some(&(Key(y), s, p)) => (y, s, p),
                    None => continue,
                }
            };
            // The memoized, already-clamped marginal: the scan is pure
            // float arithmetic over the arena, no cost-function calls.
            let g = self.users[u].g;
            let cand = Candidate {
                key: g + y_p,
                seq,
                page,
                user: u as u32,
            };
            if best.is_none_or(|b| cand.beats(&b, self.tiebreak, 0.0)) {
                best = Some(cand);
            }
        }
        let c = best.expect("full cache implies at least one cached page");
        debug_assert!(ctx.cache.contains(PageId(c.page)));

        // Charge the dual: y_t = B(victim) = key − Y; the new offset is the
        // victim's key. Budgets of all remaining pages shrink implicitly.
        let budget = c.key - self.global_y;
        self.diag.min_budget = self.diag.min_budget.min(budget);
        debug_assert!(
            !self.fast || budget >= -1e-9 || !c.key.is_finite(),
            "convex costs must keep budgets non-negative, got {budget}"
        );
        if c.key.is_finite() {
            self.global_y = c.key;
        }
        // A non-finite key means every candidate was pathological (the
        // NaN→∞ clamp, or an overflowing marginal). The victim choice is
        // still deterministic via the tie-break, but advancing `Y` to ∞
        // would poison every future budget (∞ − ∞ = NaN), so the dual
        // stays put for this eviction.
        self.diag.evictions = self.diag.evictions.saturating_add(1);

        let u = c.user as usize;
        if self.fast {
            self.lists.remove(PageId(c.page));
        } else {
            self.sets[u].remove(&(Key(self.y_at[c.page as usize]), c.seq, c.page));
        }
        // `m` changed for exactly one user: refresh exactly that lane's
        // memoized marginal. Every other lane stays valid.
        let m = self.users[u].m.saturating_add(1);
        self.users[u].m = m;
        self.users[u].g = self.clamped_marginal(u, m);

        if self.global_y.abs() > RENORMALIZE_AT {
            self.renormalize();
        }
        PageId(c.page)
    }

    fn on_external_removal(&mut self, ctx: &EngineCtx, page: PageId) {
        // Drop the page's entry from its owner's structure so it can
        // never be selected as a victim while uncached. The dual state
        // (Y, m) is untouched: an external removal is not an eviction.
        if self.fast {
            self.lists.remove_if_linked(page);
        } else {
            let user = ctx.universe.owner(page);
            self.sets[user.index()].remove(&(
                Key(self.y_at[page.index()]),
                self.last_seq[page.index()],
                page.0,
            ));
        }
    }

    fn prefetch_hint(&self, page: PageId) {
        // Warm every page-indexed line `touch` will hit: the recency-list
        // links plus the `Y_p`/`seq` stamps. Pure hint — bounds-checked
        // no-ops before the state is lazily sized.
        self.lists.prefetch(page);
        prefetch_slice_element(&self.y_at, page.index());
        prefetch_slice_element(&self.last_seq, page.index());
    }

    fn reset(&mut self) {
        self.ready = false;
        self.global_y = 0.0;
        self.y_shifted = 0.0;
        self.seq = 0;
        self.users.clear();
        self.y_at.clear();
        self.last_seq.clear();
        self.lists.reset();
        self.sets.clear();
        self.diag = AlgDiagnostics {
            min_budget: f64::INFINITY,
            ..Default::default()
        };
    }

    fn save_state(&self) -> Option<PolicyState> {
        let mut s = PolicyState::new();
        // Configuration tags: the cost profile itself cannot travel with
        // a snapshot (functions aren't serializable), so the resuming
        // policy is constructed independently and these tags let
        // `load_state` reject a differently-configured twin.
        s.set_text("tiebreak", self.tiebreak.label());
        s.set_u64("fast", self.fast as u64);
        s.set_u64("ready", self.ready as u64);
        s.set_f64("global_y", self.global_y);
        s.set_f64("y_shifted", self.y_shifted);
        s.set_u64("seq", self.seq);
        s.set_u64s("m", self.eviction_counts());
        s.set_f64s("y_at", self.y_at.clone());
        s.set_u64s("last_seq", self.last_seq.clone());
        s.set_f64("diag_min_budget", self.diag.min_budget);
        s.set_u64("diag_evictions", self.diag.evictions);
        s.set_u64("diag_renormalizations", self.diag.renormalizations);
        s.set_u64("diag_nan_marginals", self.diag.nan_marginals);
        Some(s)
    }

    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        let corrupt = SnapshotError::Corrupt;
        let tiebreak = state.text("tiebreak")?;
        if tiebreak != self.tiebreak.label() {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint used tie-break '{tiebreak}', policy uses '{}'",
                self.tiebreak.label()
            )));
        }
        if state.u64("fast")? != self.fast as u64 {
            return Err(SnapshotError::Mismatch(
                "checkpoint and policy disagree on convexity (fast path selection); \
                 the resuming cost profile differs from the checkpointed one"
                    .into(),
            ));
        }
        self.reset();
        if state.u64("ready")? == 0 {
            // Checkpointed before the first request: fresh state is it.
            return Ok(());
        }
        let users = ctx.universe.num_users() as usize;
        let pages = ctx.universe.num_pages() as usize;
        if (self.costs.num_users() as usize) < users {
            return Err(SnapshotError::Mismatch(format!(
                "cost profile covers {} users but the universe has {users}",
                self.costs.num_users()
            )));
        }
        let global_y = state.f64("global_y")?;
        let y_shifted = state.f64("y_shifted")?;
        if !global_y.is_finite() || !y_shifted.is_finite() {
            return Err(corrupt("policy.global_y/y_shifted must be finite".into()));
        }
        let min_budget = state.f64("diag_min_budget")?;
        if min_budget.is_nan() {
            return Err(corrupt("policy.diag_min_budget is NaN".into()));
        }
        let m = state.u64s_len("m", users)?.to_vec();
        let y_at = state.f64s_len("y_at", pages)?.to_vec();
        let last_seq = state.u64s_len("last_seq", pages)?.to_vec();
        if let Some(y) = y_at.iter().find(|y| !y.is_finite()) {
            return Err(corrupt(format!("policy.y_at holds non-finite value {y}")));
        }
        let seq = state.u64("seq")?;
        if let Some(s) = last_seq.iter().find(|&&s| s > seq) {
            return Err(corrupt(format!(
                "policy.last_seq holds {s} beyond the clock {seq}"
            )));
        }

        self.global_y = global_y;
        self.y_shifted = y_shifted;
        self.seq = seq;
        // Rebuild the arena: `m` round-trips through the snapshot, the
        // memoized marginal is a pure function of it and is recomputed
        // here *silently* — the full (uncheckpointed) run already counted
        // these computes before the cut, and `diag_nan_marginals` below
        // restores that count, so counting again would break the
        // byte-identity of resumed runs.
        self.users = m
            .iter()
            .enumerate()
            .map(|(u, &m)| {
                let g = self
                    .costs
                    .next_eviction_cost(self.mode, UserId(u as u32), m);
                UserLane {
                    m,
                    g: if g.is_nan() { f64::INFINITY } else { g },
                }
            })
            .collect();
        self.y_at = y_at;
        self.last_seq = last_seq;
        self.diag = AlgDiagnostics {
            min_budget,
            evictions: state.u64("diag_evictions")?,
            global_y: 0.0,
            renormalizations: state.u64("diag_renormalizations")?,
            nan_marginals: state.u64("diag_nan_marginals")?,
        };

        // Rebuild the per-user page structures from the restored cache.
        // Fast path: ascending `last_seq` *is* touch order (monotone `Y`),
        // so sorting each user's cached pages by it reproduces the
        // recency lists exactly. Slow path: the sets are keyed by stored
        // `(Y_p, seq, page)` values, which round-tripped bit-exactly.
        if self.fast {
            let mut by_user: Vec<Vec<PageId>> = vec![Vec::new(); users];
            for p in ctx.cache.iter() {
                by_user[ctx.universe.owner(p).index()].push(p);
            }
            self.lists.ensure(users, pages);
            for (u, mut cached) in by_user.into_iter().enumerate() {
                cached.sort_by_key(|p| self.last_seq[p.index()]);
                for p in cached {
                    self.lists.push_back(u, p);
                }
            }
        } else {
            self.sets = vec![BTreeSet::new(); users];
            for p in ctx.cache.iter() {
                self.sets[ctx.universe.owner(p).index()].insert((
                    Key(self.y_at[p.index()]),
                    self.last_seq[p.index()],
                    p.0,
                ));
            }
        }
        self.ready = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Linear, Monomial};
    use occ_sim::{Simulator, Trace, Universe};

    fn run(costs: CostProfile, universe: &Universe, pages: &[u32], k: usize) -> occ_sim::SimResult {
        let trace = Trace::from_page_indices(universe, pages);
        let mut alg = ConvexCaching::new(costs);
        Simulator::new(k).record_events(true).run(&mut alg, &trace)
    }

    #[test]
    fn single_user_linear_behaves_like_lru() {
        // With one user and linear cost, key = w + Y_p: pure recency.
        let u = Universe::single_user(4);
        let costs = CostProfile::uniform(1, Linear::unit());
        // LRU on 0 1 2 3 0 1 with k=3 evicts 0, then 1, then 2.
        let r = run(costs, &u, &[0, 1, 2, 3, 0, 1], 3);
        assert_eq!(r.total_misses(), 6);
        let ev: Vec<u32> = r
            .events
            .unwrap()
            .eviction_sequence()
            .iter()
            .map(|&(_, p)| p.0)
            .collect();
        assert_eq!(ev, vec![0, 1, 2]);
    }

    #[test]
    fn convex_cost_protects_heavier_user() {
        // u0 has quadratic cost, u1 linear. Interleave so both users keep
        // one page cached; evictions should skew towards the linear user.
        let u = Universe::uniform(2, 3); // u0: p0-2, u1: p3-5
        let costs = CostProfile::new(vec![
            std::sync::Arc::new(Monomial::power(2.0)) as crate::cost::CostFn,
            std::sync::Arc::new(Linear::unit()) as crate::cost::CostFn,
        ]);
        let mut pages = Vec::new();
        for round in 0..30u32 {
            pages.push(round % 3); // u0 cycles its 3 pages
            pages.push(3 + (round % 3)); // u1 cycles its 3 pages
        }
        let trace = Trace::from_page_indices(&u, &pages);
        let mut alg = ConvexCaching::new(costs);
        let r = Simulator::new(3).run(&mut alg, &trace);
        let m0 = r.stats.user(UserId(0)).evictions;
        let m1 = r.stats.user(UserId(1)).evictions;
        assert!(
            m1 > m0,
            "linear user should absorb more evictions: quadratic {m0} vs linear {m1}"
        );
    }

    #[test]
    fn budgets_stay_nonnegative_for_convex_costs() {
        let u = Universe::uniform(2, 4);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let pages: Vec<u32> = (0..200u32).map(|i| (i * 37 + i * i * 11) % 8).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let mut alg = ConvexCaching::new(costs);
        Simulator::new(3).run(&mut alg, &trace);
        let d = alg.diagnostics();
        assert!(d.evictions > 0);
        assert!(
            d.min_budget >= -1e-9,
            "min budget {} must be non-negative",
            d.min_budget
        );
    }

    #[test]
    fn reset_allows_reuse() {
        let u = Universe::single_user(3);
        let costs = CostProfile::uniform(1, Linear::unit());
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0, 1, 2]);
        let mut alg = ConvexCaching::new(costs);
        let r1 = Simulator::new(2).run(&mut alg, &trace);
        alg.reset();
        let r2 = Simulator::new(2).run(&mut alg, &trace);
        assert_eq!(r1.miss_vector(), r2.miss_vector());
        assert_eq!(alg.eviction_count(UserId(0)), r2.stats.total_evictions());
    }

    #[test]
    fn renormalization_preserves_decisions() {
        // Force renormalization by huge weights, compare against a fresh
        // run with small weights (decisions scale-invariant for uniform
        // linear costs).
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..300u32).map(|i| (i * 7 + 3) % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);

        let mut big = ConvexCaching::new(CostProfile::uniform(1, Linear::new(1e13)));
        let rb = Simulator::new(3).record_events(true).run(&mut big, &trace);
        assert!(
            big.diagnostics().renormalizations > 0,
            "renormalization should trigger"
        );

        let mut small = ConvexCaching::new(CostProfile::uniform(1, Linear::new(1.0)));
        let rs = Simulator::new(3)
            .record_events(true)
            .run(&mut small, &trace);
        assert_eq!(
            rb.events.unwrap().eviction_sequence(),
            rs.events.unwrap().eviction_sequence()
        );
    }

    #[test]
    fn fast_path_selection_follows_convexity() {
        use crate::cost::ThresholdCost;
        let convex = CostProfile::uniform(2, Monomial::power(2.0));
        assert!(ConvexCaching::new(convex).uses_fast_path());
        let non_convex = CostProfile::new(vec![
            std::sync::Arc::new(Linear::unit()) as crate::cost::CostFn,
            std::sync::Arc::new(ThresholdCost::new(1.0, 2, 5.0)) as crate::cost::CostFn,
        ]);
        assert!(!ConvexCaching::new(non_convex).uses_fast_path());
    }

    #[test]
    fn nan_marginals_degrade_to_avoiding_the_user() {
        use crate::cost::{CostPathology, FaultyCost};
        // u0's marginal turns NaN after 2 evictions; u1 is honest linear.
        // The guard clamps NaN to +∞, so once poisoned, u0's pages are
        // never evicted while u1 has cached pages — and nothing panics.
        let u = Universe::uniform(2, 4); // u0: p0-3, u1: p4-7
        let costs = CostProfile::new(vec![
            std::sync::Arc::new(FaultyCost::new(Linear::unit(), CostPathology::Nan, 3.0))
                as crate::cost::CostFn,
            std::sync::Arc::new(Linear::unit()) as crate::cost::CostFn,
        ]);
        let mut pages = Vec::new();
        for round in 0..60u32 {
            pages.push(round % 4);
            pages.push(4 + (round % 4));
        }
        let trace = Trace::from_page_indices(&u, &pages);
        let mut alg = ConvexCaching::new(costs);
        let r = Simulator::new(3).run(&mut alg, &trace);
        let d = alg.diagnostics();
        assert!(d.nan_marginals > 0, "the pathology must have fired");
        let m0 = r.stats.user(UserId(0)).evictions;
        let m1 = r.stats.user(UserId(1)).evictions;
        assert!(
            m1 > m0,
            "the poisoned user should be avoided: u0 {m0} vs u1 {m1}"
        );
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_on_both_paths() {
        use crate::cost::ThresholdCost;
        use occ_sim::{Request, SteppingEngine};

        let convex = CostProfile::uniform(3, Monomial::power(2.0));
        let non_convex = CostProfile::new(vec![
            std::sync::Arc::new(Linear::unit()) as crate::cost::CostFn,
            std::sync::Arc::new(ThresholdCost::new(1.0, 2, 5.0)) as crate::cost::CostFn,
            std::sync::Arc::new(Linear::new(2.0)) as crate::cost::CostFn,
        ]);

        for costs in [convex, non_convex] {
            let fast = ConvexCaching::new(costs.clone()).uses_fast_path();
            let u = Universe::uniform(3, 4);
            let mut state = 0xFEED_F00Du64;
            let pages: Vec<u32> = (0..500)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % 12) as u32
                })
                .collect();
            let trace = Trace::from_page_indices(&u, &pages);
            let reqs: Vec<Request> = trace.requests().to_vec();
            let (k, cut) = (5, 231);

            let mut full_alg = ConvexCaching::new(costs.clone());
            let mut full = SteppingEngine::new(k, u.clone(), &mut full_alg).with_events();
            for &r in &reqs {
                full.step(r);
            }
            let full_events: Vec<_> = full.take_events().unwrap().iter().cloned().collect();
            let full_stats = full.stats().clone();
            let full_dual = full_alg.cumulative_dual_offset();
            let full_m = full_alg.eviction_counts();

            let mut head_alg = ConvexCaching::new(costs.clone());
            let mut head = SteppingEngine::new(k, u.clone(), &mut head_alg).with_events();
            for &r in &reqs[..cut] {
                head.step(r);
            }
            let snap = head.snapshot().unwrap();
            let mut stitched: Vec<_> = head.take_events().unwrap().iter().cloned().collect();

            let mut tail_alg = ConvexCaching::new(costs.clone());
            let mut tail = SteppingEngine::from_snapshot(&snap, &mut tail_alg)
                .unwrap()
                .with_events();
            for &r in &reqs[cut..] {
                tail.step(r);
            }
            stitched.extend(tail.take_events().unwrap().iter().cloned());
            let tail_stats = tail.stats().clone();

            assert_eq!(stitched, full_events, "fast={fast}: events diverged");
            assert_eq!(tail_stats, full_stats, "fast={fast}: stats diverged");
            assert_eq!(
                tail_alg.cumulative_dual_offset().to_bits(),
                full_dual.to_bits(),
                "fast={fast}: dual offset diverged"
            );
            assert_eq!(
                tail_alg.eviction_counts(),
                full_m,
                "fast={fast}: eviction counts diverged"
            );
        }
    }

    #[test]
    fn resume_rejects_differently_configured_policy() {
        use occ_sim::{ReplacementPolicy as _, SnapshotError, SteppingEngine};
        let u = Universe::single_user(4);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 3, 0]);
        let mut alg = ConvexCaching::new(costs.clone());
        let mut eng = SteppingEngine::new(2, u, &mut alg);
        for &r in trace.requests() {
            eng.step(r);
        }
        let snap = eng.snapshot().unwrap();

        // Different tie-break: typed mismatch, not divergence.
        let mut other = ConvexCaching::new(costs.clone()).with_tiebreak(TieBreak::LowestPage);
        let Err(err) = SteppingEngine::from_snapshot(&snap, &mut other) else {
            panic!("mismatched tie-break must be rejected");
        };
        assert!(matches!(err, SnapshotError::Mismatch(_)), "got {err}");

        // Different marginal mode changes the policy *name*, which the
        // engine-level restore catches first.
        let mut discrete =
            ConvexCaching::new(costs).with_marginals(crate::cost::Marginals::Discrete);
        assert_ne!(discrete.name(), snap.policy_name);
        let Err(err) = SteppingEngine::from_snapshot(&snap, &mut discrete) else {
            panic!("mismatched policy name must be rejected");
        };
        assert!(matches!(err, SnapshotError::Mismatch(_)), "got {err}");
    }

    #[test]
    fn budget_of_reports_fresh_marginal_after_touch() {
        let u = Universe::single_user(3);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        let trace = Trace::from_page_indices(&u, &[0]);
        let mut alg = ConvexCaching::new(costs);
        Simulator::new(2).run(&mut alg, &trace);
        // f(x)=x², m=0: budget = f'(1) = 2.
        assert!((alg.budget_of(UserId(0), PageId(0)) - 2.0).abs() < 1e-12);
    }
}
