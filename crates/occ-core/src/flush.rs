//! The dummy-user flush convention of §2.1.
//!
//! The paper charges *evictions*, and equalizes evictions with fetches by
//! appending a dummy user who owns `k` pages, all requested once at the
//! very end of the sequence: serving them forces every real page out of
//! the cache, closing every open interval with an eviction. The dummy
//! user's cost is effectively infinite so its own pages are never chosen
//! as victims while real pages remain.
//!
//! [`with_dummy_flush`] produces the extended instance; the invariant
//! checker requires it for gradient condition (3a), whose proof uses the
//! fact that every page's last interval ends in an eviction.

use crate::cost::{CostProfile, HugeCost};
use occ_sim::{PageId, Trace, TraceBuilder, Universe, UserId};

/// Extend `(trace, costs)` with the §2.1 dummy user: `k` fresh pages owned
/// by a new user with [`HugeCost`], each requested once after the real
/// sequence. Returns the extended trace and cost profile.
pub fn with_dummy_flush(trace: &Trace, costs: &CostProfile, k: usize) -> (Trace, CostProfile) {
    let universe = trace.universe();
    let n = universe.num_users();
    let p0 = universe.num_pages();

    // Extended universe: same owner table plus k pages for user n.
    let mut owner: Vec<UserId> = (0..p0).map(|p| universe.owner(PageId(p))).collect();
    owner.extend(std::iter::repeat_n(UserId(n), k));
    let extended = Universe::new(n + 1, owner);

    let mut builder = TraceBuilder::new(extended);
    for r in trace.requests() {
        builder.push(r.page);
    }
    for i in 0..k as u32 {
        builder.push(PageId(p0 + i));
    }
    (builder.build(), costs.with_extra_user(HugeCost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{run_continuous, TieBreak};
    use crate::cost::{Marginals, Monomial};

    #[test]
    fn flush_extends_universe_and_trace() {
        let u = Universe::uniform(2, 2);
        let trace = Trace::from_page_indices(&u, &[0, 2, 1]);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let (ft, fc) = with_dummy_flush(&trace, &costs, 3);
        assert_eq!(ft.universe().num_users(), 3);
        assert_eq!(ft.universe().num_pages(), 4 + 3);
        assert_eq!(ft.len(), 3 + 3);
        assert_eq!(fc.num_users(), 3);
        // The appended requests belong to the dummy user.
        assert_eq!(ft.at(3).user, UserId(2));
        assert_eq!(ft.at(5).page, PageId(6));
    }

    #[test]
    fn flush_closes_every_real_interval_with_an_eviction() {
        let u = Universe::uniform(2, 3);
        let trace = Trace::from_page_indices(&u, &[0, 3, 1, 4, 0, 3, 2]);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let k = 3;
        let (ft, fc) = with_dummy_flush(&trace, &costs, k);
        let run = run_continuous(&ft, k, &fc, Marginals::Derivative, TieBreak::OldestRequest);
        // After the flush, every real user's evictions equal its misses.
        for user in 0..2 {
            let s = run.stats.per_user()[user];
            assert_eq!(
                s.evictions, s.misses,
                "flush must equalize evictions and misses for u{user}"
            );
        }
        // The final interval of every requested real page is evicted.
        for p in 0..6usize {
            if let Some(last) = run.state.x[p].last() {
                assert!(*last, "last interval of p{p} must close with an eviction");
            }
        }
    }

    #[test]
    fn dummy_pages_survive_real_pages() {
        // During the flush the dummy's huge cost keeps its pages cached.
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 3, 0, 1]);
        let costs = CostProfile::uniform(1, Monomial::power(2.0));
        let k = 2;
        let (ft, fc) = with_dummy_flush(&trace, &costs, k);
        let run = run_continuous(&ft, k, &fc, Marginals::Derivative, TieBreak::OldestRequest);
        // No dummy eviction: dummy user's eviction count is 0.
        assert_eq!(run.stats.per_user()[1].evictions, 0);
    }
}
