//! Numeric verification of Claim 2.3 — the inequality that bridges the
//! algorithm's violated complementary slackness.
//!
//! For convex increasing `f` with `f(0) = 0` and any non-negative
//! `x_1, …, x_n`:
//!
//! ```text
//! f'(Σ_j x_j) · Σ_j x_j  ≤  α · Σ_j x_j · f'(Σ_{i ≤ j} x_i)
//! ```
//!
//! with `α = sup_x x f'(x)/f(x)`. The left side evaluates the gradient at
//! the *final* total (what Lemma 2.2 needs); the right side evaluates it
//! at the running prefix (what the algorithm actually charged); `α` pays
//! for the difference.

use crate::cost::CostFunction;

/// Both sides of Claim 2.3 evaluated on a concrete instance.
#[derive(Clone, Copy, Debug)]
pub struct Claim23Outcome {
    /// `f'(Σx)·Σx`.
    pub lhs: f64,
    /// `α · Σ_j x_j f'(prefix_j)`.
    pub rhs: f64,
    /// The `α` used (analytic if available, else caller-provided).
    pub alpha: f64,
    /// `rhs / lhs` (∞ when `lhs = 0`): ≥ 1 iff the claim holds.
    pub slack_ratio: f64,
}

impl Claim23Outcome {
    /// Whether the inequality holds up to a relative tolerance.
    pub fn holds(&self, rel_eps: f64) -> bool {
        self.lhs <= self.rhs * (1.0 + rel_eps) + rel_eps
    }
}

/// Evaluate Claim 2.3 for `f` on the sequence `xs` (non-negative).
/// `alpha_override` supplies `α` when `f.alpha()` is `None`.
///
/// Panics when `α` is unknown and no override is given; use
/// [`try_check_claim_2_3`] for the fail-soft variant (the conformance
/// harness marks such cells VACUOUS instead of aborting the grid).
pub fn check_claim_2_3(
    f: &dyn CostFunction,
    xs: &[f64],
    alpha_override: Option<f64>,
) -> Claim23Outcome {
    try_check_claim_2_3(f, xs, alpha_override).expect("α unknown: provide alpha_override")
}

/// [`check_claim_2_3`] returning `None` instead of panicking when `α` is
/// unknown (no analytic value and no override) — the claim is then
/// unevaluatable, not violated.
pub fn try_check_claim_2_3(
    f: &dyn CostFunction,
    xs: &[f64],
    alpha_override: Option<f64>,
) -> Option<Claim23Outcome> {
    assert!(xs.iter().all(|&x| x >= 0.0), "xs must be non-negative");
    let alpha = f.alpha().or(alpha_override)?;
    let total: f64 = xs.iter().sum();
    let lhs = f.deriv(total) * total;
    let mut prefix = 0.0;
    let mut weighted = 0.0;
    for &x in xs {
        prefix += x;
        weighted += x * f.deriv(prefix);
    }
    let rhs = alpha * weighted;
    Some(Claim23Outcome {
        lhs,
        rhs,
        alpha,
        slack_ratio: if lhs > 0.0 { rhs / lhs } else { f64::INFINITY },
    })
}

/// The intermediate inequality (6) in the proof of Claim 2.3:
/// `Σ_j x_j f'(prefix_j) ≥ f(Σ_j x_j)`. Exposed separately because it is
/// the step that property tests can falsify independently of `α`.
pub fn check_inequality_6(f: &dyn CostFunction, xs: &[f64]) -> (f64, f64) {
    let mut prefix = 0.0;
    let mut weighted = 0.0;
    for &x in xs {
        prefix += x;
        weighted += x * f.deriv(prefix);
    }
    (weighted, f.eval(prefix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Linear, Monomial, PiecewiseLinear, Polynomial};

    #[test]
    fn claim_holds_for_monomials() {
        let f = Monomial::power(2.0);
        for xs in [
            vec![1.0, 1.0, 1.0],
            vec![5.0],
            vec![0.1, 3.0, 0.5, 2.0],
            vec![0.0, 0.0, 4.0],
        ] {
            let out = check_claim_2_3(&f, &xs, None);
            assert!(out.holds(1e-9), "failed on {:?}: {:?}", xs, out);
        }
    }

    #[test]
    fn claim_tight_for_single_element_linear() {
        // Linear f, one element: lhs = w·x, rhs = 1·x·w — exactly tight.
        let f = Linear::new(2.0);
        let out = check_claim_2_3(&f, &[7.0], None);
        assert!((out.lhs - out.rhs).abs() < 1e-12);
        assert!((out.slack_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn claim_holds_for_piecewise_and_polynomial() {
        let pw = PiecewiseLinear::sla(5.0, 1.0, 10.0);
        let poly = Polynomial::new(vec![1.0, 2.0, 0.5]);
        let xs = vec![2.0, 2.0, 2.0, 2.0];
        assert!(check_claim_2_3(&pw, &xs, None).holds(1e-9));
        assert!(check_claim_2_3(&poly, &xs, None).holds(1e-9));
    }

    #[test]
    fn inequality_6_holds() {
        let f = Monomial::power(3.0);
        let xs = [1.0, 2.0, 0.5, 4.0];
        let (weighted, total_f) = check_inequality_6(&f, &xs);
        assert!(
            weighted + 1e-9 >= total_f,
            "Σ x_j f'(prefix) = {weighted} < f(Σx) = {total_f}"
        );
    }

    #[test]
    fn zero_vector_degenerate_case() {
        let f = Monomial::power(2.0);
        let out = check_claim_2_3(&f, &[0.0, 0.0], None);
        assert_eq!(out.lhs, 0.0);
        assert!(out.holds(1e-9));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_entries_rejected() {
        check_claim_2_3(&Monomial::power(2.0), &[-1.0], None);
    }

    #[test]
    fn try_variant_declines_unknown_alpha_instead_of_panicking() {
        use crate::cost::Exponential;
        // Exponential advertises no analytic α; without an override the
        // claim is unevaluatable.
        let f = Exponential::new(1.0, 0.5);
        assert!(try_check_claim_2_3(&f, &[1.0, 2.0], None).is_none());
        // With an override (or an analytic α) both variants agree.
        let forced = try_check_claim_2_3(&f, &[1.0, 2.0], Some(40.0)).unwrap();
        assert_eq!(forced.alpha, 40.0);
        let mono = Monomial::power(2.0);
        let a = check_claim_2_3(&mono, &[1.0, 3.0], None);
        let b = try_check_claim_2_3(&mono, &[1.0, 3.0], None).unwrap();
        assert_eq!(a.lhs, b.lhs);
        assert_eq!(a.rhs, b.rhs);
    }

    #[test]
    fn alpha_override_used_when_unknown() {
        use crate::cost::Exponential;
        let f = Exponential::new(1.0, 0.5);
        let xs = [1.0, 1.0];
        // α at the realized total (x=2): 1·e^1/(e^1−1)·… compute a safe
        // big value and confirm plumbing.
        let out = check_claim_2_3(&f, &xs, Some(50.0));
        assert_eq!(out.alpha, 50.0);
        assert!(out.holds(1e-9));
    }
}
