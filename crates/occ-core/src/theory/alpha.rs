//! The curvature constant `α = sup_{x>0} x·f'(x)/f(x)` (Theorem 1.1).
//!
//! `α` measures how far `f` is from linear: `α = 1` for linear costs,
//! `α = β` for `x^β`, unbounded for exponentials. Every guarantee in the
//! paper degrades as `α^α k^α`, so experiments report it alongside the
//! measured ratios. Cost functions advertise an analytic `α` when they
//! can ([`crate::cost::CostFunction::alpha`]); this module provides the
//! numeric fallback and the profile-level maximum.

use crate::cost::{CostFunction, CostProfile};

/// Numerically estimate `sup_{0 < x ≤ x_max} x·f'(x)/f(x)` over a
/// log-spaced grid of `samples` points.
///
/// The estimate is a *lower* bound on the true supremum (it only inspects
/// grid points); pair it with the analytic value when validating. Points
/// where `f(x)` is not strictly positive are skipped; if every point is
/// skipped the function is degenerate on the range and `None` is
/// returned.
pub fn alpha_numeric(f: &dyn CostFunction, x_max: f64, samples: usize) -> Option<f64> {
    assert!(x_max > 0.0 && samples >= 2);
    let lo = (x_max * 1e-6).max(1e-12);
    let ratio = (x_max / lo).powf(1.0 / (samples - 1) as f64);
    let mut best: Option<f64> = None;
    let mut x = lo;
    for _ in 0..samples {
        let fx = f.eval(x);
        if fx > 0.0 {
            let r = x * f.deriv(x) / fx;
            if r.is_finite() {
                best = Some(best.map_or(r, |b: f64| b.max(r)));
            }
        }
        x *= ratio;
    }
    best
}

/// The profile-level `α = sup_{x,i} x f_i'(x)/f_i(x)`: the analytic
/// maximum when every user advertises one, otherwise the numeric estimate
/// over `(0, x_max]`.
pub fn alpha_of_profile(costs: &CostProfile, x_max: f64) -> Option<f64> {
    if let Some(a) = costs.alpha() {
        return Some(a);
    }
    let mut best: Option<f64> = None;
    for u in 0..costs.num_users() {
        let a = alpha_numeric(costs.user(occ_sim::UserId(u)), x_max, 512)?;
        best = Some(best.map_or(a, |b: f64| b.max(a)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{Exponential, Linear, Monomial, PiecewiseLinear};

    #[test]
    fn numeric_matches_analytic_for_monomials() {
        for beta in [1.0, 2.0, 3.5] {
            let f = Monomial::power(beta);
            let est = alpha_numeric(&f, 1e4, 256).unwrap();
            assert!((est - beta).abs() < 1e-6, "β={beta}: numeric α = {est}");
        }
    }

    #[test]
    fn numeric_matches_analytic_for_sla() {
        let f = PiecewiseLinear::sla(10.0, 1.0, 20.0);
        let analytic = f.alpha().unwrap();
        // Grid won't hit x = 10 exactly; allow a small shortfall but
        // never an overshoot (numeric is a lower bound on the sup).
        let est = alpha_numeric(&f, 1e3, 20_000).unwrap();
        assert!(est <= analytic + 1e-9);
        assert!(est > 0.9 * analytic, "est {est} vs analytic {analytic}");
    }

    #[test]
    fn exponential_alpha_grows_with_range() {
        let f = Exponential::new(1.0, 1.0);
        let small = alpha_numeric(&f, 5.0, 256).unwrap();
        let large = alpha_numeric(&f, 50.0, 256).unwrap();
        assert!(
            large > small * 2.0,
            "α estimate must diverge: {small} → {large}"
        );
    }

    #[test]
    fn profile_alpha_prefers_analytic() {
        let p = CostProfile::uniform(2, Monomial::power(3.0));
        assert_eq!(alpha_of_profile(&p, 100.0), Some(3.0));
    }

    #[test]
    fn profile_alpha_numeric_fallback() {
        // Exponential reports None analytically; fallback estimates on
        // the given range.
        let p = CostProfile::uniform(1, Exponential::new(1.0, 0.5));
        let a = alpha_of_profile(&p, 10.0).unwrap();
        // x f'/f at x = 10: 5·e^5/(e^5 − 1) ≈ 5.03.
        assert!((a - 5.034).abs() < 0.1, "got {a}");
    }

    #[test]
    fn linear_alpha_is_one() {
        let a = alpha_numeric(&Linear::new(4.0), 100.0, 64).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
    }
}
