//! The guarantees of Theorems 1.1, 1.3, 1.4 and Corollary 1.2 as
//! evaluatable quantities.
//!
//! The paper's guarantees are *not* plain multiplicative ratios: Theorem
//! 1.1 bounds the online cost by the offline cost evaluated at *inflated
//! miss counts*, `Σ_i f_i(α·k·b_i)`. For monomials this collapses to the
//! familiar `β^β k^β` multiplicative form of Corollary 1.2. The bench
//! harness reports both forms.

use crate::cost::CostProfile;

/// Right-hand side of Theorem 1.1: `Σ_i f_i(α·k·b_i)` where `b_i` are the
/// offline algorithm's per-user miss counts.
pub fn theorem_1_1_rhs(costs: &CostProfile, opt_misses: &[u64], alpha: f64, k: usize) -> f64 {
    costs.total_cost_scaled(opt_misses, alpha * k as f64)
}

/// The bi-criteria inflation factor of Theorem 1.3: `α·k/(k−h+1)` for an
/// offline cache of size `h ≤ k`.
pub fn theorem_1_3_factor(alpha: f64, k: usize, h: usize) -> f64 {
    assert!(h >= 1 && h <= k, "need 1 ≤ h ≤ k");
    alpha * k as f64 / (k - h + 1) as f64
}

/// Right-hand side of Theorem 1.3: `Σ_i f_i(α·k/(k−h+1)·b_i)` where `b_i`
/// are the misses of the offline optimum with cache size `h`.
pub fn theorem_1_3_rhs(
    costs: &CostProfile,
    opt_misses_h: &[u64],
    alpha: f64,
    k: usize,
    h: usize,
) -> f64 {
    costs.total_cost_scaled(opt_misses_h, theorem_1_3_factor(alpha, k, h))
}

/// Corollary 1.2's multiplicative competitive ratio for `f(x) = x^β`:
/// `β^β · k^β`.
pub fn corollary_1_2_factor(beta: f64, k: usize) -> f64 {
    beta.powf(beta) * (k as f64).powf(beta)
}

/// Theorem 1.4's lower bound on the competitive ratio of *any*
/// deterministic online algorithm on the §4 instance with `n` users
/// (cache size `k = n−1`) and costs `x^β`: `(k/4)^β` up to the paper's
/// constants (`(n/4)^β` with `k = n−1`; we report `(n/4)^β`).
pub fn theorem_1_4_lower(n: usize, beta: f64) -> f64 {
    (n as f64 / 4.0).powf(beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Monomial;

    #[test]
    fn theorem_1_1_rhs_inflates_miss_counts() {
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        // α = 2, k = 4 ⇒ factor 8: Σ f(8·b) = 64 + 256.
        let rhs = theorem_1_1_rhs(&costs, &[1, 2], 2.0, 4);
        assert_eq!(rhs, 64.0 + 256.0);
    }

    #[test]
    fn monomial_rhs_equals_corollary_factor_times_opt() {
        // For f = x^β: f(αk·b) = (βk)^β · f(b) = β^β k^β f(b).
        let beta = 3.0;
        let k = 5;
        let costs = CostProfile::uniform(1, Monomial::power(beta));
        let b = [4u64];
        let rhs = theorem_1_1_rhs(&costs, &b, beta, k);
        let factor_form = corollary_1_2_factor(beta, k) * costs.total_cost(&b);
        assert!((rhs - factor_form).abs() < 1e-6 * rhs);
    }

    #[test]
    fn bicriteria_factor_interpolates() {
        // h = k recovers αk; h = 1 recovers α (up to k/k).
        assert_eq!(theorem_1_3_factor(2.0, 8, 8), 16.0);
        assert_eq!(theorem_1_3_factor(2.0, 8, 1), 2.0);
        // And it is monotone in h.
        let f: Vec<f64> = (1..=8).map(|h| theorem_1_3_factor(1.0, 8, h)).collect();
        assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "1 ≤ h ≤ k")]
    fn bicriteria_rejects_h_above_k() {
        theorem_1_3_factor(1.0, 4, 5);
    }

    #[test]
    fn corollary_factor_linear_case_is_k() {
        assert_eq!(corollary_1_2_factor(1.0, 10), 10.0);
        assert_eq!(corollary_1_2_factor(2.0, 10), 400.0);
    }

    #[test]
    fn lower_bound_grows_with_n_and_beta() {
        assert!(theorem_1_4_lower(16, 2.0) > theorem_1_4_lower(8, 2.0));
        assert!(theorem_1_4_lower(16, 3.0) > theorem_1_4_lower(16, 2.0));
        assert_eq!(theorem_1_4_lower(8, 1.0), 2.0);
    }

    #[test]
    fn upper_and_lower_bounds_sandwich() {
        // Corollary 1.2 vs Theorem 1.4: they differ by at most β^β·4^β
        // (constants aside), and upper ≥ lower always.
        for n in [4usize, 8, 32] {
            for beta in [1.0, 2.0, 3.0] {
                let k = n - 1;
                assert!(corollary_1_2_factor(beta, k) >= theorem_1_4_lower(n, beta));
            }
        }
    }
}
