//! Theory utilities: the curvature constant `α`, the bounds of Theorems
//! 1.1/1.3 and Corollary 1.2, and a numeric verifier for Claim 2.3.

pub mod alpha;
pub mod bounds;
pub mod claim23;

pub use alpha::{alpha_numeric, alpha_of_profile};
pub use bounds::{
    corollary_1_2_factor, theorem_1_1_rhs, theorem_1_3_factor, theorem_1_3_rhs, theorem_1_4_lower,
};
pub use claim23::{check_claim_2_3, try_check_claim_2_3, Claim23Outcome};
