//! The §2.3 invariant checker: validates a recorded ALG-CONT trajectory
//! against every condition the analysis of Theorem 1.1 relies on.
//!
//! Conditions checked (numbering from §2.3):
//!
//! * (1a) primal feasibility of the final `x°` in (CP);
//! * (1b) `0 ≤ x° ≤ 1` — structural for the boolean encoding;
//! * (1c) `y°, z° ≥ 0` — dual feasibility;
//! * (2a) `z°(p,j) > 0 ⇒ x°(p,j) = 1`;
//! * (2b) for every `x°(p,j)` set to 1 at time `ŝ`:
//!   `f'(m(i(p), ŝ)) − Σ_{t ∈ (t(p,j), t(p,j+1))} y°_t + z°(p,j) = 0`;
//! * (3a) for every `(p, j)`:
//!   `f'(m(i(p), T)) − Σ y°_t + z°(p,j) ≥ 0`.
//!
//! Condition (3a)'s proof uses the dummy-flush convention (every page's
//! last interval ends in an eviction), so pass a run produced from
//! [`crate::flush::with_dummy_flush`] when `check_gradient` is on.

use crate::alg::continuous::ContinuousRun;
use crate::cost::{CostProfile, Marginals};
use crate::cp::program::ConvexProgram;
use crate::cp::solution::Assignment;
use occ_sim::{Time, Trace, UserId};

/// Outcome of checking all §2.3 invariants.
#[derive(Clone, Debug)]
pub struct InvariantReport {
    /// (1a): final `x°` feasible for (CP).
    pub primal_feasible: bool,
    /// (1c): all recorded `y°`, `z°` non-negative.
    pub dual_nonneg: bool,
    /// (2a): `z° > 0` only on evicted intervals.
    pub comp_slack_z: bool,
    /// (2b): gradient tight at every eviction.
    pub tightness_at_eviction: bool,
    /// (3a): gradient non-negative everywhere (only meaningful with the
    /// flush convention; `true` when skipped).
    pub gradient_ok: bool,
    /// Whether (3a) was actually evaluated.
    pub gradient_checked: bool,
    /// Largest |residual| seen in (2b).
    pub max_tightness_residual: f64,
    /// Smallest slack seen in (3a) (negative = violation).
    pub min_gradient_slack: f64,
    /// Human-readable descriptions of the first few violations.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// Whether every checked invariant holds.
    pub fn all_ok(&self) -> bool {
        self.primal_feasible
            && self.dual_nonneg
            && self.comp_slack_z
            && self.tightness_at_eviction
            && self.gradient_ok
    }
}

const MAX_REPORTED: usize = 8;

/// Check the §2.3 invariants of `run` (produced by
/// [`crate::alg::run_continuous`] on `trace` with cache size `k`).
pub fn check_invariants(
    trace: &Trace,
    k: usize,
    costs: &CostProfile,
    mode: Marginals,
    run: &ContinuousRun,
    check_gradient: bool,
    eps: f64,
) -> InvariantReport {
    let universe = trace.universe();
    let idx = trace.index();
    let state = &run.state;
    let t_end = trace.len() as Time;
    let mut violations = Vec::new();
    let note = |v: String, violations: &mut Vec<String>| {
        if violations.len() < MAX_REPORTED {
            violations.push(v);
        }
    };

    // (1a) + (1b): static feasibility of the final primal solution.
    let assignment = Assignment::from_primal(state);
    let cp = ConvexProgram::new(trace, k);
    let primal_feasible = match cp.check_feasible(&assignment, eps) {
        Ok(()) => true,
        Err(v) => {
            note(format!("(1a) {v}"), &mut violations);
            false
        }
    };

    // (1c): dual non-negativity.
    let mut dual_nonneg = true;
    for (t, &yt) in state.y.iter().enumerate() {
        if yt < -eps {
            dual_nonneg = false;
            note(format!("(1c) y[{t}] = {yt} < 0"), &mut violations);
        }
    }
    for (p, zs) in state.z.iter().enumerate() {
        for (j0, &zv) in zs.iter().enumerate() {
            if zv < -eps {
                dual_nonneg = false;
                note(
                    format!("(1c) z(p{p},{}) = {zv} < 0", j0 + 1),
                    &mut violations,
                );
            }
        }
    }

    // (2a): z > 0 ⇒ x = 1.
    let mut comp_slack_z = true;
    for (p, zs) in state.z.iter().enumerate() {
        for (j0, &zv) in zs.iter().enumerate() {
            if zv > eps && !state.x[p][j0] {
                comp_slack_z = false;
                note(
                    format!("(2a) z(p{p},{}) = {zv} > 0 with x = 0", j0 + 1),
                    &mut violations,
                );
            }
        }
    }

    // Prefix sums of y for interval sums: pref[i] = Σ_{t < i} y_t.
    let mut pref = Vec::with_capacity(state.y.len() + 1);
    pref.push(0.0f64);
    for &yt in &state.y {
        pref.push(pref.last().unwrap() + yt);
    }
    // Σ y over the open range (t(p,j), t(p,j+1)) = [t_j + 1, t_next − 1].
    let interval_y = |p: usize, j0: usize| -> f64 {
        let times = &idx.request_times[p];
        let t_j = times[j0];
        let t_next = times.get(j0 + 1).copied().unwrap_or(t_end);
        pref[t_next as usize] - pref[(t_j + 1) as usize]
    };
    // The analysis' gradient term: f'(m) (or its discrete analog).
    let grad_term = |u: UserId, m: u64| -> f64 {
        match mode {
            Marginals::Derivative => costs.user(u).deriv(m as f64),
            Marginals::Discrete => costs.user(u).marginal(m.saturating_sub(1)),
        }
    };

    // (2b): tightness at each eviction.
    let mut tightness_at_eviction = true;
    let mut max_tightness_residual = 0.0f64;
    for p in 0..universe.num_pages() as usize {
        for j0 in 0..state.x[p].len() {
            let Some(s) = state.set_at[p][j0] else {
                continue;
            };
            let u = universe.owner(occ_sim::PageId(p as u32));
            let m_at = state.m_at_eviction[p][j0].expect("eviction must record the miss count");
            let residual = grad_term(u, m_at) - interval_y(p, j0) + state.z[p][j0];
            max_tightness_residual = max_tightness_residual.max(residual.abs());
            if residual.abs() > eps {
                tightness_at_eviction = false;
                note(
                    format!(
                        "(2b) residual {residual} at (p{p}, j={}) evicted at t={s}",
                        j0 + 1
                    ),
                    &mut violations,
                );
            }
        }
    }

    // (3a): gradient condition with the final miss counts.
    let mut gradient_ok = true;
    let mut min_gradient_slack = f64::INFINITY;
    if check_gradient {
        for p in 0..universe.num_pages() as usize {
            let u = universe.owner(occ_sim::PageId(p as u32));
            let m_t = state.final_m[u.index()];
            for j0 in 0..state.x[p].len() {
                let slack = grad_term(u, m_t) - interval_y(p, j0) + state.z[p][j0];
                min_gradient_slack = min_gradient_slack.min(slack);
                if slack < -eps {
                    gradient_ok = false;
                    note(
                        format!("(3a) slack {slack} at (p{p}, j={})", j0 + 1),
                        &mut violations,
                    );
                }
            }
        }
    }

    InvariantReport {
        primal_feasible,
        dual_nonneg,
        comp_slack_z,
        tightness_at_eviction,
        gradient_ok,
        gradient_checked: check_gradient,
        max_tightness_residual,
        min_gradient_slack,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{run_continuous, TieBreak};
    use crate::cost::{CostFn, Linear, Monomial, PiecewiseLinear};
    use crate::flush::with_dummy_flush;
    use occ_sim::Universe;
    use std::sync::Arc;

    fn pseudo_pages(len: usize, universe_pages: u32, seed: u64) -> Vec<u32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % universe_pages as u64) as u32
            })
            .collect()
    }

    fn check(universe: Universe, pages: &[u32], costs: CostProfile, k: usize) -> InvariantReport {
        let trace = Trace::from_page_indices(&universe, pages);
        let (ft, fc) = with_dummy_flush(&trace, &costs, k);
        let run = run_continuous(&ft, k, &fc, Marginals::Derivative, TieBreak::OldestRequest);
        check_invariants(&ft, k, &fc, Marginals::Derivative, &run, true, 1e-6)
    }

    #[test]
    fn invariants_hold_quadratic_uniform() {
        let u = Universe::uniform(2, 4);
        let r = check(
            u,
            &pseudo_pages(300, 8, 1),
            CostProfile::uniform(2, Monomial::power(2.0)),
            3,
        );
        assert!(r.all_ok(), "violations: {:?}", r.violations);
        assert!(r.max_tightness_residual < 1e-6);
        assert!(r.min_gradient_slack > -1e-6);
    }

    #[test]
    fn invariants_hold_heterogeneous() {
        let u = Universe::with_sizes(&[2, 3, 4]);
        let costs = CostProfile::new(vec![
            Arc::new(Linear::new(2.0)) as CostFn,
            Arc::new(Monomial::power(3.0)) as CostFn,
            Arc::new(PiecewiseLinear::sla(3.0, 1.0, 9.0)) as CostFn,
        ]);
        let r = check(u, &pseudo_pages(400, 9, 5), costs, 4);
        assert!(r.all_ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn invariants_hold_discrete_marginals() {
        let u = Universe::uniform(2, 3);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(200, 6, 9));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let k = 2;
        let (ft, fc) = with_dummy_flush(&trace, &costs, k);
        let run = run_continuous(&ft, k, &fc, Marginals::Discrete, TieBreak::OldestRequest);
        let r = check_invariants(&ft, k, &fc, Marginals::Discrete, &run, true, 1e-6);
        assert!(r.all_ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn gradient_check_can_be_skipped() {
        // Without flush, (3a) may legitimately fail; skipping it must
        // report gradient_ok = true but gradient_checked = false.
        let u = Universe::uniform(2, 4);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(100, 8, 2));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let run = run_continuous(
            &trace,
            3,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let r = check_invariants(&trace, 3, &costs, Marginals::Derivative, &run, false, 1e-6);
        assert!(!r.gradient_checked);
        assert!(r.gradient_ok);
        assert!(r.primal_feasible && r.dual_nonneg && r.comp_slack_z);
        assert!(r.tightness_at_eviction, "violations: {:?}", r.violations);
    }

    #[test]
    fn detects_corrupted_dual() {
        let u = Universe::uniform(2, 4);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(150, 8, 3));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let k = 3;
        let (ft, fc) = with_dummy_flush(&trace, &costs, k);
        let mut run = run_continuous(&ft, k, &fc, Marginals::Derivative, TieBreak::OldestRequest);
        // Corrupt one y entry: tightness (2b) must notice.
        let t_evict = run.eviction_sequence[0].0 as usize;
        run.state.y[t_evict] += 0.5;
        let r = check_invariants(&ft, k, &fc, Marginals::Derivative, &run, true, 1e-6);
        assert!(!r.tightness_at_eviction);
        assert!(!r.all_ok());
    }

    #[test]
    fn detects_negative_dual() {
        let u = Universe::uniform(2, 4);
        let trace = Trace::from_page_indices(&u, &pseudo_pages(150, 8, 4));
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let run = run_continuous(
            &trace,
            3,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let mut bad = run.clone();
        bad.state.y[0] = -1.0;
        let r = check_invariants(&trace, 3, &costs, Marginals::Derivative, &bad, false, 1e-6);
        assert!(!r.dual_nonneg);
    }
}
