//! The convex-programming view of the caching problem (Figures 1 and 4)
//! and the §2.3 invariant checker.
//!
//! The paper never *solves* the convex program — it is the scaffolding
//! that guides the primal–dual algorithm and carries the analysis. This
//! module materializes that scaffolding so the workspace can verify, on
//! concrete traces, everything the analysis asserts: that the algorithm's
//! decisions induce a feasible integer solution of (ICP), that its
//! objective equals the simulated cost, and that the recorded dual
//! trajectory satisfies the invariants of §2.3.

pub mod invariants;
pub mod program;
pub mod solution;

pub use invariants::{check_invariants, InvariantReport};
pub use program::{ConvexProgram, Violation};
pub use solution::Assignment;
