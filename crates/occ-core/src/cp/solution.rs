//! Assignments of the `x(p, j)` variables and their extraction from
//! simulation artifacts.
//!
//! Any algorithm run induces an integer assignment: `x(p, j) = 1` iff the
//! algorithm evicted `p` between its `j`-th and `(j+1)`-th requests
//! (§2.1: "every algorithm must imply a feasible solution to (ICP)").
//! [`Assignment::from_eviction_log`] performs that extraction from an
//! engine event log; [`Assignment::from_primal`] reads it off an ALG-CONT
//! trajectory.

use crate::alg::continuous::PrimalDualState;
use occ_sim::{EventLog, PageId, Trace};

/// A (possibly fractional) assignment of the `x(p, j)` variables, stored
/// densely per page.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// `x[p][j-1]` for `1 ≤ j ≤ r(p, T)`.
    x: Vec<Vec<f64>>,
}

impl Assignment {
    /// All-zero assignment with `intervals[p]` variables for page `p`.
    pub fn zeros(intervals: &[u32]) -> Self {
        Assignment {
            x: intervals.iter().map(|&r| vec![0.0; r as usize]).collect(),
        }
    }

    /// Value of `x(p, j)` (`j` 1-based).
    #[inline]
    pub fn get(&self, page: PageId, j: u32) -> f64 {
        self.x[page.index()][(j - 1) as usize]
    }

    /// Set `x(p, j) = v`.
    pub fn set(&mut self, page: PageId, j: u32, v: f64) {
        self.x[page.index()][(j - 1) as usize] = v;
    }

    /// Dense per-page view.
    pub fn per_page(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Total assigned mass (for integer assignments, the eviction count).
    pub fn total(&self) -> f64 {
        self.x.iter().flatten().sum()
    }

    /// Whether every variable is 0 or 1 (up to `eps`).
    pub fn is_integral(&self, eps: f64) -> bool {
        self.x
            .iter()
            .flatten()
            .all(|&v| v.abs() <= eps || (v - 1.0).abs() <= eps)
    }

    /// Extract the integer assignment induced by an engine run: for every
    /// `Evict` event at time `t` with victim `v`, set `x(v, j(v, t)) = 1`
    /// where `j(v, t)` is the number of requests of `v` up to `t`.
    pub fn from_eviction_log(trace: &Trace, events: &EventLog) -> Self {
        let idx = trace.index();
        let mut a = Assignment::zeros(&idx.total_requests);
        for &(t, victim) in &events.eviction_sequence() {
            let times = idx.request_times[victim.index()].as_slice();
            // j = number of requests of victim at or before t.
            let j = times.partition_point(|&rt| rt <= t) as u32;
            assert!(j >= 1, "evicted a page that was never requested");
            a.set(victim, j, 1.0);
        }
        a
    }

    /// Read the integer assignment off an ALG-CONT trajectory.
    pub fn from_primal(state: &PrimalDualState) -> Self {
        Assignment {
            x: state
                .x
                .iter()
                .map(|xs| xs.iter().map(|&b| f64::from(u8::from(b))).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{run_continuous, ConvexCaching, TieBreak};
    use crate::cost::{CostProfile, Marginals, Monomial};
    use crate::cp::program::ConvexProgram;
    use occ_sim::{Simulator, Universe};

    fn setup() -> (Trace, CostProfile) {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..60u32).map(|i| (i * 7 + i * i * 3) % 6).collect();
        (
            Trace::from_page_indices(&u, &pages),
            CostProfile::uniform(2, Monomial::power(2.0)),
        )
    }

    #[test]
    fn zeros_and_set_get() {
        let mut a = Assignment::zeros(&[2, 0, 1]);
        assert_eq!(a.get(PageId(0), 1), 0.0);
        a.set(PageId(0), 2, 1.0);
        a.set(PageId(2), 1, 0.5);
        assert_eq!(a.get(PageId(0), 2), 1.0);
        assert_eq!(a.total(), 1.5);
        assert!(!a.is_integral(1e-9));
        a.set(PageId(2), 1, 1.0);
        assert!(a.is_integral(1e-9));
    }

    #[test]
    fn log_extraction_is_feasible_and_matches_cost() {
        // §2.1's claim: any algorithm's decisions form a feasible (ICP)
        // solution whose objective equals the algorithm's eviction cost.
        let (trace, costs) = setup();
        let k = 3;
        let mut alg = ConvexCaching::new(costs.clone());
        let r = Simulator::new(k).record_events(true).run(&mut alg, &trace);
        let a = Assignment::from_eviction_log(&trace, r.events.as_ref().unwrap());
        assert!(a.is_integral(0.0));
        assert_eq!(a.total() as u64, r.stats.total_evictions());

        let cp = ConvexProgram::new(&trace, k);
        cp.check_feasible(&a, 1e-9)
            .expect("induced solution feasible");
        let per_user = cp.fractional_misses(&a);
        for (u, &m) in per_user.iter().enumerate() {
            assert_eq!(m as u64, r.stats.eviction_vector()[u]);
        }
        // Objective equals Σ f_i(evictions_i).
        let obj = cp.objective(&a, &costs);
        let direct = costs.total_cost(&r.stats.eviction_vector());
        assert!((obj - direct).abs() < 1e-9);
    }

    #[test]
    fn primal_extraction_matches_log_extraction() {
        let (trace, costs) = setup();
        let k = 3;
        let run = run_continuous(
            &trace,
            k,
            &costs,
            Marginals::Derivative,
            TieBreak::OldestRequest,
        );
        let from_primal = Assignment::from_primal(&run.state);

        let mut alg = ConvexCaching::new(costs);
        let r = Simulator::new(k).record_events(true).run(&mut alg, &trace);
        let from_log = Assignment::from_eviction_log(&trace, r.events.as_ref().unwrap());
        assert_eq!(from_primal, from_log);
    }

    #[test]
    fn lru_induced_solution_is_feasible_too() {
        // Not just our algorithm: any valid policy induces feasibility.
        struct EvictFirst;
        impl occ_sim::ReplacementPolicy for EvictFirst {
            fn name(&self) -> String {
                "evict-first".into()
            }
            fn choose_victim(&mut self, ctx: &occ_sim::EngineCtx, _: PageId) -> PageId {
                ctx.cache.pages()[0]
            }
        }
        let (trace, _) = setup();
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut EvictFirst, &trace);
        let a = Assignment::from_eviction_log(&trace, r.events.as_ref().unwrap());
        let cp = ConvexProgram::new(&trace, 2);
        cp.check_feasible(&a, 1e-9).expect("feasible");
    }
}
