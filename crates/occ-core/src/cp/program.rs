//! Construction of (ICP)/(CP) from a trace — Figure 1 — and the
//! cache-size-`h` variants (ICP-h)/(CP-h) — Figure 4.
//!
//! Variables: `x(p, j)` for each page `p` and each request index
//! `1 ≤ j ≤ r(p, T)`, meaning "`p` is evicted between its `j`-th and
//! `(j+1)`-th request". Constraints: for every time `t`,
//! `Σ_{p ∈ B(t) \ {p_t}} x(p, j(p,t)) ≥ |B(t)| − k` — all but `k` of the
//! pages seen so far must be outside the cache, and the page requested at
//! `t` cannot be one of the excluded ones.

use crate::cost::CostProfile;
use crate::cp::solution::Assignment;
use occ_sim::{PageId, Trace, UserId};

/// One covering constraint (indexed by a time `t`).
#[derive(Clone, Debug)]
struct Constraint {
    /// Time this constraint belongs to.
    t: u64,
    /// Variables on the left-hand side: `(page, j)` with `j` 1-based.
    vars: Vec<(u32, u32)>,
    /// Right-hand side `|B(t)| − cache_size` (may be ≤ 0, in which case
    /// the constraint is vacuous but still recorded).
    rhs: i64,
}

/// A constraint violation found by [`ConvexProgram::check_feasible`].
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Time of the violated constraint.
    pub t: u64,
    /// Left-hand side value achieved.
    pub lhs: f64,
    /// Required right-hand side.
    pub rhs: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "constraint at t={} violated: lhs {} < rhs {}",
            self.t, self.lhs, self.rhs
        )
    }
}

/// The (integer) convex program of Figure 1 (or Figure 4 with `h < k`).
#[derive(Clone, Debug)]
pub struct ConvexProgram {
    cache_size: usize,
    /// `r(p, T)`: number of interval variables per page.
    intervals_per_page: Vec<u32>,
    /// Owner of each page (for the objective).
    owner: Vec<UserId>,
    num_users: u32,
    constraints: Vec<Constraint>,
}

impl ConvexProgram {
    /// Build the program for `trace` with the given cache size (`k` for
    /// Figure 1, `h ≤ k` for Figure 4).
    pub fn new(trace: &Trace, cache_size: usize) -> Self {
        assert!(cache_size > 0);
        let universe = trace.universe();
        let num_pages = universe.num_pages() as usize;
        let mut occ = vec![0u32; num_pages];
        let mut seen: Vec<u32> = Vec::new(); // pages seen, in first-seen order
        let mut seen_flag = vec![false; num_pages];
        let mut constraints = Vec::with_capacity(trace.len());
        for (t, req) in trace.iter() {
            let pi = req.page.index();
            if !seen_flag[pi] {
                seen_flag[pi] = true;
                seen.push(req.page.0);
            }
            occ[pi] += 1;
            // Constraint over B(t) \ {p_t} with the *current* interval
            // index of every other seen page.
            let vars: Vec<(u32, u32)> = seen
                .iter()
                .filter(|&&p| p != req.page.0)
                .map(|&p| (p, occ[p as usize]))
                .collect();
            let rhs = seen.len() as i64 - cache_size as i64;
            constraints.push(Constraint { t, vars, rhs });
        }
        ConvexProgram {
            cache_size,
            intervals_per_page: occ,
            owner: (0..num_pages)
                .map(|p| universe.owner(PageId(p as u32)))
                .collect(),
            num_users: universe.num_users(),
            constraints,
        }
    }

    /// The cache size this program was built with.
    pub fn cache_size(&self) -> usize {
        self.cache_size
    }

    /// Total number of `x(p, j)` variables (= number of requests `T`).
    pub fn num_vars(&self) -> usize {
        self.intervals_per_page.iter().map(|&r| r as usize).sum()
    }

    /// Number of covering constraints (= `T`).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of constraints with a positive right-hand side (the binding
    /// ones; the rest are vacuous).
    pub fn num_binding_constraints(&self) -> usize {
        self.constraints.iter().filter(|c| c.rhs > 0).count()
    }

    /// `r(p, T)` for each page.
    pub fn intervals_per_page(&self) -> &[u32] {
        &self.intervals_per_page
    }

    /// An all-zero assignment shaped for this program.
    pub fn zero_assignment(&self) -> Assignment {
        Assignment::zeros(&self.intervals_per_page)
    }

    /// Check `assignment` against every covering constraint and the
    /// `0 ≤ x ≤ 1` bounds, up to tolerance `eps`. Returns the first
    /// violation found, if any.
    pub fn check_feasible(&self, assignment: &Assignment, eps: f64) -> Result<(), Violation> {
        for (p, xs) in assignment.per_page().iter().enumerate() {
            assert_eq!(
                xs.len() as u32,
                self.intervals_per_page[p],
                "assignment shape mismatch on page p{p}"
            );
            for (j, &v) in xs.iter().enumerate() {
                if !(-eps..=1.0 + eps).contains(&v) {
                    return Err(Violation {
                        t: 0,
                        lhs: v,
                        rhs: f64::from(u8::from(v > 1.0)),
                    });
                }
                let _ = j;
            }
        }
        for c in &self.constraints {
            if c.rhs <= 0 {
                continue;
            }
            let lhs: f64 = c
                .vars
                .iter()
                .map(|&(p, j)| assignment.get(PageId(p), j))
                .sum();
            if lhs + eps < c.rhs as f64 {
                return Err(Violation {
                    t: c.t,
                    lhs,
                    rhs: c.rhs as f64,
                });
            }
        }
        Ok(())
    }

    /// The objective `Σ_i f_i(Σ_{p ∈ P_i} Σ_j x(p, j))` for a (possibly
    /// fractional) assignment.
    pub fn objective(&self, assignment: &Assignment, costs: &CostProfile) -> f64 {
        let per_user = self.fractional_misses(assignment);
        per_user
            .iter()
            .enumerate()
            .map(|(u, &m)| costs.user(UserId(u as u32)).eval(m))
            .sum()
    }

    /// Per-user total eviction mass `Σ_{p ∈ P_i} Σ_j x(p, j)`.
    pub fn fractional_misses(&self, assignment: &Assignment) -> Vec<f64> {
        let mut per_user = vec![0.0f64; self.num_users as usize];
        for (p, xs) in assignment.per_page().iter().enumerate() {
            let u = self.owner[p].index();
            per_user[u] += xs.iter().sum::<f64>();
        }
        per_user
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostProfile, Monomial};
    use occ_sim::Universe;

    fn trace() -> Trace {
        let u = Universe::uniform(2, 2); // u0: p0 p1; u1: p2 p3
        Trace::from_page_indices(&u, &[0, 2, 0, 3, 2])
    }

    #[test]
    fn program_shape() {
        let cp = ConvexProgram::new(&trace(), 2);
        assert_eq!(cp.num_vars(), 5); // one variable per request
        assert_eq!(cp.num_constraints(), 5);
        assert_eq!(cp.intervals_per_page(), &[2, 0, 2, 1]);
        // |B(t)| over time: 1,2,2,3,3 → rhs −1, 0, 0, 1, 1.
        assert_eq!(cp.num_binding_constraints(), 2);
    }

    #[test]
    fn zero_assignment_feasible_only_when_cache_large_enough() {
        let t = trace();
        let big = ConvexProgram::new(&t, 3); // 3 distinct pages fit
        assert!(big.check_feasible(&big.zero_assignment(), 1e-9).is_ok());
        let small = ConvexProgram::new(&t, 2);
        let err = small
            .check_feasible(&small.zero_assignment(), 1e-9)
            .unwrap_err();
        assert_eq!(err.t, 3); // first time |B(t)| = 3 > 2
        assert_eq!(err.rhs, 1.0);
    }

    #[test]
    fn eviction_assignment_becomes_feasible() {
        let t = trace();
        let cp = ConvexProgram::new(&t, 2);
        let mut a = cp.zero_assignment();
        // Evict p0 during its 2nd interval? No — constraints at t=3,4 need
        // a page other than p_t excluded. At t=3 (p3): B={0,2,3}; exclude
        // p0's interval 2 (its current interval). At t=4 (p2): B same;
        // exclude p0 again (still interval 2).
        a.set(PageId(0), 2, 1.0);
        assert!(cp.check_feasible(&a, 1e-9).is_ok());
    }

    #[test]
    fn objective_applies_user_costs() {
        let t = trace();
        let cp = ConvexProgram::new(&t, 2);
        let costs = CostProfile::uniform(2, Monomial::power(2.0));
        let mut a = cp.zero_assignment();
        a.set(PageId(0), 1, 1.0); // u0: 1 eviction
        a.set(PageId(0), 2, 1.0); // u0: 2 evictions
        a.set(PageId(2), 1, 1.0); // u1: 1 eviction
        assert_eq!(cp.fractional_misses(&a), vec![2.0, 1.0]);
        assert_eq!(cp.objective(&a, &costs), 4.0 + 1.0);
    }

    #[test]
    fn fractional_assignment_supported() {
        let t = trace();
        let cp = ConvexProgram::new(&t, 2);
        let mut a = cp.zero_assignment();
        a.set(PageId(0), 2, 0.5);
        a.set(PageId(2), 1, 0.5);
        // t=3: vars (p0,2),(p2,1): lhs = 1.0 ≥ 1 ✓; t=4: vars (p0,2),(p3,1):
        // lhs = 0.5 < 1 ✗.
        let err = cp.check_feasible(&a, 1e-9).unwrap_err();
        assert_eq!(err.t, 4);
        a.set(PageId(3), 1, 0.5);
        assert!(cp.check_feasible(&a, 1e-9).is_ok());
    }

    #[test]
    fn smaller_cache_h_program_is_stricter() {
        // Figure 4: same structure, tighter rhs.
        let u = Universe::single_user(4);
        let t = Trace::from_page_indices(&u, &[0, 1, 2, 3]);
        let k_prog = ConvexProgram::new(&t, 3);
        let h_prog = ConvexProgram::new(&t, 2);
        assert!(h_prog.num_binding_constraints() > k_prog.num_binding_constraints());
        let a = k_prog.zero_assignment();
        assert!(k_prog.check_feasible(&a, 1e-9).is_err());
        assert!(h_prog.check_feasible(&a, 1e-9).is_err());
    }

    #[test]
    fn bounds_checked() {
        let t = trace();
        let cp = ConvexProgram::new(&t, 2);
        let mut a = cp.zero_assignment();
        a.set(PageId(0), 1, 1.5); // out of [0, 1]
        assert!(cp.check_feasible(&a, 1e-9).is_err());
    }
}
