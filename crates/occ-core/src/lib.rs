#![warn(missing_docs)]
//! Online caching with convex costs — the primary contribution of
//! Menache & Singh, *Online Caching with Convex Costs* (SPAA 2015).
//!
//! A single cache of size `k` is shared by `n` tenants; tenant `i` pays
//! `f_i(m_i)` for `m_i` misses, with `f_i` convex and increasing. This
//! crate implements:
//!
//! * the **cost-function library** ([`cost`]): monomials, polynomials,
//!   piecewise-linear SLA shapes, combinators, and the curvature constant
//!   `α = sup x f'(x)/f(x)` that governs every bound;
//! * **ALG-DISCRETE** ([`alg::ConvexCaching`]) — the paper's Figure 3
//!   budget algorithm in closed form (`O(log k)` structure maintenance
//!   per request instead of the figure's `O(k)` sweeps);
//! * **ALG-CONT** ([`alg::run_continuous`]) — Figure 2 with the full
//!   primal–dual trajectory `(x°, y°, z°)` recorded;
//! * the **convex programs** (ICP)/(CP)/(CP-h) of Figures 1 and 4
//!   ([`cp`]), with feasibility checking and objective evaluation;
//! * the **§2.3 invariant checker** ([`cp::invariants`]);
//! * the **theory toolkit** ([`theory`]): Theorem 1.1/1.3 right-hand
//!   sides, Corollary 1.2 and Theorem 1.4 factors, and a Claim 2.3
//!   verifier.
//!
//! # Quickstart
//!
//! ```
//! use occ_core::prelude::*;
//! use occ_sim::prelude::*;
//!
//! // Two tenants share a cache of 3 pages. Tenant 0 has a steep SLA
//! // (quadratic), tenant 1 pays per miss.
//! let universe = Universe::uniform(2, 4);
//! let costs = CostProfile::new(vec![
//!     std::sync::Arc::new(Monomial::power(2.0)) as CostFn,
//!     std::sync::Arc::new(Linear::unit()) as CostFn,
//! ]);
//!
//! let pages: Vec<u32> = (0..100).map(|i| (i * 5 + 2) % 8).collect();
//! let trace = Trace::from_page_indices(&universe, &pages);
//!
//! let mut alg = ConvexCaching::new(costs.clone());
//! let result = Simulator::new(3).run(&mut alg, &trace);
//! let cost = costs.total_cost(&result.miss_vector());
//! assert!(cost > 0.0);
//! ```

pub mod alg;
pub mod cost;
pub mod cp;
pub mod flush;
pub mod theory;

pub use alg::{run_continuous, ContinuousRun, ConvexCaching, DiscreteReference, TieBreak};
pub use cost::{
    CostFn, CostFunction, CostPathology, CostProfile, Exponential, FaultyCost, HugeCost, Linear,
    Marginals, Monomial, PiecewiseLinear, Polynomial, Scaled, SumCost, ThresholdCost,
};
pub use cp::{check_invariants, Assignment, ConvexProgram, InvariantReport};
pub use flush::with_dummy_flush;
pub use theory::{
    alpha_numeric, alpha_of_profile, check_claim_2_3, corollary_1_2_factor, theorem_1_1_rhs,
    theorem_1_3_factor, theorem_1_3_rhs, theorem_1_4_lower, try_check_claim_2_3,
};

/// Convenient glob import.
pub mod prelude {
    pub use crate::alg::{
        run_continuous, ContinuousRun, ConvexCaching, DiscreteReference, TieBreak,
    };
    pub use crate::cost::{
        CostFn, CostFunction, CostPathology, CostProfile, Exponential, FaultyCost, HugeCost,
        Linear, Marginals, Monomial, PiecewiseLinear, Polynomial, Scaled, SumCost, ThresholdCost,
    };
    pub use crate::cp::{check_invariants, Assignment, ConvexProgram, InvariantReport};
    pub use crate::flush::with_dummy_flush;
    pub use crate::theory::{
        alpha_numeric, alpha_of_profile, check_claim_2_3, corollary_1_2_factor, theorem_1_1_rhs,
        theorem_1_3_factor, theorem_1_3_rhs, theorem_1_4_lower, try_check_claim_2_3,
    };
}
