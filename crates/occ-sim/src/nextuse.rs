//! Forward-reference index over a trace: "when is this page requested
//! next?".
//!
//! Offline algorithms (Belady's MIN and its cost-aware variant in
//! `occ-offline`) need, at time `t`, the next request time of each cached
//! page. The index precomputes, for every request, the time of the *next*
//! request to the same page, and supports an `O(log)` arbitrary
//! `(page, t)` lookup via binary search over each page's request times.

use crate::ids::{PageId, Time};
use crate::trace::Trace;

/// Sentinel meaning "never requested again".
pub const NEVER: Time = Time::MAX;

/// Precomputed next-use times for a fixed trace.
#[derive(Clone, Debug)]
pub struct NextUseIndex {
    /// `next_of_request[t]` = time of the next request to page `p_t` after
    /// `t`, or [`NEVER`].
    next_of_request: Vec<Time>,
    /// Ascending request times per page.
    request_times: Vec<Vec<Time>>,
}

impl NextUseIndex {
    /// Build the index in `O(T + |P|)`.
    pub fn build(trace: &Trace) -> Self {
        let pages = trace.universe().num_pages() as usize;
        let mut request_times: Vec<Vec<Time>> = vec![Vec::new(); pages];
        for (t, r) in trace.iter() {
            request_times[r.page.index()].push(t);
        }
        let mut next_of_request = vec![NEVER; trace.len()];
        let mut last_seen: Vec<Option<Time>> = vec![None; pages];
        for (t, r) in trace.iter().collect::<Vec<_>>().into_iter().rev() {
            if let Some(next) = last_seen[r.page.index()] {
                next_of_request[t as usize] = next;
            }
            last_seen[r.page.index()] = Some(t);
        }
        NextUseIndex {
            next_of_request,
            request_times,
        }
    }

    /// Next request time of the page requested at `t`, or [`NEVER`].
    #[inline]
    pub fn next_of_request(&self, t: Time) -> Time {
        self.next_of_request[t as usize]
    }

    /// Next request time of `page` strictly after `t`, or [`NEVER`].
    pub fn next_request_after(&self, page: PageId, t: Time) -> Time {
        let times = &self.request_times[page.index()];
        match times.binary_search(&(t + 1)) {
            Ok(i) => times[i],
            Err(i) => times.get(i).copied().unwrap_or(NEVER),
        }
    }

    /// First request time of `page` at or after `t`, or [`NEVER`].
    pub fn next_request_at_or_after(&self, page: PageId, t: Time) -> Time {
        let times = &self.request_times[page.index()];
        match times.binary_search(&t) {
            Ok(i) => times[i],
            Err(i) => times.get(i).copied().unwrap_or(NEVER),
        }
    }

    /// All request times of `page`, ascending.
    pub fn request_times(&self, page: PageId) -> &[Time] {
        &self.request_times[page.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Universe;

    fn trace() -> Trace {
        let u = Universe::single_user(3);
        //                 t: 0  1  2  3  4  5
        Trace::from_page_indices(&u, &[0, 1, 0, 2, 1, 0])
    }

    #[test]
    fn next_of_request() {
        let idx = NextUseIndex::build(&trace());
        assert_eq!(idx.next_of_request(0), 2); // p0 next at t=2
        assert_eq!(idx.next_of_request(1), 4); // p1 next at t=4
        assert_eq!(idx.next_of_request(2), 5); // p0 next at t=5
        assert_eq!(idx.next_of_request(3), NEVER); // p2 never again
        assert_eq!(idx.next_of_request(5), NEVER);
    }

    #[test]
    fn arbitrary_lookup() {
        let idx = NextUseIndex::build(&trace());
        assert_eq!(idx.next_request_after(PageId(0), 0), 2);
        assert_eq!(idx.next_request_after(PageId(0), 2), 5);
        assert_eq!(idx.next_request_after(PageId(0), 5), NEVER);
        assert_eq!(idx.next_request_after(PageId(2), 0), 3);
        assert_eq!(idx.next_request_after(PageId(2), 3), NEVER);
        // at-or-after includes the boundary
        assert_eq!(idx.next_request_at_or_after(PageId(0), 2), 2);
        assert_eq!(idx.next_request_at_or_after(PageId(0), 3), 5);
    }

    #[test]
    fn request_times_exposed() {
        let idx = NextUseIndex::build(&trace());
        assert_eq!(idx.request_times(PageId(0)), &[0, 2, 5]);
        assert_eq!(idx.request_times(PageId(1)), &[1, 4]);
    }

    #[test]
    fn never_requested_page() {
        let u = Universe::single_user(4);
        let t = Trace::from_page_indices(&u, &[0, 1]);
        let idx = NextUseIndex::build(&t);
        assert_eq!(idx.next_request_after(PageId(3), 0), NEVER);
        assert!(idx.request_times(PageId(3)).is_empty());
    }
}
