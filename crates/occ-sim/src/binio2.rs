//! Compressed binary traces (`occbin02`): delta + varint encoding for
//! cold storage.
//!
//! `occbin01` ([`crate::binio`]) spends four bytes per request no matter
//! what the trace looks like. Real access streams are compressible two
//! different ways: *locally clustered* streams (sequential scans, block
//! runs) have tiny differences between consecutive page ids, while
//! *skewed* streams (Zipf-like popularity) have small ids most of the
//! time but sign-expanded jumps between them. Neither coding wins
//! everywhere, so the request stream is cut into fixed 65 536-request
//! chunks and each chunk carries a one-byte mode tag choosing whichever
//! LEB128-varint coding is smaller for *its* ids: `0` = zigzag deltas
//! (`page[t] − page[t−1]`, base carried across chunks, `page[−1] = 0`),
//! `1` = raw page ids. The same run-length idea compresses the owner
//! table: ownership is assigned in contiguous stretches, so it is
//! stored as `(user, run-length)` pairs.
//!
//! ```text
//! offset  size      field
//! 0       8         magic  b"occbin02"
//! 8       varint    num_users   (> 0)
//! …       varint    num_pages
//! …       pairs     owner table runs: (varint user, varint run-length > 0)
//!                   until exactly num_pages pages are covered
//! …       varint    num_requests
//! …       chunks    requests in 65 536-request chunks (last one ragged):
//!                   1-byte mode tag, then one varint per request —
//!                   mode 0: zigzag(page[t] − page[t−1]), mode 1: page[t]
//! …       8         footer magic b"occsum02"   (required)
//! …       4         crc32 of the encoded request bytes (u32 LE,
//!                   tag bytes included)
//! ```
//!
//! Unlike occbin01 (whose footer is optional for legacy files), the
//! occbin02 footer is mandatory — the format is new, so there are no
//! legacy files to accept, and requiring it means truncation after the
//! last request is always detected. The checksum covers the encoded
//! request-delta bytes, mirroring occbin01's request-payload coverage.
//!
//! [`Binary2TraceReader`] streams: it decodes bounded chunks and serves
//! them through [`RequestSource`], so a packed multi-billion-request
//! trace replays without ever materializing. The decoder's memory is the
//! owner table plus one chunk, independent of the request count.

use crate::checksum::Crc32;
use crate::engine::EngineCtx;
use crate::ids::{PageId, UserId};
use crate::source::{RequestSource, SeekableSource};
use crate::textio::TraceIoError;
use crate::trace::{Request, Trace, TraceBuilder, Universe};
use std::io::{Read, Write};

/// First eight bytes of every packed (delta/varint) binary trace.
pub const BINARY2_TRACE_MAGIC: [u8; 8] = *b"occbin02";

/// Magic introducing the mandatory checksum footer after the last
/// request delta.
pub const BINARY2_TRACE_FOOTER_MAGIC: [u8; 8] = *b"occsum02";

/// Requests per encoded chunk — the adaptive-coding granularity, and
/// the unit the streaming reader decodes at a time. Writer and reader
/// must agree on this number: chunk boundaries are implied by position,
/// not recorded in the file.
const CHUNK_REQS: usize = 64 * 1024;

/// Chunk mode tags: each chunk is coded whichever way is smaller.
const CHUNK_MODE_DELTA: u8 = 0;
const CHUNK_MODE_RAW: u8 = 1;

/// Bytes pulled from the underlying reader per refill.
const RAW_CHUNK: usize = 64 * 1024;

/// A varint may carry at most 10 bytes for a u64 (9 × 7 payload bits
/// plus a final byte contributing the top bit).
const MAX_VARINT_LEN: usize = 10;

fn parse_err(msg: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse(msg.into())
}

/// Append `value` as an LEB128 varint.
fn push_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Outcome of decoding one varint from the front of a buffer.
enum Varint {
    /// A complete varint: its value and how many bytes it spanned.
    Done(u64, usize),
    /// The buffer ends mid-varint; more bytes may complete it.
    Incomplete,
}

/// Decode one LEB128 varint from the front of `buf`. Over-long or
/// overflowing encodings are parse errors; a buffer that simply ends
/// early is [`Varint::Incomplete`] (the caller decides whether that
/// means "refill" or "truncated file").
fn pop_varint(buf: &[u8]) -> Result<Varint, TraceIoError> {
    let mut value: u64 = 0;
    for (i, &byte) in buf.iter().take(MAX_VARINT_LEN).enumerate() {
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only contribute the single remaining bit.
        if i == MAX_VARINT_LEN - 1 && payload > 1 {
            return Err(parse_err("varint overflows a u64"));
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(Varint::Done(value, i + 1));
        }
    }
    if buf.len() >= MAX_VARINT_LEN {
        return Err(parse_err(format!(
            "varint longer than {MAX_VARINT_LEN} bytes"
        )));
    }
    Ok(Varint::Incomplete)
}

/// Encoded length of `value` as an LEB128 varint, without encoding it.
fn varint_len(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Encode one chunk of page ids: cost both codings in a sizing pass,
/// tag the chunk with the winner (ties go to delta), and emit it.
/// `prev` is the delta base — the last page of the previous chunk — and
/// leaves as the last page of this one regardless of the mode chosen,
/// so a delta chunk can follow a raw chunk seamlessly.
fn encode_chunk(buf: &mut Vec<u8>, pages: &[u32], prev: &mut i64) {
    if pages.is_empty() {
        return;
    }
    let mut delta_bytes = 0usize;
    let mut raw_bytes = 0usize;
    let mut base = *prev;
    for &page in pages {
        delta_bytes += varint_len(zigzag(page as i64 - base));
        raw_bytes += varint_len(page as u64);
        base = page as i64;
    }
    if delta_bytes <= raw_bytes {
        buf.push(CHUNK_MODE_DELTA);
        for &page in pages {
            push_varint(buf, zigzag(page as i64 - *prev));
            *prev = page as i64;
        }
    } else {
        buf.push(CHUNK_MODE_RAW);
        for &page in pages {
            push_varint(buf, page as u64);
        }
        *prev = pages[pages.len() - 1] as i64;
    }
}

/// Map a signed delta onto an unsigned varint domain: small magnitudes
/// of either sign get small codes.
fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(coded: u64) -> i64 {
    ((coded >> 1) as i64) ^ -((coded & 1) as i64)
}

/// Read one varint directly from a reader, one byte at a time — used
/// for the small header fields only; the request stream goes through
/// the chunked buffer.
fn read_varint<R: Read>(r: &mut R, what: &str) -> Result<u64, TraceIoError> {
    let mut bytes = [0u8; MAX_VARINT_LEN];
    for i in 0..MAX_VARINT_LEN {
        let mut b = [0u8; 1];
        r.read_exact(&mut b).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                parse_err(format!(
                    "truncated binary trace: unexpected EOF mid-varint in {what}"
                ))
            } else {
                TraceIoError::Io(e)
            }
        })?;
        bytes[i] = b[0];
        if b[0] & 0x80 == 0 {
            return match pop_varint(&bytes[..=i])? {
                Varint::Done(v, _) => Ok(v),
                Varint::Incomplete => unreachable!("terminator byte was just read"),
            };
        }
    }
    Err(parse_err(format!(
        "varint longer than {MAX_VARINT_LEN} bytes in {what}"
    )))
}

fn read_varint_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, TraceIoError> {
    let v = read_varint(r, what)?;
    u32::try_from(v).map_err(|_| parse_err(format!("{what} {v} does not fit in 32 bits")))
}

/// Read the magic + varint universe header, leaving the reader
/// positioned at the request count.
fn read_universe_v2<R: Read>(r: &mut R) -> Result<Universe, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            parse_err("truncated binary trace: unexpected EOF in the magic")
        } else {
            TraceIoError::Io(e)
        }
    })?;
    if magic != BINARY2_TRACE_MAGIC {
        return Err(parse_err(format!(
            "bad magic {magic:?}, expected {BINARY2_TRACE_MAGIC:?}"
        )));
    }
    let num_users = read_varint_u32(r, "the user count")?;
    if num_users == 0 {
        return Err(parse_err("a trace needs at least one user"));
    }
    let num_pages = read_varint_u32(r, "the page count")? as usize;
    let mut owners: Vec<UserId> = Vec::with_capacity(num_pages.min(CHUNK_REQS));
    while owners.len() < num_pages {
        let user = read_varint_u32(r, "the owner table")?;
        if user >= num_users {
            return Err(parse_err(format!("owner {user} out of range")));
        }
        let run = read_varint(r, "the owner table")?;
        if run == 0 {
            return Err(parse_err("zero-length owner run"));
        }
        let remaining = (num_pages - owners.len()) as u64;
        if run > remaining {
            return Err(parse_err(format!(
                "owner run of {run} pages overshoots the {num_pages}-page table"
            )));
        }
        for _ in 0..run {
            owners.push(UserId(user));
        }
    }
    Ok(Universe::new(num_users, owners))
}

/// Write the varint header shared by the whole-trace and streaming
/// writers; returns the header bytes.
fn encode_header(universe: &Universe, count: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&BINARY2_TRACE_MAGIC);
    push_varint(&mut buf, universe.num_users() as u64);
    push_varint(&mut buf, universe.num_pages() as u64);
    let owners = universe.owners();
    let mut i = 0usize;
    while i < owners.len() {
        let user = owners[i];
        let mut run = 1u64;
        while i + (run as usize) < owners.len() && owners[i + run as usize] == user {
            run += 1;
        }
        push_varint(&mut buf, user.0 as u64);
        push_varint(&mut buf, run);
        i += run as usize;
    }
    push_varint(&mut buf, count);
    buf
}

/// Write an entire in-memory `trace` in the packed format.
pub fn write_trace_binary_v2<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(&encode_header(trace.universe(), trace.len() as u64))?;
    let mut crc = Crc32::new();
    let mut buf = Vec::new();
    let mut pages = Vec::with_capacity(CHUNK_REQS.min(trace.len()));
    let mut prev: i64 = 0;
    for reqs in trace.requests().chunks(CHUNK_REQS) {
        pages.clear();
        pages.extend(reqs.iter().map(|r| r.page.0));
        buf.clear();
        encode_chunk(&mut buf, &pages, &mut prev);
        crc.update(&buf);
        w.write_all(&buf)?;
    }
    w.write_all(&BINARY2_TRACE_FOOTER_MAGIC)?;
    w.write_all(&crc.value().to_le_bytes())?;
    Ok(())
}

/// Read a whole packed trace into memory. For traces that do not fit,
/// use [`Binary2TraceReader`] and stream instead.
pub fn read_trace_binary_v2<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let mut reader = Binary2TraceReader::new(r)?;
    let mut builder = TraceBuilder::new(reader.universe.clone());
    loop {
        match reader.refill() {
            Ok(true) => {
                for req in &reader.chunk {
                    builder.push(req.page);
                }
                let n = reader.chunk.len();
                reader.pos = n;
                reader.served += n as u64;
            }
            Ok(false) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(builder.build())
}

/// Incremental packed-trace writer. The varint header cannot be patched
/// in place, so the request count must be promised up front (every call
/// site — `occ trace pack`, `occ generate` — knows it);
/// [`finish`](Self::finish) fails if the promise was not kept.
pub struct Binary2TraceWriter<W: Write> {
    sink: W,
    universe: Universe,
    promised: u64,
    written: u64,
    prev: i64,
    /// Page ids of the chunk being accumulated — the adaptive coder
    /// needs the whole chunk in hand to cost both codings.
    pending: Vec<u32>,
    buf: Vec<u8>,
    crc: Crc32,
}

impl<W: Write> Binary2TraceWriter<W> {
    /// Write the header for `universe`, promising exactly `count`
    /// requests, and return a writer ready to accept them.
    pub fn new(universe: Universe, count: u64, mut sink: W) -> Result<Self, TraceIoError> {
        sink.write_all(&encode_header(&universe, count))?;
        Ok(Binary2TraceWriter {
            sink,
            universe,
            promised: count,
            written: 0,
            prev: 0,
            pending: Vec::new(),
            buf: Vec::new(),
            crc: Crc32::new(),
        })
    }

    /// Encode and write the accumulated chunk (a no-op when empty).
    fn flush_chunk(&mut self) -> Result<(), TraceIoError> {
        self.buf.clear();
        encode_chunk(&mut self.buf, &self.pending, &mut self.prev);
        self.pending.clear();
        self.crc.update(&self.buf);
        self.sink.write_all(&self.buf)?;
        Ok(())
    }

    /// Append one request. Rejects pages outside the universe, owner
    /// claims that disagree with it, and pushes past the promised count.
    pub fn push(&mut self, req: Request) -> Result<(), TraceIoError> {
        match self.universe.try_owner(req.page) {
            None => {
                return Err(parse_err(format!(
                    "request {}: page {} outside the universe",
                    self.written, req.page
                )))
            }
            Some(owner) if owner != req.user => {
                return Err(parse_err(format!(
                    "request {}: {} does not own {}",
                    self.written, req.user, req.page
                )))
            }
            Some(_) => {}
        }
        if self.written == self.promised {
            return Err(parse_err(format!(
                "more requests than the promised {}",
                self.promised
            )));
        }
        self.pending.push(req.page.0);
        if self.pending.len() == CHUNK_REQS {
            self.flush_chunk()?;
        }
        self.written += 1;
        Ok(())
    }

    /// Encode the ragged final chunk, append the checksum footer, and
    /// return the sink. Errors if fewer requests were pushed than
    /// promised (the header already claims the promised count, so the
    /// file would lie).
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if self.written != self.promised {
            return Err(parse_err(format!(
                "promised {} requests but {} were pushed",
                self.promised, self.written
            )));
        }
        self.flush_chunk()?;
        self.sink.write_all(&BINARY2_TRACE_FOOTER_MAGIC)?;
        self.sink.write_all(&self.crc.value().to_le_bytes())?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming decoder for packed traces: a [`RequestSource`] whose
/// memory footprint is the owner table plus one chunk, independent of
/// the request count.
///
/// Like [`BinaryTraceReader`](crate::binio::BinaryTraceReader), a
/// mid-stream failure ends the stream early and parks the error in
/// [`error`](Self::error) / [`finish`](Self::finish).
pub struct Binary2TraceReader<R: Read> {
    reader: R,
    universe: Universe,
    total: u64,
    served: u64,
    /// Previous decoded page id (the delta base), as a signed value so
    /// the first delta (base 0) needs no special case.
    prev: i64,
    /// Raw undecoded bytes: `raw[raw_start..]` is pending input.
    raw: Vec<u8>,
    raw_start: usize,
    /// Whether the underlying reader has reached EOF.
    raw_eof: bool,
    chunk: Vec<Request>,
    /// Next index to serve from `chunk`.
    pos: usize,
    error: Option<TraceIoError>,
    crc: Crc32,
    footer_checked: bool,
}

impl<R: Read> Binary2TraceReader<R> {
    /// Read the header (universe + request count) and return a source
    /// positioned at the first request.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let universe = read_universe_v2(&mut reader)?;
        let total = read_varint(&mut reader, "the request count")?;
        Ok(Binary2TraceReader {
            reader,
            universe,
            total,
            served: 0,
            prev: 0,
            raw: Vec::with_capacity(RAW_CHUNK),
            raw_start: 0,
            raw_eof: false,
            chunk: Vec::new(),
            pos: 0,
            error: None,
            crc: Crc32::new(),
            footer_checked: false,
        })
    }

    /// Total requests promised by the header.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early, so callers can surface truncation with a `?`.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pull more bytes from the reader into `raw`, compacting first.
    /// Returns how many new bytes arrived (0 at EOF).
    fn fill_raw(&mut self) -> Result<usize, TraceIoError> {
        if self.raw_start > 0 {
            self.raw.drain(..self.raw_start);
            self.raw_start = 0;
        }
        if self.raw_eof {
            return Ok(0);
        }
        let old = self.raw.len();
        self.raw.resize(old + RAW_CHUNK, 0);
        let mut got = 0usize;
        while got == 0 {
            match self.reader.read(&mut self.raw[old + got..]) {
                Ok(0) => {
                    self.raw_eof = true;
                    break;
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.raw.truncate(old);
                    return Err(TraceIoError::Io(e));
                }
            }
        }
        self.raw.truncate(old + got);
        Ok(got)
    }

    /// Decode the next chunk of requests. `Ok(true)` leaves a fresh
    /// chunk in `self.chunk` with `pos == 0`; `Ok(false)` means the
    /// stream is cleanly drained (footer verified).
    fn refill(&mut self) -> Result<bool, TraceIoError> {
        let buffered = (self.chunk.len() - self.pos) as u64;
        let remaining = self.total - self.served - buffered;
        if remaining == 0 {
            if !self.footer_checked {
                self.footer_checked = true;
                self.check_footer()?;
            }
            return Ok(false);
        }
        // `refill` is only reached with the previous chunk fully
        // consumed, so `take` lands on exactly the boundaries the
        // writer chunked at: CHUNK_REQS apiece, ragged last.
        let take = (remaining as usize).min(CHUNK_REQS);
        self.chunk.clear();
        self.pos = 0;
        let mode = loop {
            if let Some(&m) = self.raw.get(self.raw_start) {
                self.crc.update(&[m]);
                self.raw_start += 1;
                break m;
            }
            if self.fill_raw()? == 0 {
                return Err(parse_err(
                    "truncated binary trace: unexpected EOF at a chunk tag",
                ));
            }
        };
        if mode != CHUNK_MODE_DELTA && mode != CHUNK_MODE_RAW {
            return Err(parse_err(format!("unknown chunk mode tag {mode}")));
        }
        let num_pages = self.universe.num_pages() as i64;
        while self.chunk.len() < take {
            match pop_varint(&self.raw[self.raw_start..])? {
                Varint::Done(coded, len) => {
                    self.crc
                        .update(&self.raw[self.raw_start..self.raw_start + len]);
                    self.raw_start += len;
                    let page = if mode == CHUNK_MODE_DELTA {
                        self.prev + unzigzag(coded)
                    } else {
                        i64::try_from(coded)
                            .map_err(|_| parse_err(format!("page {coded} out of range")))?
                    };
                    if page < 0 || page >= num_pages {
                        return Err(parse_err(format!("page {page} out of range")));
                    }
                    self.prev = page;
                    let page = PageId(page as u32);
                    self.chunk.push(Request {
                        page,
                        user: self.universe.owner(page),
                    });
                }
                Varint::Incomplete => {
                    if self.fill_raw()? == 0 {
                        return Err(parse_err(
                            "truncated binary trace: unexpected EOF mid-varint in the request \
                             stream",
                        ));
                    }
                }
            }
        }
        Ok(true)
    }

    /// Verify the mandatory footer once the promised requests have all
    /// been decoded. Unlike occbin01 there is no legacy trailer-less
    /// form: a missing or short footer is truncation, a wrong magic is
    /// corruption.
    fn check_footer(&mut self) -> Result<(), TraceIoError> {
        while self.raw.len() - self.raw_start < 12 {
            if self.fill_raw()? == 0 {
                break;
            }
        }
        let foot = &self.raw[self.raw_start..];
        if foot.len() < 12 {
            return Err(parse_err(
                "truncated binary trace: unexpected EOF in the footer",
            ));
        }
        if foot[..8] != BINARY2_TRACE_FOOTER_MAGIC {
            return Err(parse_err(format!(
                "bad footer magic {:?}, expected {BINARY2_TRACE_FOOTER_MAGIC:?}",
                &foot[..8]
            )));
        }
        let want = u32::from_le_bytes(foot[8..12].try_into().expect("4-byte slice"));
        let got = self.crc.value();
        if want != got {
            return Err(parse_err(format!(
                "footer checksum mismatch: footer says crc32 {want:08x}, request stream hashes \
                 to {got:08x} (corrupt or torn trace)"
            )));
        }
        Ok(())
    }
}

impl<R: Read> RequestSource for Binary2TraceReader<R> {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        if self.error.is_some() {
            return None;
        }
        if self.pos >= self.chunk.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let req = self.chunk[self.pos];
        self.pos += 1;
        self.served += 1;
        Some(req)
    }

    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        if max == 0 || self.error.is_some() {
            return None;
        }
        if self.pos >= self.chunk.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let take = (self.chunk.len() - self.pos).min(max);
        let run = &self.chunk[self.pos..self.pos + take];
        self.pos += take;
        self.served += take as u64;
        Some(run)
    }
}

impl<R: Read> SeekableSource for Binary2TraceReader<R> {
    /// Decode-and-discard fast-forward through the same chunked refill
    /// path as serving, so validation (delta range, truncation, footer
    /// checksum) and the running CRC see exactly the bytes a full
    /// replay would.
    fn seek_forward(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 {
            if self.error.is_some() {
                return;
            }
            let avail = (self.chunk.len() - self.pos) as u64;
            if avail == 0 {
                match self.refill() {
                    Ok(true) => continue,
                    Ok(false) => return,
                    Err(e) => {
                        self.error = Some(e);
                        return;
                    }
                }
            }
            let take = avail.min(remaining);
            self.pos += take as usize;
            self.served += take;
            remaining -= take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binio::write_trace_binary;

    fn sample() -> Trace {
        let u = Universe::uniform(2, 2);
        Trace::from_page_indices(&u, &[0, 2, 1, 3, 0])
    }

    fn drain(src: &mut Binary2TraceReader<&[u8]>) -> Vec<Request> {
        let mut got = Vec::new();
        while let Some(run) = src.next_run(97) {
            got.extend_from_slice(run);
        }
        got
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        let back = read_trace_binary_v2(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
        assert_eq!(back.universe(), t.universe());
    }

    #[test]
    fn packed_form_is_smaller_than_fixed_width() {
        // A locally clustered single-user trace: deltas are tiny, so the
        // packed encoding should be ~1 byte/request vs 4.
        let u = Universe::single_user(1000);
        let pages: Vec<u32> = (0..10_000u32).map(|i| 500 + (i % 7)).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mut v1 = Vec::new();
        write_trace_binary(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_trace_binary_v2(&t, &mut v2).unwrap();
        assert!(
            v2.len() * 2 < v1.len(),
            "packed {} bytes vs fixed {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn streaming_writer_matches_whole_trace_writer() {
        let t = sample();
        let mut whole = Vec::new();
        write_trace_binary_v2(&t, &mut whole).unwrap();
        let mut w =
            Binary2TraceWriter::new(t.universe().clone(), t.len() as u64, Vec::new()).unwrap();
        for &r in t.requests() {
            w.push(r).unwrap();
        }
        let streamed = w.finish().unwrap();
        assert_eq!(streamed, whole);
    }

    #[test]
    fn streaming_writer_enforces_the_promise() {
        let t = sample();
        // Under-delivery fails at finish.
        let mut w =
            Binary2TraceWriter::new(t.universe().clone(), t.len() as u64, Vec::new()).unwrap();
        w.push(t.requests()[0]).unwrap();
        assert!(matches!(w.finish(), Err(TraceIoError::Parse(_))));
        // Over-delivery fails at push.
        let mut w = Binary2TraceWriter::new(t.universe().clone(), 1, Vec::new()).unwrap();
        w.push(t.requests()[0]).unwrap();
        assert!(w.push(t.requests()[1]).is_err());
    }

    #[test]
    fn streaming_reader_replays_identically() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        let mut src = Binary2TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(src.total_requests(), t.len() as u64);
        let got = drain(&mut src);
        assert_eq!(got.as_slice(), t.requests());
        src.finish().unwrap();
    }

    #[test]
    fn extreme_deltas_round_trip() {
        // Jumps across the whole u32 page-id range in both directions.
        let top = u32::MAX - 1;
        let u = Universe::single_user(u32::MAX);
        let pages = vec![top, 0, top, 1, top - 1, 0, 0, top];
        let t = Trace::from_page_indices(&u, &pages);
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        let back = read_trace_binary_v2(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
    }

    #[test]
    fn empty_and_single_request_traces_round_trip() {
        let u = Universe::single_user(3);
        for pages in [vec![], vec![2u32]] {
            let t = Trace::from_page_indices(&u, &pages);
            let mut buf = Vec::new();
            write_trace_binary_v2(&t, &mut buf).unwrap();
            let back = read_trace_binary_v2(buf.as_slice()).unwrap();
            assert_eq!(back.requests(), t.requests());
            assert_eq!(back.universe(), t.universe());
        }
    }

    #[test]
    fn sequential_streams_pick_delta_coding() {
        let u = Universe::single_user(100_000);
        let pages: Vec<u32> = (0..5_000u32).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        let hdr = encode_header(t.universe(), t.len() as u64).len();
        assert_eq!(buf[hdr], CHUNK_MODE_DELTA);
        // +1 deltas are one byte each: tag + 5000 bytes + 12-byte footer.
        assert_eq!(buf.len(), hdr + 1 + 5_000 + 12);
        let back = read_trace_binary_v2(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
    }

    #[test]
    fn skewed_streams_pick_raw_coding() {
        // Small ids with sign-expanded jumps between them: raw varints
        // are ~1 byte, zigzag deltas ~2 — the coder must notice.
        let u = Universe::single_user(1 << 14);
        let pages: Vec<u32> = (0..5_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 128)
            .collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        let hdr = encode_header(t.universe(), t.len() as u64).len();
        assert_eq!(buf[hdr], CHUNK_MODE_RAW);
        // Every id < 128 is a one-byte varint.
        assert_eq!(buf.len(), hdr + 1 + 5_000 + 12);
        let back = read_trace_binary_v2(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
    }

    #[test]
    fn mixed_chunks_round_trip_across_mode_boundaries() {
        // First chunk sequential (delta wins), ragged second chunk
        // skewed (raw wins); the delta base must carry across the
        // mode switch. Exercises both the whole-trace and streaming
        // writers and both readers.
        let u = Universe::single_user(1 << 20);
        let mut pages: Vec<u32> = (0..CHUNK_REQS as u32).collect();
        pages.extend((0..2_000u32).map(|i| i.wrapping_mul(2_654_435_761) % 128));
        let t = Trace::from_page_indices(&u, &pages);
        let mut whole = Vec::new();
        write_trace_binary_v2(&t, &mut whole).unwrap();
        let mut w =
            Binary2TraceWriter::new(t.universe().clone(), t.len() as u64, Vec::new()).unwrap();
        for &r in t.requests() {
            w.push(r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), whole);
        let back = read_trace_binary_v2(whole.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
        let mut src = Binary2TraceReader::new(whole.as_slice()).unwrap();
        let got = drain(&mut src);
        assert_eq!(got.as_slice(), t.requests());
        src.finish().unwrap();
    }

    #[test]
    fn unknown_chunk_mode_tag_is_a_parse_error() {
        let u = Universe::single_user(4);
        let mut bad = encode_header(&u, 1);
        bad.push(2); // neither delta (0) nor raw (1)
        push_varint(&mut bad, 0);
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("unknown chunk mode tag 2"),
            "{err}"
        );
    }

    #[test]
    fn truncation_mid_varint_is_a_parse_error() {
        // A two-byte varint delta: page 300 from base 0 → zigzag 600,
        // which needs two LEB128 bytes. Cutting between them is a
        // mid-varint truncation.
        let u = Universe::single_user(1000);
        let t = Trace::from_page_indices(&u, &[300]);
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 12 - 1); // drop footer + second delta byte
        let err = read_trace_binary_v2(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("mid-varint"), "{err}");

        // The streaming reader parks the same class of error.
        let mut src = Binary2TraceReader::new(buf.as_slice()).unwrap();
        let _ = drain(&mut src);
        assert!(matches!(src.finish(), Err(TraceIoError::Parse(_))));
    }

    #[test]
    fn missing_footer_is_a_parse_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 12);
        let err = read_trace_binary_v2(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("EOF in the footer"), "{err}");
    }

    #[test]
    fn flipped_footer_byte_is_a_parse_error() {
        let t = sample();
        let mut good = Vec::new();
        write_trace_binary_v2(&t, &mut good).unwrap();
        // Flip each footer byte in turn: magic bytes report corruption,
        // checksum bytes report a mismatch — all of them parse errors.
        for i in 1..=12 {
            let mut bad = good.clone();
            let idx = bad.len() - i;
            bad[idx] ^= 0x01;
            let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Parse(_)),
                "flip at -{i}: {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        // Flipping the low bit of a one-byte delta keeps it structurally
        // valid (still in range), so only the CRC can catch it.
        let u = Universe::single_user(8);
        let t = Trace::from_page_indices(&u, &[1, 2, 3, 4]);
        let mut bad = Vec::new();
        write_trace_binary_v2(&t, &mut bad).unwrap();
        let first_delta = bad.len() - 12 - 4;
        bad[first_delta] ^= 0x02;
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("footer checksum mismatch"),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_delta_is_a_parse_error() {
        let u = Universe::single_user(4);
        let t = Trace::from_page_indices(&u, &[3]);
        let mut bad = Vec::new();
        write_trace_binary_v2(&t, &mut bad).unwrap();
        // The single delta is zigzag(3) = 6, one byte just before the
        // footer. Rewrite it to zigzag(-1) = 1: decodes to page −1.
        let delta_at = bad.len() - 13;
        assert_eq!(bad[delta_at], 6);
        bad[delta_at] = 1;
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn overlong_varint_is_a_parse_error() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&BINARY2_TRACE_MAGIC);
        bad.extend_from_slice(&[0xFF; 11]); // user count never terminates
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn corrupt_owner_runs_are_parse_errors() {
        // Owner out of range.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BINARY2_TRACE_MAGIC);
        push_varint(&mut bad, 1); // users
        push_varint(&mut bad, 2); // pages
        push_varint(&mut bad, 5); // owner 5 of a 1-user trace
        push_varint(&mut bad, 2);
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("owner 5 out of range"), "{err}");

        // Run overshooting the table.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BINARY2_TRACE_MAGIC);
        push_varint(&mut bad, 1);
        push_varint(&mut bad, 2);
        push_varint(&mut bad, 0);
        push_varint(&mut bad, 3); // 3-page run in a 2-page table
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("overshoots"), "{err}");

        // Zero-length run.
        let mut bad = Vec::new();
        bad.extend_from_slice(&BINARY2_TRACE_MAGIC);
        push_varint(&mut bad, 1);
        push_varint(&mut bad, 2);
        push_varint(&mut bad, 0);
        push_varint(&mut bad, 0);
        let err = read_trace_binary_v2(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("zero-length owner run"), "{err}");
    }

    #[test]
    fn seek_forward_matches_pull_and_discard() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..50).map(|i| (i * 7) % 6).collect();
        let t = Trace::from_page_indices(&u, &pages);
        let mut buf = Vec::new();
        write_trace_binary_v2(&t, &mut buf).unwrap();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &u,
        };
        for skip in [0u64, 1, 7, 49, 50, 80] {
            let mut pulled = Binary2TraceReader::new(buf.as_slice()).unwrap();
            for _ in 0..skip.min(50) {
                pulled.next_request(&ctx);
            }
            let mut sought = Binary2TraceReader::new(buf.as_slice()).unwrap();
            sought.seek_forward(skip);
            loop {
                let a = pulled.next_request(&ctx);
                let b = sought.next_request(&ctx);
                assert_eq!(a, b, "skip={skip}");
                if a.is_none() {
                    break;
                }
            }
            pulled.finish().unwrap();
            sought.finish().unwrap();
        }
    }

    #[test]
    fn varint_primitives() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            match pop_varint(&buf).unwrap() {
                Varint::Done(got, len) => {
                    assert_eq!(got, v);
                    assert_eq!(len, buf.len());
                }
                Varint::Incomplete => panic!("complete varint reported incomplete"),
            }
            // A cut anywhere inside is incomplete, not an error.
            for cut in 0..buf.len() {
                assert!(matches!(pop_varint(&buf[..cut]), Ok(Varint::Incomplete)));
            }
        }
        for d in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 63, -64] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // u64::MAX zigzag-decodes from 10 bytes; an 11th continuation
        // byte is over-long.
        assert!(pop_varint(&[0xFF; 10]).is_err());
    }
}
