#![warn(missing_docs)]
//! Multi-tenant cache simulation substrate.
//!
//! This crate provides the machinery shared by every algorithm in the
//! workspace: page/user identifiers, request traces, an exact-replay
//! simulation engine, replacement-policy and request-source traits, and
//! per-tenant accounting.
//!
//! The model follows Menache & Singh, *Online Caching with Convex Costs*
//! (SPAA 2015), §1.2: a single cache of size `k` shared by `n` users; each
//! page belongs to exactly one user; on a request the page must be in the
//! cache (hit) or be fetched into it (miss), evicting some cached page when
//! the cache is full.
//!
//! The substrate is deliberately *cost-agnostic*: it reports hit / miss /
//! eviction counts per user, and the convex cost machinery in `occ-core`
//! turns those counts into costs. This keeps the engine reusable for
//! classical (cost-blind) baselines.
//!
//! # Quick example
//!
//! ```
//! use occ_sim::prelude::*;
//!
//! // Two users, three pages each; a tiny fixed trace.
//! let universe = Universe::uniform(2, 3);
//! let trace = Trace::from_page_indices(&universe, &[0, 3, 1, 0, 4, 3]);
//!
//! // A trivial policy: evict the page that has been cached the longest.
//! struct Fifo { order: std::collections::VecDeque<PageId> }
//! impl ReplacementPolicy for Fifo {
//!     fn name(&self) -> String { "fifo".into() }
//!     fn on_insert(&mut self, _ctx: &EngineCtx, page: PageId) {
//!         self.order.push_back(page);
//!     }
//!     fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
//!         self.order.pop_front().expect("cache is full, so the queue is non-empty")
//!     }
//! }
//!
//! let mut policy = Fifo { order: Default::default() };
//! let result = Simulator::new(2).run(&mut policy, &trace);
//! assert_eq!(result.total_misses(), 6); // FIFO with k=2 misses every request here
//! assert_eq!(result.stats.total_evictions(), 4);
//! ```

pub mod binio;
pub mod binio2;
pub mod cache;
pub mod checksum;
pub mod concurrent;
pub mod engine;
pub mod error;
pub mod event;
pub mod ids;
pub mod intrusive;
pub mod nextuse;
pub mod policy;
pub mod prefetch;
pub mod probe;
pub mod snapshot;
pub mod source;
pub mod stats;
pub mod stepper;
pub mod textio;
pub mod trace;

pub use binio::{
    read_trace_auto, read_trace_binary, write_trace_binary, BinarySource, BinaryTraceReader,
    BinaryTraceWriter, MmapTraceSource, BINARY_TRACE_FOOTER_MAGIC, BINARY_TRACE_MAGIC,
};
pub use binio2::{
    read_trace_binary_v2, write_trace_binary_v2, Binary2TraceReader, Binary2TraceWriter,
    BINARY2_TRACE_FOOTER_MAGIC, BINARY2_TRACE_MAGIC,
};
pub use cache::CacheSet;
pub use checksum::{crc32, Crc32};
pub use concurrent::{
    merge_stats, replay_schedule, run_shared, shard_of, verify_replay, CommitOutcome, CommitRecord,
    CommitSchedule, ConcurrentEngine, ReplayError, ReplayOutcome, ShardedPolicy, SharedOutcome,
    ThreadLane,
};
pub use engine::{CheckedRun, EngineCtx, SimOptions, SimResult, Simulator};
pub use error::{
    CostAnomaly, FaultCounters, FaultHandler, FaultKind, FaultPolicy, PolicyViolation,
    PolicyViolationKind, RequestFault, SimError, SnapshotError,
};
pub use event::{EventLog, SimEvent};
pub use ids::{PageId, Time, UserId};
pub use intrusive::{PageList, PageLists};
pub use nextuse::NextUseIndex;
pub use policy::ReplacementPolicy;
pub use prefetch::{prefetch_read, prefetch_slice_element};
pub use probe::{NoopRecorder, Recorder};
pub use snapshot::{EngineSnapshot, PolicyState, StateValue, SNAPSHOT_VERSION};
pub use source::{AdaptiveSource, RequestSource, SeekableSource, TraceSource};
pub use stats::{SimStats, UserStats};
pub use stepper::{StepOutcome, SteppingEngine, DEFAULT_BATCH_SIZE, PREFETCH_DISTANCE};
pub use textio::{read_trace, write_trace, TraceIoError};
pub use trace::{Request, Trace, TraceBuilder, Universe};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::cache::CacheSet;
    pub use crate::concurrent::{
        replay_schedule, run_shared, verify_replay, CommitOutcome, CommitRecord, CommitSchedule,
        ConcurrentEngine, ReplayError, ReplayOutcome, ShardedPolicy, SharedOutcome,
    };
    pub use crate::engine::{CheckedRun, EngineCtx, SimOptions, SimResult, Simulator};
    pub use crate::error::{
        FaultCounters, FaultHandler, FaultKind, FaultPolicy, RequestFault, SimError, SnapshotError,
    };
    pub use crate::event::{EventLog, SimEvent};
    pub use crate::ids::{PageId, Time, UserId};
    pub use crate::intrusive::{PageList, PageLists};
    pub use crate::nextuse::NextUseIndex;
    pub use crate::policy::ReplacementPolicy;
    pub use crate::probe::{NoopRecorder, Recorder};
    pub use crate::snapshot::{EngineSnapshot, PolicyState, StateValue, SNAPSHOT_VERSION};
    pub use crate::source::{AdaptiveSource, RequestSource, SeekableSource, TraceSource};
    pub use crate::stats::{SimStats, UserStats};
    pub use crate::stepper::{StepOutcome, SteppingEngine, DEFAULT_BATCH_SIZE, PREFETCH_DISTANCE};
    pub use crate::trace::{Request, Trace, TraceBuilder, Universe};
}
