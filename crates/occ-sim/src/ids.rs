//! Identifier newtypes for pages, users and simulation time.
//!
//! Pages and users are dense small integers in practice, so the newtypes
//! wrap `u32`. Wrapping them (rather than using bare integers) prevents the
//! classic bug of indexing a per-user table with a page id, and gives the
//! ids a stable `Display` form used throughout the experiment tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cacheable page.
///
/// Page ids are dense: a [`crate::Universe`] with `P` pages uses ids
/// `0..P`. This lets policies use `Vec`-indexed side tables instead of hash
/// maps in hot paths.
///
/// `repr(transparent)`: a `PageId` is layout-identical to its `u32`, an
/// invariant the zero-copy binary reader ([`crate::binio`]) relies on to
/// reinterpret mapped little-endian id bytes as `&[PageId]` without
/// copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(transparent)]
pub struct PageId(pub u32);

/// Identifier of a tenant (user) sharing the cache.
///
/// User ids are dense: a universe with `n` users uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(transparent)]
pub struct UserId(pub u32);

/// Discrete simulation time.
///
/// The engine processes one request per tick; the first request happens at
/// time `0` (the paper indexes requests from `1`; all internal bookkeeping
/// here is zero-based and the experiment tables never expose raw times).
pub type Time = u64;

impl PageId {
    /// The id as a `usize`, for indexing dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl UserId {
    /// The id as a `usize`, for indexing dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for PageId {
    fn from(v: u32) -> Self {
        PageId(v)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PageId(3).to_string(), "p3");
        assert_eq!(UserId(7).to_string(), "u7");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(PageId(42).index(), 42);
        assert_eq!(UserId(13).index(), 13);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(PageId(1) < PageId(2));
        assert!(UserId(0) < UserId(1));
    }

    #[test]
    fn from_u32() {
        let p: PageId = 5u32.into();
        let u: UserId = 6u32.into();
        assert_eq!(p, PageId(5));
        assert_eq!(u, UserId(6));
    }
}
