//! Intrusive doubly-linked recency lists over dense page ids.
//!
//! Every policy in this workspace that needs "oldest page first" ordering
//! (LRU, FIFO, marking phases, the per-user queues of ALG-DISCRETE's
//! convex fast path) used to pay `O(log k)` per request on a `BTreeSet`.
//! Page ids are dense (`0..P`, see [`crate::PageId`]), so the classic
//! paging structure applies instead: store `prev`/`next` links in flat
//! arrays indexed by page id and splice nodes in `O(1)` with no
//! allocation on the request path.
//!
//! [`PageLists`] is the shared-arena form: `L` lists over one universe of
//! pages, with every page in **at most one** list at a time (exactly the
//! shape of per-user queues, since each page has one owner). [`PageList`]
//! is the single-list convenience wrapper.
//!
//! All operations are `O(1)` except [`PageLists::clear_list`] /
//! iteration (linear in the list length) and the one-time `ensure`
//! growth.

use crate::ids::PageId;

const NIL: u32 = u32::MAX;

/// Head/tail/len of one list in the arena.
#[derive(Clone, Copy, Debug)]
struct ListCore {
    head: u32,
    tail: u32,
    len: u32,
}

impl ListCore {
    const EMPTY: ListCore = ListCore {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// `L` intrusive doubly-linked lists sharing one dense node arena.
///
/// Pages are nodes; a page can be linked into at most one list at a time
/// (pushing a linked page panics — unlink it first or use
/// [`Self::move_to_back`]).
#[derive(Clone, Debug, Default)]
pub struct PageLists {
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Which list each page is linked into, or `NIL`.
    list_of: Vec<u32>,
    lists: Vec<ListCore>,
}

impl PageLists {
    /// An empty arena; size it with [`Self::ensure`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena for `num_lists` lists over `num_pages` pages.
    pub fn with_size(num_lists: usize, num_pages: usize) -> Self {
        let mut s = Self::new();
        s.ensure(num_lists, num_pages);
        s
    }

    /// Grow (never shrink) to cover `num_lists` lists and `num_pages`
    /// pages. Cheap no-op when already large enough — callable from a
    /// policy hot path.
    #[inline]
    pub fn ensure(&mut self, num_lists: usize, num_pages: usize) {
        if self.prev.len() < num_pages {
            self.prev.resize(num_pages, NIL);
            self.next.resize(num_pages, NIL);
            self.list_of.resize(num_pages, NIL);
        }
        if self.lists.len() < num_lists {
            self.lists.resize(num_lists, ListCore::EMPTY);
        }
    }

    /// Number of lists.
    #[inline]
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Number of pages in list `l`.
    #[inline]
    pub fn len(&self, l: usize) -> usize {
        self.lists[l].len as usize
    }

    /// Whether list `l` is empty.
    #[inline]
    pub fn is_empty(&self, l: usize) -> bool {
        self.lists[l].len == 0
    }

    /// Whether `page` is linked into any list.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.list_of[page.index()] != NIL
    }

    /// The list `page` is linked into, if any.
    #[inline]
    pub fn list_of(&self, page: PageId) -> Option<usize> {
        let l = self.list_of[page.index()];
        (l != NIL).then_some(l as usize)
    }

    /// Oldest page of list `l` (the next eviction victim in recency
    /// lists).
    #[inline]
    pub fn front(&self, l: usize) -> Option<PageId> {
        let h = self.lists[l].head;
        (h != NIL).then_some(PageId(h))
    }

    /// Newest page of list `l`.
    #[inline]
    pub fn back(&self, l: usize) -> Option<PageId> {
        let t = self.lists[l].tail;
        (t != NIL).then_some(PageId(t))
    }

    /// Append `page` to the back (newest end) of list `l`. Panics if the
    /// page is already linked somewhere.
    #[inline]
    pub fn push_back(&mut self, l: usize, page: PageId) {
        let i = page.index();
        assert!(
            self.list_of[i] == NIL,
            "page {page} is already linked into a list"
        );
        let core = &mut self.lists[l];
        self.prev[i] = core.tail;
        self.next[i] = NIL;
        if core.tail == NIL {
            core.head = page.0;
        } else {
            self.next[core.tail as usize] = page.0;
        }
        core.tail = page.0;
        core.len += 1;
        self.list_of[i] = l as u32;
    }

    /// Unlink `page` from whichever list holds it. Panics if unlinked.
    #[inline]
    pub fn remove(&mut self, page: PageId) {
        let i = page.index();
        let l = self.list_of[i];
        assert!(l != NIL, "page {page} is not linked into any list");
        let (p, n) = (self.prev[i], self.next[i]);
        let core = &mut self.lists[l as usize];
        if p == NIL {
            core.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            core.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        core.len -= 1;
        self.prev[i] = NIL;
        self.next[i] = NIL;
        self.list_of[i] = NIL;
    }

    /// Unlink `page` if it is linked; returns whether it was.
    #[inline]
    pub fn remove_if_linked(&mut self, page: PageId) -> bool {
        if self.contains(page) {
            self.remove(page);
            true
        } else {
            false
        }
    }

    /// Pop and return the oldest page of list `l`.
    #[inline]
    pub fn pop_front(&mut self, l: usize) -> Option<PageId> {
        let front = self.front(l)?;
        self.remove(front);
        Some(front)
    }

    /// Move `page` to the back of list `l` (the "touch" of an LRU list):
    /// unlink it from wherever it is, if anywhere, then append.
    ///
    /// When the page is already in `l` the unlink and append are fused
    /// into one splice — no intermediate `NIL` writes to `prev`/`next`/
    /// `list_of` that the append immediately overwrites — and a page
    /// that is already the tail (a re-touch of the hottest page, the
    /// common case under skewed workloads) returns without writing at
    /// all. Observable state is identical to `remove` + `push_back`.
    #[inline]
    pub fn move_to_back(&mut self, l: usize, page: PageId) {
        let i = page.index();
        if self.list_of[i] == l as u32 {
            let core = &mut self.lists[l];
            if core.tail == page.0 {
                return;
            }
            // Splice out of the middle/head of `l`: the page is not the
            // tail, so it has a successor.
            let (p, n) = (self.prev[i], self.next[i]);
            if p == NIL {
                core.head = n;
            } else {
                self.next[p as usize] = n;
            }
            self.prev[n as usize] = p;
            // Re-link at the tail (non-NIL: the list holds this page).
            let old_tail = core.tail;
            self.next[old_tail as usize] = page.0;
            self.prev[i] = old_tail;
            self.next[i] = NIL;
            core.tail = page.0;
            return;
        }
        self.remove_if_linked(page);
        self.push_back(l, page);
    }

    /// Prefetch the link-array lines a touch of `page` will dirty
    /// (`prev`/`next`/`list_of` at the page's index). Policies forward
    /// [`ReplacementPolicy::prefetch_hint`] here so batch drivers that
    /// use that hook cover policy state, not just the engine's page
    /// table.
    ///
    /// [`ReplacementPolicy::prefetch_hint`]:
    ///     crate::policy::ReplacementPolicy::prefetch_hint
    #[inline(always)]
    pub fn prefetch(&self, page: PageId) {
        let i = page.index();
        crate::prefetch::prefetch_slice_element(&self.list_of, i);
        crate::prefetch::prefetch_slice_element(&self.prev, i);
        crate::prefetch::prefetch_slice_element(&self.next, i);
    }

    /// Steal every node of `from` and append the whole chain to the back
    /// of `to` in order, in `O(len(from))` (relinks `list_of` per node but
    /// performs no per-node splicing). Used by marking policies whose
    /// phase reset turns the "marked, in recency order" list into the new
    /// victim list wholesale.
    pub fn append_list(&mut self, to: usize, from: usize) {
        assert_ne!(to, from, "cannot append a list to itself");
        let from_core = std::mem::replace(&mut self.lists[from], ListCore::EMPTY);
        if from_core.head == NIL {
            return;
        }
        let mut node = from_core.head;
        while node != NIL {
            self.list_of[node as usize] = to as u32;
            node = self.next[node as usize];
        }
        let to_core = &mut self.lists[to];
        if to_core.tail == NIL {
            to_core.head = from_core.head;
        } else {
            self.next[to_core.tail as usize] = from_core.head;
            self.prev[from_core.head as usize] = to_core.tail;
        }
        to_core.tail = from_core.tail;
        to_core.len += from_core.len;
    }

    /// Iterate list `l` from oldest to newest.
    pub fn iter(&self, l: usize) -> PageListIter<'_> {
        PageListIter {
            lists: self,
            node: self.lists[l].head,
        }
    }

    /// Empty list `l` in `O(len)`, leaving other lists untouched.
    pub fn clear_list(&mut self, l: usize) {
        let mut node = self.lists[l].head;
        while node != NIL {
            let n = self.next[node as usize];
            self.prev[node as usize] = NIL;
            self.next[node as usize] = NIL;
            self.list_of[node as usize] = NIL;
            node = n;
        }
        self.lists[l] = ListCore::EMPTY;
    }

    /// Empty every list (`O(Σ len)`), keeping the arena's capacity.
    pub fn clear(&mut self) {
        for l in 0..self.lists.len() {
            self.clear_list(l);
        }
    }

    /// Drop all sizing and contents (a policy `reset` that must also
    /// forget the universe size).
    pub fn reset(&mut self) {
        self.prev.clear();
        self.next.clear();
        self.list_of.clear();
        self.lists.clear();
    }
}

/// Iterator over one list, oldest to newest.
pub struct PageListIter<'a> {
    lists: &'a PageLists,
    node: u32,
}

impl Iterator for PageListIter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        if self.node == NIL {
            return None;
        }
        let page = PageId(self.node);
        self.node = self.lists.next[self.node as usize];
        Some(page)
    }
}

/// A single intrusive recency list over dense page ids — the `L = 1`
/// case of [`PageLists`] with the list index elided.
#[derive(Clone, Debug, Default)]
pub struct PageList {
    inner: PageLists,
}

impl PageList {
    /// An empty list; size it with [`Self::ensure`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow to cover `num_pages` pages.
    #[inline]
    pub fn ensure(&mut self, num_pages: usize) {
        self.inner.ensure(1, num_pages);
    }

    /// Number of linked pages.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len(0)
    }

    /// Whether no page is linked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty(0)
    }

    /// Whether `page` is linked.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.inner.contains(page)
    }

    /// Oldest page.
    #[inline]
    pub fn front(&self) -> Option<PageId> {
        self.inner.front(0)
    }

    /// Newest page.
    #[inline]
    pub fn back(&self) -> Option<PageId> {
        self.inner.back(0)
    }

    /// Append `page` (must not be linked).
    #[inline]
    pub fn push_back(&mut self, page: PageId) {
        self.inner.push_back(0, page);
    }

    /// Unlink `page` (must be linked).
    #[inline]
    pub fn remove(&mut self, page: PageId) {
        self.inner.remove(page);
    }

    /// Unlink `page` if linked; returns whether it was.
    #[inline]
    pub fn remove_if_linked(&mut self, page: PageId) -> bool {
        self.inner.remove_if_linked(page)
    }

    /// Pop the oldest page.
    #[inline]
    pub fn pop_front(&mut self) -> Option<PageId> {
        self.inner.pop_front(0)
    }

    /// Touch: move (or insert) `page` to the newest end.
    #[inline]
    pub fn move_to_back(&mut self, page: PageId) {
        self.inner.move_to_back(0, page);
    }

    /// Prefetch the link-array lines a touch of `page` will dirty (see
    /// [`PageLists::prefetch`]).
    #[inline(always)]
    pub fn prefetch(&self, page: PageId) {
        self.inner.prefetch(page);
    }

    /// Iterate oldest to newest.
    pub fn iter(&self) -> PageListIter<'_> {
        self.inner.iter(0)
    }

    /// Unlink everything in `O(len)`.
    pub fn clear(&mut self) {
        self.inner.clear_list(0);
    }

    /// Forget contents *and* sizing.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &PageList) -> Vec<u32> {
        l.iter().map(|p| p.0).collect()
    }

    #[test]
    fn push_pop_order() {
        let mut l = PageList::new();
        l.ensure(10);
        for p in [3, 1, 4, 1, 5] {
            l.move_to_back(PageId(p));
        }
        // Second touch of 1 moved it to the back.
        assert_eq!(collect(&l), vec![3, 4, 1, 5]);
        assert_eq!(l.front(), Some(PageId(3)));
        assert_eq!(l.back(), Some(PageId(5)));
        assert_eq!(l.pop_front(), Some(PageId(3)));
        assert_eq!(l.pop_front(), Some(PageId(4)));
        assert_eq!(collect(&l), vec![1, 5]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut l = PageList::new();
        l.ensure(8);
        for p in 0..5 {
            l.push_back(PageId(p));
        }
        l.remove(PageId(2)); // middle
        l.remove(PageId(0)); // head
        l.remove(PageId(4)); // tail
        assert_eq!(collect(&l), vec![1, 3]);
        assert!(!l.contains(PageId(2)));
        assert!(l.contains(PageId(3)));
    }

    #[test]
    fn mirrors_a_vec_model() {
        // Randomized differential test against a Vec model.
        let mut l = PageList::new();
        l.ensure(32);
        let mut model: Vec<u32> = Vec::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let p = (rng() % 32) as u32;
            match rng() % 4 {
                0 => {
                    l.move_to_back(PageId(p));
                    model.retain(|&x| x != p);
                    model.push(p);
                }
                1 => {
                    let was = l.remove_if_linked(PageId(p));
                    assert_eq!(was, model.contains(&p));
                    model.retain(|&x| x != p);
                }
                2 => {
                    assert_eq!(
                        l.pop_front().map(|p| p.0),
                        (!model.is_empty()).then(|| model.remove(0))
                    );
                }
                _ => {
                    assert_eq!(l.front().map(|p| p.0), model.first().copied());
                    assert_eq!(l.len(), model.len());
                }
            }
        }
        assert_eq!(collect(&l), model);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_push_panics() {
        let mut l = PageList::new();
        l.ensure(4);
        l.push_back(PageId(1));
        l.push_back(PageId(1));
    }

    #[test]
    #[should_panic(expected = "not linked")]
    fn remove_unlinked_panics() {
        let mut l = PageList::new();
        l.ensure(4);
        l.remove(PageId(1));
    }

    #[test]
    fn multi_list_independence() {
        let mut a = PageLists::with_size(3, 12);
        a.push_back(0, PageId(0));
        a.push_back(1, PageId(4));
        a.push_back(1, PageId(5));
        a.push_back(2, PageId(8));
        assert_eq!(a.len(0), 1);
        assert_eq!(a.len(1), 2);
        assert_eq!(a.front(1), Some(PageId(4)));
        assert_eq!(a.list_of(PageId(5)), Some(1));
        a.remove(PageId(4));
        assert_eq!(a.front(1), Some(PageId(5)));
        assert_eq!(a.len(0), 1, "other lists untouched");
        // A page moves between lists only through an explicit relink.
        a.remove(PageId(8));
        a.push_back(0, PageId(8));
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![0, 8]);
        assert!(a.is_empty(2));
    }

    #[test]
    fn append_list_preserves_order() {
        let mut a = PageLists::with_size(2, 16);
        for p in [2, 5, 7] {
            a.push_back(0, PageId(p));
        }
        for p in [1, 3] {
            a.push_back(1, PageId(p));
        }
        a.append_list(1, 0);
        assert!(a.is_empty(0));
        assert_eq!(
            a.iter(1).map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 3, 2, 5, 7]
        );
        assert_eq!(a.len(1), 5);
        assert_eq!(a.list_of(PageId(7)), Some(1));
        // Appending an empty list is a no-op.
        a.append_list(1, 0);
        assert_eq!(a.len(1), 5);
        // Appending into an empty list transfers wholesale.
        a.append_list(0, 1);
        assert_eq!(
            a.iter(0).map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 3, 2, 5, 7]
        );
        // The spliced list stays fully linked: removals still work.
        a.remove(PageId(2));
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn fused_move_to_back_covers_every_splice_case() {
        // The fused same-list splice in `move_to_back` must be
        // indistinguishable from remove + push_back: re-touch of the
        // tail (early exit), head, middle, cross-list moves, and fresh
        // links.
        let mut a = PageLists::with_size(2, 8);
        for p in [0, 1, 2, 3] {
            a.push_back(0, PageId(p));
        }
        a.move_to_back(0, PageId(3)); // tail re-touch: no-op
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        a.move_to_back(0, PageId(0)); // head
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![1, 2, 3, 0]);
        a.move_to_back(0, PageId(3)); // middle
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![1, 2, 0, 3]);
        assert_eq!(a.len(0), 4);
        a.move_to_back(1, PageId(2)); // cross-list move
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![1, 0, 3]);
        assert_eq!(a.iter(1).map(|p| p.0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.list_of(PageId(2)), Some(1));
        a.move_to_back(1, PageId(6)); // fresh link
        assert_eq!(a.iter(1).map(|p| p.0).collect::<Vec<_>>(), vec![2, 6]);
        // Single-element list: the element is both head and tail.
        a.move_to_back(1, PageId(2));
        assert_eq!(a.iter(1).map(|p| p.0).collect::<Vec<_>>(), vec![6, 2]);
        // Removals still work after fused splices (links consistent).
        a.remove(PageId(0));
        a.remove(PageId(2));
        assert_eq!(a.iter(0).map(|p| p.0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(a.iter(1).map(|p| p.0).collect::<Vec<_>>(), vec![6]);
    }

    #[test]
    fn clear_and_reuse() {
        let mut l = PageList::new();
        l.ensure(6);
        for p in 0..4 {
            l.push_back(PageId(p));
        }
        l.clear();
        assert!(l.is_empty());
        assert!(!l.contains(PageId(1)));
        l.push_back(PageId(1));
        assert_eq!(collect(&l), vec![1]);
    }
}
