//! The instrumentation layer: [`Recorder`] hooks threaded through the
//! engines as a generic parameter.
//!
//! The simulator's job is to be fast; observability must not tax the
//! uninstrumented path. Both engines are generic over a [`Recorder`] and
//! default to [`NoopRecorder`], whose hooks are empty `#[inline]` bodies
//! behind `ACTIVE = false`/`TIMED = false` associated constants. Every
//! dispatch site is guarded by those constants, so with `NoopRecorder`
//! the branches are constant-folded away and the engine monomorphizes to
//! exactly the unrecorded code (`bench_baseline` guards this against the
//! committed `BENCH_throughput.json`).
//!
//! Recorders see the same classification the engine commits to its
//! counters — one hook per request, in time order — plus an optional
//! per-request latency sample when [`Recorder::TIMED`] is set. Heavier
//! consumers (histograms, streaming JSONL sinks, dual-variable traces)
//! live in the `occ-probe` crate; this module only defines the contract
//! so the engine does not depend on them.

use crate::engine::EngineCtx;
use crate::error::RequestFault;
use crate::ids::{PageId, Time, UserId};

/// Observer of engine decisions, threaded through a run as a generic
/// parameter.
///
/// All hooks default to no-ops so recorders implement only what they
/// need. Hooks fire *after* the engine has applied the decision (cache
/// contents and counters in `ctx` already include the request), matching
/// the post-state that [`ReplacementPolicy::on_insert`] callbacks see.
///
/// [`ReplacementPolicy::on_insert`]: crate::policy::ReplacementPolicy::on_insert
pub trait Recorder {
    /// Whether event hooks should be dispatched at all. `false` only for
    /// [`NoopRecorder`]-like types: every call site is guarded by this
    /// constant, so an inactive recorder compiles out of the engine.
    const ACTIVE: bool = true;

    /// Whether the engine should sample a monotonic clock around each
    /// request and report it via [`Self::record_latency_ns`]. Off by
    /// default: two `Instant::now()` calls per request are measurable.
    const TIMED: bool = false;

    /// The requested page was already cached.
    fn record_hit(&mut self, _ctx: &EngineCtx, _t: Time, _page: PageId, _user: UserId) {}

    /// The page was fetched into free space (no eviction).
    fn record_insert(&mut self, _ctx: &EngineCtx, _t: Time, _page: PageId, _user: UserId) {}

    /// The page was fetched and `victim` was evicted to make room.
    fn record_eviction(
        &mut self,
        _ctx: &EngineCtx,
        _t: Time,
        _page: PageId,
        _user: UserId,
        _victim: PageId,
        _victim_user: UserId,
    ) {
    }

    /// A page was evicted by the end-of-run flush
    /// ([`SimOptions::flush_at_end`](crate::engine::SimOptions)).
    fn record_flush_eviction(&mut self, _page: PageId, _user: UserId) {}

    /// Wall-clock nanoseconds spent serving the request at time `t`
    /// (only called when [`Self::TIMED`] is `true`).
    fn record_latency_ns(&mut self, _t: Time, _ns: u64) {}

    /// A faulty request record was absorbed by a checked run (skipped or
    /// quarantine-dropped under a degradation
    /// [`FaultPolicy`](crate::error::FaultPolicy)). Never fired by the
    /// unchecked hot paths.
    fn record_fault(&mut self, _fault: &RequestFault) {}
}

/// The default recorder: records nothing, costs nothing.
///
/// `ACTIVE = false` turns every dispatch site in the engines into dead
/// code, so runs parameterized by `NoopRecorder` compile to the same
/// machine code as the pre-instrumentation engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ACTIVE: bool = false;
    const TIMED: bool = false;
}

/// Forwarding impl so a recorder can be threaded by `&mut` without
/// giving up ownership (the engines take recorders by value).
impl<R: Recorder> Recorder for &mut R {
    const ACTIVE: bool = R::ACTIVE;
    const TIMED: bool = R::TIMED;

    fn record_hit(&mut self, ctx: &EngineCtx, t: Time, page: PageId, user: UserId) {
        (**self).record_hit(ctx, t, page, user);
    }
    fn record_insert(&mut self, ctx: &EngineCtx, t: Time, page: PageId, user: UserId) {
        (**self).record_insert(ctx, t, page, user);
    }
    fn record_eviction(
        &mut self,
        ctx: &EngineCtx,
        t: Time,
        page: PageId,
        user: UserId,
        victim: PageId,
        victim_user: UserId,
    ) {
        (**self).record_eviction(ctx, t, page, user, victim, victim_user);
    }
    fn record_flush_eviction(&mut self, page: PageId, user: UserId) {
        (**self).record_flush_eviction(page, user);
    }
    fn record_latency_ns(&mut self, t: Time, ns: u64) {
        (**self).record_latency_ns(t, ns);
    }
    fn record_fault(&mut self, fault: &RequestFault) {
        (**self).record_fault(fault);
    }
}

/// Fan-out: a pair of recorders both observe the run. Compose nested
/// pairs for more than two. Constants are the OR of the parts, so a
/// `(NoopRecorder, NoopRecorder)` still compiles out entirely.
impl<A: Recorder, B: Recorder> Recorder for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;
    const TIMED: bool = A::TIMED || B::TIMED;

    fn record_hit(&mut self, ctx: &EngineCtx, t: Time, page: PageId, user: UserId) {
        if A::ACTIVE {
            self.0.record_hit(ctx, t, page, user);
        }
        if B::ACTIVE {
            self.1.record_hit(ctx, t, page, user);
        }
    }
    fn record_insert(&mut self, ctx: &EngineCtx, t: Time, page: PageId, user: UserId) {
        if A::ACTIVE {
            self.0.record_insert(ctx, t, page, user);
        }
        if B::ACTIVE {
            self.1.record_insert(ctx, t, page, user);
        }
    }
    fn record_eviction(
        &mut self,
        ctx: &EngineCtx,
        t: Time,
        page: PageId,
        user: UserId,
        victim: PageId,
        victim_user: UserId,
    ) {
        if A::ACTIVE {
            self.0
                .record_eviction(ctx, t, page, user, victim, victim_user);
        }
        if B::ACTIVE {
            self.1
                .record_eviction(ctx, t, page, user, victim, victim_user);
        }
    }
    fn record_flush_eviction(&mut self, page: PageId, user: UserId) {
        if A::ACTIVE {
            self.0.record_flush_eviction(page, user);
        }
        if B::ACTIVE {
            self.1.record_flush_eviction(page, user);
        }
    }
    fn record_latency_ns(&mut self, t: Time, ns: u64) {
        if A::TIMED {
            self.0.record_latency_ns(t, ns);
        }
        if B::TIMED {
            self.1.record_latency_ns(t, ns);
        }
    }
    fn record_fault(&mut self, fault: &RequestFault) {
        if A::ACTIVE {
            self.0.record_fault(fault);
        }
        if B::ACTIVE {
            self.1.record_fault(fault);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;
    use crate::trace::{Trace, Universe};
    use crate::Simulator;

    /// Counts every hook invocation.
    #[derive(Default)]
    struct Counting {
        hits: u64,
        inserts: u64,
        evictions: u64,
        flushes: u64,
    }

    impl Recorder for Counting {
        fn record_hit(&mut self, ctx: &EngineCtx, _t: Time, _page: PageId, user: UserId) {
            // Post-state: the hit is already counted.
            assert!(ctx.stats.user(user).hits > 0);
            self.hits += 1;
        }
        fn record_insert(&mut self, _ctx: &EngineCtx, _t: Time, _page: PageId, _user: UserId) {
            self.inserts += 1;
        }
        fn record_eviction(
            &mut self,
            ctx: &EngineCtx,
            _t: Time,
            _page: PageId,
            _user: UserId,
            victim: PageId,
            _victim_user: UserId,
        ) {
            assert!(!ctx.cache.contains(victim), "hook fires after the swap");
            self.evictions += 1;
        }
        fn record_flush_eviction(&mut self, _page: PageId, _user: UserId) {
            self.flushes += 1;
        }
    }

    struct EvictFirst;
    impl ReplacementPolicy for EvictFirst {
        fn name(&self) -> String {
            "evict-first".into()
        }
        fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
            ctx.cache.pages()[0]
        }
    }

    #[test]
    fn hooks_mirror_counters() {
        let u = Universe::uniform(2, 2);
        let trace = Trace::from_page_indices(&u, &[0, 2, 1, 0, 3, 2]);
        let mut rec = Counting::default();
        let r =
            Simulator::new(2)
                .flush_at_end(true)
                .run_recorded(&mut EvictFirst, &trace, &mut rec);
        assert_eq!(rec.hits, r.stats.total_hits());
        assert_eq!(rec.inserts + rec.evictions, r.total_misses());
        assert_eq!(rec.evictions + rec.flushes, r.stats.total_evictions());
    }

    #[test]
    fn pair_recorder_fans_out() {
        let u = Universe::uniform(2, 2);
        let trace = Trace::from_page_indices(&u, &[0, 2, 1, 0, 3, 2]);
        let mut pair = (Counting::default(), Counting::default());
        Simulator::new(2).run_recorded(&mut EvictFirst, &trace, &mut pair);
        assert_eq!(pair.0.hits, pair.1.hits);
        assert_eq!(pair.0.evictions, pair.1.evictions);
        assert!(pair.0.inserts > 0);
    }

    #[test]
    fn noop_recorder_constants() {
        const { assert!(!NoopRecorder::ACTIVE) };
        const { assert!(!<(NoopRecorder, NoopRecorder)>::ACTIVE) };
        const { assert!(<(Counting, NoopRecorder)>::ACTIVE) };
    }
}
