//! The cache contents as a deterministic O(1) set.
//!
//! Policies and invariant checkers frequently ask "is this page cached?",
//! "iterate over the cached pages", and the engine inserts/removes on every
//! miss. `CacheSet` backs all of that with a dense membership table plus a
//! swap-remove vector: `contains`, `insert`, and `remove` are O(1), and the
//! iteration order is a deterministic function of the operation history
//! (important for reproducible tie-breaking in policies that scan).

use crate::error::SnapshotError;
use crate::ids::PageId;

/// A set of cached pages with O(1) membership, insertion and removal.
#[derive(Clone, Debug)]
pub struct CacheSet {
    /// `slot[p]` is the position of page `p` in `pages`, or `NONE`.
    slot: Vec<u32>,
    /// The cached pages, in operation-history order (swap-remove on evict).
    pages: Vec<PageId>,
    capacity: usize,
}

const NONE: u32 = u32::MAX;

impl CacheSet {
    /// An empty cache of size `capacity` over a universe of `num_pages`
    /// pages.
    pub fn new(capacity: usize, num_pages: u32) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheSet {
            slot: vec![NONE; num_pages as usize],
            pages: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Rebuild a cache from snapshotted contents, preserving the given
    /// (operation-history) order, so policies that scan `pages()` see the
    /// same tie-breaking order after a resume. Rejects duplicate,
    /// out-of-range, or over-capacity contents instead of panicking.
    pub fn try_restore(
        capacity: usize,
        num_pages: u32,
        pages: &[PageId],
    ) -> Result<Self, SnapshotError> {
        if capacity == 0 {
            return Err(SnapshotError::Corrupt("cache capacity is zero".into()));
        }
        if pages.len() > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} pages but capacity is {capacity}",
                pages.len()
            )));
        }
        let mut cache = CacheSet::new(capacity, num_pages);
        for &p in pages {
            if p.index() >= num_pages as usize {
                return Err(SnapshotError::Corrupt(format!(
                    "cached page {p} outside the universe ({num_pages} pages)"
                )));
            }
            if cache.contains(p) {
                return Err(SnapshotError::Corrupt(format!("page {p} cached twice")));
            }
            cache.insert(p);
        }
        Ok(cache)
    }

    /// Maximum number of pages the cache can hold (the paper's `k`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    #[inline]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache holds no pages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether the cache is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.pages.len() == self.capacity
    }

    /// Whether `page` is currently cached.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.slot[page.index()] != NONE
    }

    /// Prefetch the membership-table line a future [`contains`] probe of
    /// `page` will load. The batched replay kernel calls this for
    /// request `i + D` while serving request `i`, hiding the dependent
    /// load behind useful work; see [`crate::prefetch`].
    ///
    /// [`contains`]: Self::contains
    #[inline(always)]
    pub fn prefetch_probe(&self, page: PageId) {
        crate::prefetch::prefetch_slice_element(&self.slot, page.index());
    }

    /// Insert `page`. Panics if the cache is full or the page is already
    /// present — the engine guarantees neither happens.
    pub fn insert(&mut self, page: PageId) {
        assert!(!self.is_full(), "insert into a full cache");
        assert!(!self.contains(page), "insert of an already-cached page");
        self.slot[page.index()] = self.pages.len() as u32;
        self.pages.push(page);
    }

    /// Remove `page`. Panics if the page is not cached.
    pub fn remove(&mut self, page: PageId) {
        let pos = self.slot[page.index()];
        assert!(pos != NONE, "remove of a page that is not cached");
        let pos = pos as usize;
        self.pages.swap_remove(pos);
        self.slot[page.index()] = NONE;
        if pos < self.pages.len() {
            let moved = self.pages[pos];
            self.slot[moved.index()] = pos as u32;
        }
    }

    /// The cached pages, in deterministic (operation-history) order.
    #[inline]
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Iterate over the cached pages.
    pub fn iter(&self) -> impl Iterator<Item = PageId> + '_ {
        self.pages.iter().copied()
    }

    /// The cached pages in ascending page-id order (allocates; for tests
    /// and invariant checks, not hot paths).
    pub fn sorted_pages(&self) -> Vec<PageId> {
        let mut v = self.pages.clone();
        v.sort_unstable();
        v
    }

    /// Remove every page, returning the former contents in ascending page
    /// order. Models the paper's end-of-sequence flush performed by the
    /// dummy user's `k` trailing requests.
    pub fn drain_all(&mut self) -> Vec<PageId> {
        let mut v = std::mem::take(&mut self.pages);
        for p in &v {
            self.slot[p.index()] = NONE;
        }
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut c = CacheSet::new(2, 5);
        assert!(c.is_empty());
        c.insert(PageId(3));
        assert!(c.contains(PageId(3)));
        assert!(!c.contains(PageId(0)));
        c.insert(PageId(0));
        assert!(c.is_full());
        c.remove(PageId(3));
        assert!(!c.contains(PageId(3)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.pages(), &[PageId(0)]);
    }

    #[test]
    fn swap_remove_keeps_slots_consistent() {
        let mut c = CacheSet::new(3, 10);
        c.insert(PageId(1));
        c.insert(PageId(5));
        c.insert(PageId(9));
        c.remove(PageId(1)); // p9 is swapped into slot 0
        assert!(c.contains(PageId(5)));
        assert!(c.contains(PageId(9)));
        c.remove(PageId(9));
        assert_eq!(c.pages(), &[PageId(5)]);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_past_capacity_panics() {
        let mut c = CacheSet::new(1, 3);
        c.insert(PageId(0));
        c.insert(PageId(1));
    }

    #[test]
    #[should_panic(expected = "already-cached")]
    fn double_insert_panics() {
        let mut c = CacheSet::new(2, 3);
        c.insert(PageId(0));
        c.insert(PageId(0));
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn remove_missing_panics() {
        let mut c = CacheSet::new(2, 3);
        c.remove(PageId(0));
    }

    #[test]
    fn sorted_and_drain() {
        let mut c = CacheSet::new(3, 10);
        c.insert(PageId(7));
        c.insert(PageId(2));
        c.insert(PageId(4));
        assert_eq!(c.sorted_pages(), vec![PageId(2), PageId(4), PageId(7)]);
        let drained = c.drain_all();
        assert_eq!(drained, vec![PageId(2), PageId(4), PageId(7)]);
        assert!(c.is_empty());
        assert!(!c.contains(PageId(7)));
    }

    #[test]
    fn try_restore_preserves_order_and_rejects_garbage() {
        let mut c = CacheSet::new(3, 10);
        c.insert(PageId(1));
        c.insert(PageId(2));
        c.insert(PageId(3));
        c.remove(PageId(1));
        c.insert(PageId(4)); // pages() is now [3, 2, 4] via swap-remove
        let restored = CacheSet::try_restore(3, 10, c.pages()).unwrap();
        assert_eq!(restored.pages(), c.pages());
        assert!(restored.contains(PageId(4)));

        assert!(CacheSet::try_restore(0, 10, &[]).is_err());
        assert!(CacheSet::try_restore(1, 10, &[PageId(0), PageId(1)]).is_err());
        assert!(CacheSet::try_restore(2, 10, &[PageId(10)]).is_err());
        assert!(CacheSet::try_restore(2, 10, &[PageId(1), PageId(1)]).is_err());
    }

    #[test]
    fn deterministic_iteration_order() {
        let build = || {
            let mut c = CacheSet::new(3, 10);
            c.insert(PageId(1));
            c.insert(PageId(2));
            c.insert(PageId(3));
            c.remove(PageId(1));
            c.insert(PageId(4));
            c.pages().to_vec()
        };
        assert_eq!(build(), build());
    }
}
