//! Typed errors and degradation policies for fault-tolerant runs.
//!
//! Long adversarial replays (the `Ω(k)^β` lower-bound sweeps, multi-tenant
//! SLA replays) must survive pathological inputs: corrupt trace records,
//! out-of-range page ids, owner tables that disagree with the stream, and
//! non-finite cost evaluations. The plain engine treats all of these as
//! programmer error and panics; the *checked* entry points
//! ([`SteppingEngine::step_checked`], [`Simulator::try_run`]) classify them
//! into the [`SimError`] hierarchy instead and apply a configurable
//! [`FaultPolicy`]:
//!
//! * **fail-fast** — surface the first fault as an error (default);
//! * **skip-and-count** — drop the faulty record, count it, keep going;
//! * **quarantine-user** — additionally evict the offending tenant's pages
//!   and drop all of its future requests.
//!
//! Faults are surfaced three ways: the returned [`FaultCounters`], the
//! [`Recorder::record_fault`](crate::probe::Recorder::record_fault) hook
//! (so `occ-probe` consumers can stream them), and — for fail-fast — the
//! returned `SimError` itself.
//!
//! [`SteppingEngine::step_checked`]: crate::stepper::SteppingEngine::step_checked
//! [`Simulator::try_run`]: crate::engine::Simulator::try_run

use crate::ids::{PageId, Time, UserId};
use std::fmt;

/// Everything that can go wrong while building, running, checkpointing or
/// resuming a simulation.
#[derive(Debug)]
pub enum SimError {
    /// A malformed request record (see [`FaultKind`] for the taxonomy).
    Request(RequestFault),
    /// The replacement policy violated its contract (an algorithm bug, not
    /// an input fault — never skipped by any [`FaultPolicy`]).
    Policy(PolicyViolation),
    /// Cost evaluation produced a non-finite value or overflowed.
    Cost(CostAnomaly),
    /// A snapshot could not be taken, parsed, or restored.
    Snapshot(SnapshotError),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Request(e) => write!(f, "{e}"),
            SimError::Policy(e) => write!(f, "{e}"),
            SimError::Cost(e) => write!(f, "{e}"),
            SimError::Snapshot(e) => write!(f, "{e}"),
            SimError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RequestFault> for SimError {
    fn from(e: RequestFault) -> Self {
        SimError::Request(e)
    }
}
impl From<PolicyViolation> for SimError {
    fn from(e: PolicyViolation) -> Self {
        SimError::Policy(e)
    }
}
impl From<CostAnomaly> for SimError {
    fn from(e: CostAnomaly) -> Self {
        SimError::Cost(e)
    }
}
impl From<SnapshotError> for SimError {
    fn from(e: SnapshotError) -> Self {
        SimError::Snapshot(e)
    }
}
impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e)
    }
}

/// The fault taxonomy for request records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The record references a page id outside the universe.
    PageOutOfRange,
    /// The record's claimed owner disagrees with the universe's owner
    /// table.
    OwnerMismatch,
    /// The record is well-formed but its user was previously quarantined,
    /// so the request is dropped.
    QuarantinedUser,
}

impl FaultKind {
    /// Stable machine-readable name (used in JSONL fault lines and
    /// reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PageOutOfRange => "page-out-of-range",
            FaultKind::OwnerMismatch => "owner-mismatch",
            FaultKind::QuarantinedUser => "quarantined-user",
        }
    }
}

/// A single malformed (or dropped) request record, with the raw values as
/// found in the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestFault {
    /// Engine time at which the record was consumed.
    pub time: Time,
    /// What was wrong with it.
    pub kind: FaultKind,
    /// The page id as found in the record (may be out of range).
    pub page: PageId,
    /// The user id as found in the record (may be out of range).
    pub user: UserId,
}

impl fmt::Display for RequestFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faulty request at t={}: {} (page {}, user {})",
            self.time,
            self.kind.name(),
            self.page,
            self.user
        )
    }
}

impl std::error::Error for RequestFault {}

/// The replacement policy broke its contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyViolation {
    /// Engine time of the offending decision.
    pub time: Time,
    /// The policy's [`name`](crate::policy::ReplacementPolicy::name).
    pub policy: String,
    /// What the policy did wrong.
    pub kind: PolicyViolationKind,
}

/// The ways a policy can break its contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyViolationKind {
    /// `choose_victim` returned a page that is not cached.
    VictimNotCached(PageId),
    /// `choose_victim` returned the incoming page itself.
    VictimIsIncoming(PageId),
}

impl fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            PolicyViolationKind::VictimNotCached(p) => write!(
                f,
                "policy {} chose victim {p} which is not cached (t={})",
                self.policy, self.time
            ),
            PolicyViolationKind::VictimIsIncoming(p) => write!(
                f,
                "policy {} tried to evict the incoming page {p} (t={})",
                self.policy, self.time
            ),
        }
    }
}

impl std::error::Error for PolicyViolation {}

/// A cost evaluation left the finite range: `f_i(x)` returned NaN or ±∞,
/// or an accumulation overflowed to a non-finite value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostAnomaly {
    /// The user whose cost function misbehaved, if attributable.
    pub user: Option<u32>,
    /// The argument the cost function was evaluated at.
    pub argument: f64,
    /// The offending value (NaN or ±∞).
    pub value: f64,
    /// Which computation produced it (e.g. `"f_i(m_i)"`, `"sum f_i(m_i)"`).
    pub what: &'static str,
}

impl fmt::Display for CostAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.user {
            Some(u) => write!(
                f,
                "non-finite cost: {} = {} at x = {} for user u{u}",
                self.what, self.value, self.argument
            ),
            None => write!(
                f,
                "non-finite cost: {} = {} at x = {}",
                self.what, self.value, self.argument
            ),
        }
    }
}

impl std::error::Error for CostAnomaly {}

/// Why a snapshot could not be taken, parsed, or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot declares a version this build does not understand.
    UnsupportedVersion {
        /// Version found in the snapshot.
        found: u64,
        /// Version this build writes and reads.
        expected: u64,
    },
    /// A required field is absent.
    MissingField(String),
    /// A field is present but unusable (wrong type, bad encoding,
    /// inconsistent lengths, …).
    Corrupt(String),
    /// The snapshot is internally valid but does not match the engine it
    /// is being restored into (different capacity, universe, or policy).
    Mismatch(String),
    /// The named policy does not implement state capture.
    Unsupported(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found, expected } => write!(
                f,
                "snapshot version {found} unsupported (this build reads version {expected})"
            ),
            SnapshotError::MissingField(k) => write!(f, "snapshot is missing field '{k}'"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot is corrupt: {msg}"),
            SnapshotError::Mismatch(msg) => {
                write!(f, "snapshot does not match this engine: {msg}")
            }
            SnapshotError::Unsupported(policy) => {
                write!(f, "policy {policy} does not support checkpointing")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// How the checked engine paths react to an input fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Surface the first fault as a [`SimError`] (default).
    #[default]
    FailFast,
    /// Drop the faulty record, count it in [`FaultCounters`], keep going.
    SkipAndCount,
    /// Like skip-and-count, but also quarantine the offending user: its
    /// cached pages are removed (without eviction charges) and all of its
    /// future requests are dropped.
    QuarantineUser,
}

impl FaultPolicy {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultPolicy::FailFast => "fail-fast",
            FaultPolicy::SkipAndCount => "skip-and-count",
            FaultPolicy::QuarantineUser => "quarantine-user",
        }
    }

    /// Parse a policy name as used on the CLI (`fail-fast`, `skip` /
    /// `skip-and-count`, `quarantine` / `quarantine-user`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fail-fast" | "failfast" => Some(FaultPolicy::FailFast),
            "skip" | "skip-and-count" => Some(FaultPolicy::SkipAndCount),
            "quarantine" | "quarantine-user" => Some(FaultPolicy::QuarantineUser),
            _ => None,
        }
    }
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters of every fault a checked run absorbed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Records referencing a page outside the universe.
    pub page_out_of_range: u64,
    /// Records whose claimed owner disagrees with the universe.
    pub owner_mismatch: u64,
    /// Well-formed records dropped because their user is quarantined.
    pub quarantined_drops: u64,
    /// Users placed in quarantine.
    pub quarantined_users: u64,
}

impl FaultCounters {
    /// Total faulty/dropped records (excludes `quarantined_users`, which
    /// counts users, not records).
    pub fn total_records(&self) -> u64 {
        self.page_out_of_range
            .saturating_add(self.owner_mismatch)
            .saturating_add(self.quarantined_drops)
    }

    /// Whether no fault was observed at all.
    pub fn is_clean(&self) -> bool {
        self.total_records() == 0 && self.quarantined_users == 0
    }

    /// Count one record-level fault of the given kind.
    pub fn count(&mut self, kind: FaultKind) {
        let slot = match kind {
            FaultKind::PageOutOfRange => &mut self.page_out_of_range,
            FaultKind::OwnerMismatch => &mut self.owner_mismatch,
            FaultKind::QuarantinedUser => &mut self.quarantined_drops,
        };
        *slot = slot.saturating_add(1);
    }

    /// Accumulate another set of counters (saturating).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.page_out_of_range = self
            .page_out_of_range
            .saturating_add(other.page_out_of_range);
        self.owner_mismatch = self.owner_mismatch.saturating_add(other.owner_mismatch);
        self.quarantined_drops = self
            .quarantined_drops
            .saturating_add(other.quarantined_drops);
        self.quarantined_users = self
            .quarantined_users
            .saturating_add(other.quarantined_users);
    }
}

/// Degradation-policy state threaded through a checked run: which policy
/// applies, what has been absorbed so far, and which users are
/// quarantined.
#[derive(Clone, Debug)]
pub struct FaultHandler {
    policy: FaultPolicy,
    counters: FaultCounters,
    quarantined: Vec<bool>,
}

impl FaultHandler {
    /// A fresh handler for `num_users` users under `policy`.
    pub fn new(policy: FaultPolicy, num_users: u32) -> Self {
        FaultHandler {
            policy,
            counters: FaultCounters::default(),
            quarantined: vec![false; num_users as usize],
        }
    }

    /// The degradation policy in force.
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Counters of everything absorbed so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Whether `user` is quarantined.
    pub fn is_quarantined(&self, user: UserId) -> bool {
        self.quarantined.get(user.index()).copied().unwrap_or(false)
    }

    /// Whether any user is quarantined at all. Batched replay uses this
    /// to decide whether a chunk can skip the per-request quarantine
    /// lookup entirely.
    pub fn any_quarantined(&self) -> bool {
        self.quarantined.iter().any(|&q| q)
    }

    /// The quarantined users, ascending.
    pub fn quarantined_users(&self) -> Vec<UserId> {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, &q)| q)
            .map(|(u, _)| UserId(u as u32))
            .collect()
    }

    /// Restore quarantine membership and counters (used when resuming
    /// from a snapshot). Users outside `0..num_users` are rejected.
    pub fn restore(
        &mut self,
        counters: FaultCounters,
        quarantined: &[UserId],
    ) -> Result<(), SnapshotError> {
        for &u in quarantined {
            if u.index() >= self.quarantined.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "quarantined user {u} outside the universe"
                )));
            }
        }
        self.counters = counters;
        for q in &mut self.quarantined {
            *q = false;
        }
        for &u in quarantined {
            self.quarantined[u.index()] = true;
        }
        Ok(())
    }

    pub(crate) fn count(&mut self, kind: FaultKind) {
        self.counters.count(kind);
    }

    /// Mark `user` quarantined; returns `false` if it already was.
    pub(crate) fn quarantine(&mut self, user: UserId) -> bool {
        if self.is_quarantined(user) {
            return false;
        }
        self.quarantined[user.index()] = true;
        self.counters.quarantined_users = self.counters.quarantined_users.saturating_add(1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_policy_parses_aliases() {
        assert_eq!(FaultPolicy::parse("fail-fast"), Some(FaultPolicy::FailFast));
        assert_eq!(FaultPolicy::parse("skip"), Some(FaultPolicy::SkipAndCount));
        assert_eq!(
            FaultPolicy::parse("skip-and-count"),
            Some(FaultPolicy::SkipAndCount)
        );
        assert_eq!(
            FaultPolicy::parse("quarantine"),
            Some(FaultPolicy::QuarantineUser)
        );
        assert_eq!(FaultPolicy::parse("nope"), None);
        assert_eq!(FaultPolicy::parse("fail-fast").unwrap().name(), "fail-fast");
    }

    #[test]
    fn counters_classify_and_merge() {
        let mut c = FaultCounters::default();
        assert!(c.is_clean());
        c.count(FaultKind::PageOutOfRange);
        c.count(FaultKind::OwnerMismatch);
        c.count(FaultKind::QuarantinedUser);
        assert_eq!(c.total_records(), 3);
        let mut d = FaultCounters::default();
        d.count(FaultKind::PageOutOfRange);
        c.merge(&d);
        assert_eq!(c.page_out_of_range, 2);
        assert!(!c.is_clean());
    }

    #[test]
    fn counters_saturate_at_max() {
        let mut c = FaultCounters {
            page_out_of_range: u64::MAX,
            ..FaultCounters::default()
        };
        c.count(FaultKind::PageOutOfRange);
        assert_eq!(c.page_out_of_range, u64::MAX);
    }

    #[test]
    fn handler_quarantines_once() {
        let mut h = FaultHandler::new(FaultPolicy::QuarantineUser, 3);
        assert!(!h.is_quarantined(UserId(1)));
        assert!(h.quarantine(UserId(1)));
        assert!(!h.quarantine(UserId(1)));
        assert!(h.is_quarantined(UserId(1)));
        assert_eq!(h.counters().quarantined_users, 1);
        assert_eq!(h.quarantined_users(), vec![UserId(1)]);
        // Out-of-range user ids are simply "not quarantined".
        assert!(!h.is_quarantined(UserId(99)));
    }

    #[test]
    fn handler_restore_validates_users() {
        let mut h = FaultHandler::new(FaultPolicy::QuarantineUser, 2);
        let err = h
            .restore(FaultCounters::default(), &[UserId(5)])
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
        h.restore(
            FaultCounters {
                owner_mismatch: 2,
                ..FaultCounters::default()
            },
            &[UserId(1)],
        )
        .unwrap();
        assert!(h.is_quarantined(UserId(1)));
        assert_eq!(h.counters().owner_mismatch, 2);
    }

    #[test]
    fn error_displays_are_informative() {
        let f = RequestFault {
            time: 7,
            kind: FaultKind::PageOutOfRange,
            page: PageId(99),
            user: UserId(3),
        };
        let msg = SimError::from(f).to_string();
        assert!(msg.contains("t=7"));
        assert!(msg.contains("page-out-of-range"));

        let v = PolicyViolation {
            time: 2,
            policy: "lru".into(),
            kind: PolicyViolationKind::VictimNotCached(PageId(4)),
        };
        assert!(v.to_string().contains("not cached"));

        let c = CostAnomaly {
            user: Some(1),
            argument: 3.0,
            value: f64::NAN,
            what: "f_i(m_i)",
        };
        assert!(c.to_string().contains("u1"));

        let s = SnapshotError::UnsupportedVersion {
            found: 9,
            expected: 1,
        };
        assert!(s.to_string().contains("version 9 unsupported"));
    }
}
