//! Software-prefetch primitive for the batched replay kernel.
//!
//! The batched hot loop ([`SteppingEngine::step_batch`]) knows the next
//! `D` requests while serving the current one — lookahead the scalar
//! loop structurally lacks. Issuing a prefetch for request `i + D`'s
//! page-table probe while request `i` executes overlaps the dependent
//! load latency with useful work; at the default batch size the request
//! chunk itself is L1-resident, so the only cold lines on the path are
//! the page-indexed tables this primitive targets.
//!
//! On x86_64 this lowers to `prefetcht0` (fetch into all cache levels).
//! Elsewhere it compiles to nothing — a prefetch is a pure hint and
//! correctness never depends on it.
//!
//! [`SteppingEngine::step_batch`]: crate::stepper::SteppingEngine::step_batch

/// Hint the CPU to pull the cache line holding `*ptr` towards L1.
///
/// Safe for any pointer value: a prefetch never faults, and callers
/// here only form pointers to live slice elements anyway.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint instruction; it cannot fault and
    // has no architectural effect beyond cache state.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(ptr as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Prefetch element `index` of `slice`, if in range.
///
/// The bounds check keeps the pointer arithmetic defined for indices a
/// policy computed speculatively; it predicts perfectly on the hot path
/// (batch-kernel indices are always in range).
#[inline(always)]
pub fn prefetch_slice_element<T>(slice: &[T], index: usize) {
    if let Some(e) = slice.get(index) {
        prefetch_read(e as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        // Nothing observable: these must simply not fault, including the
        // out-of-range element case.
        let v = vec![1u32, 2, 3];
        prefetch_read(v.as_ptr());
        prefetch_slice_element(&v, 0);
        prefetch_slice_element(&v, 2);
        prefetch_slice_element(&v, 99);
        assert_eq!(v, [1, 2, 3]);
    }
}
