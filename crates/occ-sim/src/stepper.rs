//! A step-at-a-time engine for interactive simulations.
//!
//! [`Simulator`](crate::Simulator) replays a whole request stream;
//! [`SteppingEngine`] exposes the same hit/miss/evict state machine one
//! request at a time, for callers that interleave simulation with other
//! decisions — the multi-pool system of `occ-pools` (the paper's §5
//! future-work direction) routes each request to one of several engines
//! and migrates users between them mid-stream.
//!
//! The stepping engine also supports *external removal* of pages (a user
//! migrating away takes its pages with it), which the batch replay never
//! needs.

use crate::cache::CacheSet;
use crate::engine::EngineCtx;
use crate::error::{
    FaultHandler, FaultKind, FaultPolicy, PolicyViolation, PolicyViolationKind, RequestFault,
    SimError, SnapshotError,
};
use crate::event::{EventLog, SimEvent};
use crate::ids::{PageId, Time, UserId};
use crate::policy::ReplacementPolicy;
use crate::probe::{NoopRecorder, Recorder};
use crate::snapshot::{EngineSnapshot, SNAPSHOT_VERSION};
use crate::stats::SimStats;
use crate::trace::{Request, Universe};
use std::time::Instant;

/// Default chunk size for [`SteppingEngine::run_batched`] and friends:
/// 4096 requests × 8 bytes keeps a whole chunk (32 KiB) resident in L1
/// while amortizing the per-chunk bookkeeping over enough requests that
/// it vanishes from profiles.
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// How many requests ahead the batched kernel issues software
/// prefetches ([`CacheSet::prefetch_probe`]) while serving the current
/// request. Eight requests ≈ 100–250 ns of work on the steady-state
/// path — enough to cover an L2/L3 load without prefetching so far
/// ahead that lines are evicted again before use.
pub const PREFETCH_DISTANCE: usize = 8;

/// What happened when a request was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The page was already cached.
    Hit,
    /// The page was fetched into free space.
    Inserted,
    /// The page was fetched; the contained page was evicted.
    Evicted(PageId),
}

/// One cache + one policy, driven request by request, with an optional
/// [`Recorder`] observing every step (defaults to the free
/// [`NoopRecorder`]).
pub struct SteppingEngine<P, R = NoopRecorder> {
    universe: Universe,
    cache: CacheSet,
    stats: SimStats,
    policy: P,
    recorder: R,
    time: Time,
    events: Option<EventLog>,
}

impl<P: ReplacementPolicy> SteppingEngine<P, NoopRecorder> {
    /// Create an engine with cache size `capacity`.
    pub fn new(capacity: usize, universe: Universe, policy: P) -> Self {
        let cache = CacheSet::new(capacity, universe.num_pages());
        let stats = SimStats::new(universe.num_users());
        SteppingEngine {
            universe,
            cache,
            stats,
            policy,
            recorder: NoopRecorder,
            time: 0,
            events: None,
        }
    }

    /// Rebuild an engine entirely from a checkpoint: the universe comes
    /// from the snapshot's embedded owner table, then
    /// [`restore`](Self::restore) replays the captured state into it.
    /// `policy` must be constructed identically to the one that was
    /// snapshotted (same name and parameters); its internal state is
    /// overwritten from the snapshot.
    pub fn from_snapshot(snap: &EngineSnapshot, policy: P) -> Result<Self, SnapshotError> {
        snap.check_version()?;
        if snap.num_users == 0 {
            return Err(SnapshotError::Corrupt("snapshot has zero users".into()));
        }
        if snap.capacity == 0 {
            return Err(SnapshotError::Corrupt("snapshot has zero capacity".into()));
        }
        if let Some(&bad) = snap.owners.iter().find(|o| o.0 >= snap.num_users) {
            return Err(SnapshotError::Corrupt(format!(
                "owner table names {bad} but the snapshot has {} users",
                snap.num_users
            )));
        }
        let universe = Universe::new(snap.num_users, snap.owners.clone());
        let mut engine = SteppingEngine::new(snap.capacity, universe, policy);
        engine.restore(snap)?;
        Ok(engine)
    }

    /// Attach a recorder; subsequent [`step`](SteppingEngine::step)s
    /// dispatch its hooks (and time each request when `R::TIMED`).
    pub fn with_recorder<R: Recorder>(self, recorder: R) -> SteppingEngine<P, R> {
        SteppingEngine {
            universe: self.universe,
            cache: self.cache,
            stats: self.stats,
            policy: self.policy,
            recorder,
            time: self.time,
            events: self.events,
        }
    }
}

impl<P: ReplacementPolicy, R: Recorder> SteppingEngine<P, R> {
    /// Enable per-request event recording.
    pub fn with_events(mut self) -> Self {
        self.events = Some(EventLog::new());
        self
    }

    /// Enable per-request event recording bounded to the `capacity`
    /// newest events (see [`EventLog::bounded`]).
    pub fn with_bounded_events(mut self, capacity: usize) -> Self {
        self.events = Some(EventLog::bounded(capacity));
        self
    }

    /// Read-only view of the engine state, as handed to policies and
    /// request sources. Lets a [`RequestSource`](crate::source::RequestSource)
    /// be driven against this engine externally.
    pub fn ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            time: self.time,
            cache: &self.cache,
            stats: &self.stats,
            universe: &self.universe,
        }
    }

    /// Serve one request; advances time by one tick.
    ///
    /// This is the trusting hot path: the request is assumed well-formed
    /// and a policy contract violation panics. Use
    /// [`step_checked`](Self::step_checked) for untrusted streams.
    pub fn step(&mut self, req: Request) -> StepOutcome {
        debug_assert_eq!(
            self.universe.owner(req.page),
            req.user,
            "request owner disagrees with the universe"
        );
        match self.serve(req) {
            Ok(outcome) => outcome,
            Err(violation) => panic!("{violation}"),
        }
    }

    /// Serve one *untrusted* request under the degradation policy carried
    /// by `handler`.
    ///
    /// Well-formed requests are served exactly as [`step`](Self::step)
    /// would. Malformed records (page out of range, owner mismatch) and
    /// requests from quarantined users are classified per
    /// [`FaultKind`], reported through
    /// [`Recorder::record_fault`], and then handled per the handler's
    /// [`FaultPolicy`]: fail-fast returns the fault as an error;
    /// skip-and-count and quarantine-user absorb it and return
    /// `Ok(None)`. Dropped records still advance the clock by one tick,
    /// so the timeline stays aligned with the input stream (and with any
    /// later resume).
    ///
    /// Policy contract violations are engine bugs, not input faults, and
    /// are always returned as errors regardless of the degradation
    /// policy.
    pub fn step_checked(
        &mut self,
        req: Request,
        handler: &mut FaultHandler,
    ) -> Result<Option<StepOutcome>, SimError> {
        let kind = match self.universe.try_owner(req.page) {
            None => Some(FaultKind::PageOutOfRange),
            Some(owner) if owner != req.user => Some(FaultKind::OwnerMismatch),
            Some(_) if handler.is_quarantined(req.user) => Some(FaultKind::QuarantinedUser),
            Some(_) => None,
        };
        let Some(kind) = kind else {
            return self.serve(req).map(Some).map_err(SimError::from);
        };
        let fault = RequestFault {
            time: self.time,
            kind,
            page: req.page,
            user: req.user,
        };
        if R::ACTIVE {
            self.recorder.record_fault(&fault);
        }
        match (handler.policy(), kind) {
            (FaultPolicy::FailFast, FaultKind::PageOutOfRange | FaultKind::OwnerMismatch) => {
                return Err(fault.into());
            }
            (FaultPolicy::QuarantineUser, FaultKind::PageOutOfRange | FaultKind::OwnerMismatch) => {
                handler.count(kind);
                // Quarantine the page's true owner when the page is in
                // range (owner mismatch), else the user the record claims
                // — if either is a real user.
                let culprit = self.universe.try_owner(req.page).or_else(|| {
                    (req.user.index() < self.universe.num_users() as usize).then_some(req.user)
                });
                if let Some(user) = culprit {
                    if handler.quarantine(user) {
                        self.remove_user_externally(user);
                    }
                }
            }
            _ => handler.count(kind),
        }
        self.time += 1;
        Ok(None)
    }

    /// Serve a chunk of trusted requests through the batched hot loop.
    ///
    /// Byte-identical to calling [`step`](Self::step) once per request —
    /// the scalar path is the reference twin and the equivalence is
    /// pinned by proptests — but when the engine is uninstrumented (no
    /// active or timing recorder, no event log) the per-request outcome
    /// classification, recorder dispatch, timing, and event-log checks
    /// are hoisted out of the loop, and the cache-fullness branch is
    /// hoisted once the cache fills. Instrumented engines fall back to
    /// the scalar path so observers miss nothing.
    ///
    /// Like `step`, a policy contract violation panics; use
    /// [`run_batched_checked`](Self::run_batched_checked) for untrusted
    /// streams.
    pub fn step_batch(&mut self, batch: &[Request]) {
        if R::ACTIVE || R::TIMED || self.events.is_some() {
            for &req in batch {
                self.step(req);
            }
            return;
        }
        if let Err(violation) = self.serve_batch(batch) {
            panic!("{violation}");
        }
    }

    /// [`step_batch`](Self::step_batch) for a run of bare page ids, the
    /// shape a zero-copy source
    /// ([`RequestSource::next_page_run`](crate::source::RequestSource::next_page_run))
    /// hands out: each request's owner is derived from the universe
    /// inline — the identical lookup a decoding source performs when it
    /// materializes [`Request`]s, moved to the one place that actually
    /// consumes the owner. Byte-identical outcome to building the
    /// `Request` slice and calling `step_batch`; the ids must be in
    /// range (zero-copy sources validate each run before handing it
    /// out), out-of-range ids panic just as malformed requests do on
    /// the trusting path.
    pub fn step_page_batch(&mut self, pages: &[PageId]) {
        if R::ACTIVE || R::TIMED || self.events.is_some() {
            for &page in pages {
                let user = self.universe.owner(page);
                self.step(Request { page, user });
            }
            return;
        }
        if let Err(violation) = self.serve_page_batch(pages) {
            panic!("{violation}");
        }
    }

    /// Replay a whole request slice through [`step_batch`](Self::step_batch)
    /// in `batch_size`-request chunks (the trailing chunk may be
    /// shorter). Panics if `batch_size` is zero.
    pub fn run_batched(&mut self, requests: &[Request], batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in requests.chunks(batch_size) {
            self.step_batch(chunk);
        }
    }

    /// The fault-tolerant counterpart of [`run_batched`](Self::run_batched):
    /// identical semantics to calling [`step_checked`](Self::step_checked)
    /// once per record (same [`FaultCounters`](crate::error::FaultCounters),
    /// same quarantine set, same engine state), but chunks that a cheap
    /// pre-scan proves fault-free — every record well-formed, no user
    /// quarantined — take the batched hot loop instead of the per-record
    /// validation path.
    pub fn run_batched_checked(
        &mut self,
        records: &[Request],
        batch_size: usize,
        handler: &mut FaultHandler,
    ) -> Result<(), SimError> {
        assert!(batch_size > 0, "batch size must be positive");
        for chunk in records.chunks(batch_size) {
            // A chunk may use the trusting loop only if no record in it
            // would fault: pre-scan owners, and require an empty
            // quarantine set (a quarantined user turns even well-formed
            // records into drops). Faults can only arise inside a chunk
            // from the records themselves, so a clean pre-scan holds for
            // the whole chunk.
            let clean = !R::ACTIVE
                && !R::TIMED
                && self.events.is_none()
                && !handler.any_quarantined()
                && chunk
                    .iter()
                    .all(|r| self.universe.try_owner(r.page) == Some(r.user));
            if clean {
                self.serve_batch(chunk)?;
            } else {
                for &req in chunk {
                    self.step_checked(req, handler)?;
                }
            }
        }
        Ok(())
    }

    /// The uninstrumented batched twin of [`serve`](Self::serve): same
    /// cache/stats/policy calls in the same order, with the recorder,
    /// timing, and event-log plumbing compiled out. Split into a warmup
    /// loop (cache still filling) and a steady-state loop with the
    /// fullness check hoisted — serving never frees a slot, and external
    /// removals only happen between batches, so once full the cache
    /// stays full for the rest of the chunk.
    ///
    /// The steady-state loop additionally exploits the lookahead the
    /// batch provides: while serving request `j` it software-prefetches
    /// the page-table probe ([`CacheSet::prefetch_probe`]) for request
    /// `j + PREFETCH_DISTANCE`. (The kernel deliberately does *not*
    /// call [`ReplacementPolicy::prefetch_hint`] — the indirect call
    /// cost more than the policy-side prefetch saved; the hook remains
    /// for custom drivers.) The loop is split into a prefetching main
    /// part and a plain tail of the final [`PREFETCH_DISTANCE`]
    /// requests, so the hot loop carries no lookahead bounds check.
    /// Prefetches are pure hints; the served semantics stay
    /// byte-identical to the scalar path.
    fn serve_batch(&mut self, batch: &[Request]) -> Result<(), PolicyViolation> {
        let mut i = 0;
        while i < batch.len() && !self.cache.is_full() {
            let req = batch[i];
            debug_assert_eq!(
                self.universe.owner(req.page),
                req.user,
                "request owner disagrees with the universe"
            );
            self.serve_filling(req);
            i += 1;
        }
        let steady = &batch[i..];
        let main = steady.len().saturating_sub(PREFETCH_DISTANCE);
        let lookahead = &steady[PREFETCH_DISTANCE.min(steady.len())..];
        for (&req, ahead) in steady[..main].iter().zip(lookahead) {
            self.cache.prefetch_probe(ahead.page);
            self.serve_full(req)?;
        }
        for &req in &steady[main..] {
            self.serve_full(req)?;
        }
        Ok(())
    }

    /// [`serve_batch`](Self::serve_batch) over bare page ids: the same
    /// warmup / prefetching-steady / plain-tail structure, with each
    /// owner derived from the universe at the single point it is
    /// consumed.
    fn serve_page_batch(&mut self, pages: &[PageId]) -> Result<(), PolicyViolation> {
        let mut i = 0;
        while i < pages.len() && !self.cache.is_full() {
            let page = pages[i];
            self.serve_filling(Request {
                page,
                user: self.universe.owner(page),
            });
            i += 1;
        }
        let steady = &pages[i..];
        let main = steady.len().saturating_sub(PREFETCH_DISTANCE);
        let lookahead = &steady[PREFETCH_DISTANCE.min(steady.len())..];
        for (&page, &ahead) in steady[..main].iter().zip(lookahead) {
            self.cache.prefetch_probe(ahead);
            self.serve_full(Request {
                page,
                user: self.universe.owner(page),
            })?;
        }
        for &page in &steady[main..] {
            self.serve_full(Request {
                page,
                user: self.universe.owner(page),
            })?;
        }
        Ok(())
    }

    /// One warmup (cache not yet full) request of the batched kernel:
    /// hit or free-slot insert, no eviction case, no instrumentation.
    /// Shared by [`serve_batch`](Self::serve_batch) and
    /// [`serve_page_batch`](Self::serve_page_batch).
    #[inline(always)]
    fn serve_filling(&mut self, req: Request) {
        if self.cache.contains(req.page) {
            self.stats.record_hit(req.user);
            let ctx = EngineCtx {
                time: self.time,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_hit(&ctx, req.page);
        } else {
            self.cache.insert(req.page);
            self.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: self.time,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_insert(&ctx, req.page);
        }
        self.time += 1;
    }

    /// One steady-state (cache already full) request of the batched
    /// kernel: hit or evict-and-insert, no free-space case, no
    /// instrumentation. Kept separate so [`serve_batch`](Self::serve_batch)
    /// can run it from both the prefetching main loop and the plain
    /// tail loop without duplicating the state machine.
    #[inline(always)]
    fn serve_full(&mut self, req: Request) -> Result<(), PolicyViolation> {
        debug_assert_eq!(
            self.universe.owner(req.page),
            req.user,
            "request owner disagrees with the universe"
        );
        if self.cache.contains(req.page) {
            self.stats.record_hit(req.user);
            let ctx = EngineCtx {
                time: self.time,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_hit(&ctx, req.page);
        } else {
            let victim = {
                let ctx = EngineCtx {
                    time: self.time,
                    cache: &self.cache,
                    stats: &self.stats,
                    universe: &self.universe,
                };
                self.policy.choose_victim(&ctx, req.page)
            };
            if !self.cache.contains(victim) {
                return Err(PolicyViolation {
                    time: self.time,
                    policy: self.policy.name(),
                    kind: PolicyViolationKind::VictimNotCached(victim),
                });
            }
            if victim == req.page {
                return Err(PolicyViolation {
                    time: self.time,
                    policy: self.policy.name(),
                    kind: PolicyViolationKind::VictimIsIncoming(victim),
                });
            }
            let victim_user = self.universe.owner(victim);
            self.cache.remove(victim);
            self.stats.record_eviction(victim_user);
            self.cache.insert(req.page);
            self.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: self.time,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_evicted(&ctx, victim);
            self.policy.on_insert(&ctx, req.page);
        }
        self.time += 1;
        Ok(())
    }

    /// The shared hit/insert/evict state machine behind [`step`](Self::step)
    /// and [`step_checked`](Self::step_checked).
    fn serve(&mut self, req: Request) -> Result<StepOutcome, PolicyViolation> {
        let t = self.time;
        let started = if R::TIMED { Some(Instant::now()) } else { None };
        let outcome = if self.cache.contains(req.page) {
            self.stats.record_hit(req.user);
            let ctx = EngineCtx {
                time: t,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_hit(&ctx, req.page);
            if R::ACTIVE {
                self.recorder.record_hit(&ctx, t, req.page, req.user);
            }
            if let Some(log) = self.events.as_mut() {
                log.push(SimEvent::Hit { t, page: req.page });
            }
            StepOutcome::Hit
        } else if !self.cache.is_full() {
            self.cache.insert(req.page);
            self.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: t,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_insert(&ctx, req.page);
            if R::ACTIVE {
                self.recorder.record_insert(&ctx, t, req.page, req.user);
            }
            if let Some(log) = self.events.as_mut() {
                log.push(SimEvent::Insert { t, page: req.page });
            }
            StepOutcome::Inserted
        } else {
            let victim = {
                let ctx = EngineCtx {
                    time: t,
                    cache: &self.cache,
                    stats: &self.stats,
                    universe: &self.universe,
                };
                self.policy.choose_victim(&ctx, req.page)
            };
            if !self.cache.contains(victim) {
                return Err(PolicyViolation {
                    time: t,
                    policy: self.policy.name(),
                    kind: PolicyViolationKind::VictimNotCached(victim),
                });
            }
            if victim == req.page {
                return Err(PolicyViolation {
                    time: t,
                    policy: self.policy.name(),
                    kind: PolicyViolationKind::VictimIsIncoming(victim),
                });
            }
            let victim_user = self.universe.owner(victim);
            self.cache.remove(victim);
            self.stats.record_eviction(victim_user);
            self.cache.insert(req.page);
            self.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: t,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_evicted(&ctx, victim);
            self.policy.on_insert(&ctx, req.page);
            if R::ACTIVE {
                self.recorder
                    .record_eviction(&ctx, t, req.page, req.user, victim, victim_user);
            }
            if let Some(log) = self.events.as_mut() {
                log.push(SimEvent::Evict {
                    t,
                    page: req.page,
                    victim,
                    victim_user,
                });
            }
            StepOutcome::Evicted(victim)
        };
        if let Some(start) = started {
            self.recorder
                .record_latency_ns(t, start.elapsed().as_nanos() as u64);
        }
        self.time += 1;
        Ok(outcome)
    }

    /// Evict every cached page, charging the evictions and firing
    /// [`Recorder::record_flush_eviction`] — the paper's end-of-sequence
    /// dummy-user flush (§2.1), matching
    /// [`SimOptions::flush_at_end`](crate::engine::SimOptions). Intended
    /// as the final operation of a run: the policy is *not* notified, so
    /// its per-page metadata is stale afterwards. Returns how many pages
    /// were flushed.
    pub fn flush(&mut self) -> usize {
        let drained = self.cache.drain_all();
        for &page in &drained {
            let user = self.universe.owner(page);
            self.stats.record_eviction(user);
            if R::ACTIVE {
                self.recorder.record_flush_eviction(page, user);
            }
        }
        drained.len()
    }

    /// Remove `page` from the cache without charging an eviction (the
    /// page leaves for reasons outside the replacement policy's control,
    /// e.g. its owner migrating to another pool). Notifies the policy via
    /// [`ReplacementPolicy::on_external_removal`]. No-op if not cached.
    pub fn remove_externally(&mut self, page: PageId) -> bool {
        if !self.cache.contains(page) {
            return false;
        }
        self.cache.remove(page);
        let ctx = EngineCtx {
            time: self.time,
            cache: &self.cache,
            stats: &self.stats,
            universe: &self.universe,
        };
        self.policy.on_external_removal(&ctx, page);
        true
    }

    /// Remove every cached page owned by `user` (see
    /// [`Self::remove_externally`]); returns how many were removed.
    pub fn remove_user_externally(&mut self, user: UserId) -> usize {
        let pages: Vec<PageId> = self
            .cache
            .iter()
            .filter(|&p| self.universe.owner(p) == user)
            .collect();
        for p in &pages {
            let removed = self.remove_externally(*p);
            debug_assert!(removed);
        }
        pages.len()
    }

    /// Current counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current cache contents.
    pub fn cache(&self) -> &CacheSet {
        &self.cache
    }

    /// Requests served so far.
    pub fn time(&self) -> Time {
        self.time
    }

    /// The recorded events, if enabled.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Access the wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Access the attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the attached recorder (e.g. to drain a sink
    /// mid-run).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Tear down the engine, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Move the event log out of the engine (recording stops).
    pub fn take_events(&mut self) -> Option<EventLog> {
        self.events.take()
    }

    /// Capture a versioned checkpoint of the full engine + policy state.
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the policy does not
    /// implement [`ReplacementPolicy::save_state`]. Fault-handling state
    /// is not known to the engine; use
    /// [`snapshot_with_faults`](Self::snapshot_with_faults) for checked
    /// runs. The event log and recorder are *not* part of the snapshot —
    /// callers that need continuous telemetry across a resume must
    /// persist their recorder separately (as `occ observe` does).
    pub fn snapshot(&self) -> Result<EngineSnapshot, SnapshotError> {
        let policy = self
            .policy
            .save_state()
            .ok_or_else(|| SnapshotError::Unsupported(self.policy.name()))?;
        Ok(EngineSnapshot {
            version: SNAPSHOT_VERSION,
            time: self.time,
            capacity: self.cache.capacity(),
            num_users: self.universe.num_users(),
            owners: self.universe.owners().to_vec(),
            cache_pages: self.cache.pages().to_vec(),
            stats: self.stats.per_user().to_vec(),
            policy_name: self.policy.name(),
            policy,
            faults: crate::error::FaultCounters::default(),
            quarantined: Vec::new(),
        })
    }

    /// [`snapshot`](Self::snapshot) plus the fault counters and
    /// quarantine membership of a checked run.
    pub fn snapshot_with_faults(
        &self,
        handler: &FaultHandler,
    ) -> Result<EngineSnapshot, SnapshotError> {
        let mut snap = self.snapshot()?;
        snap.faults = handler.counters().clone();
        snap.quarantined = handler.quarantined_users();
        Ok(snap)
    }

    /// Restore this engine to a previously captured checkpoint.
    ///
    /// The snapshot must match the engine it is restored into: same
    /// format version, capacity, universe, and policy name — anything
    /// else is a [`SnapshotError::Mismatch`]. On success the clock,
    /// cache contents (in their original operation-history order),
    /// counters, and policy state are exactly as they were at capture
    /// time, so continuing the run is byte-identical to never having
    /// stopped. The event log restarts empty (it is not part of the
    /// snapshot).
    pub fn restore(&mut self, snap: &EngineSnapshot) -> Result<(), SnapshotError> {
        snap.check_version()?;
        if snap.num_users != self.universe.num_users()
            || snap.owners.as_slice() != self.universe.owners()
        {
            return Err(SnapshotError::Mismatch(
                "snapshot universe differs from the engine's".into(),
            ));
        }
        if snap.capacity != self.cache.capacity() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot capacity {} vs engine capacity {}",
                snap.capacity,
                self.cache.capacity()
            )));
        }
        let name = self.policy.name();
        if snap.policy_name != name {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was taken with policy '{}' but the engine runs '{name}'",
                snap.policy_name
            )));
        }
        if snap.stats.len() != self.universe.num_users() as usize {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {} per-user stat rows for {} users",
                snap.stats.len(),
                self.universe.num_users()
            )));
        }
        let cache =
            CacheSet::try_restore(snap.capacity, self.universe.num_pages(), &snap.cache_pages)?;
        self.cache = cache;
        self.stats = SimStats::from_per_user(snap.stats.clone());
        self.time = snap.time;
        self.events = self.events.as_ref().map(|log| match log.capacity() {
            Some(c) => EventLog::bounded(c),
            None => EventLog::new(),
        });
        self.policy.reset();
        let ctx = EngineCtx {
            time: self.time,
            cache: &self.cache,
            stats: &self.stats,
            universe: &self.universe,
        };
        self.policy.load_state(&ctx, &snap.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::PolicyState;
    use crate::trace::Trace;

    struct EvictFirst;
    impl ReplacementPolicy for EvictFirst {
        fn name(&self) -> String {
            "evict-first".into()
        }
        fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
            ctx.cache.pages()[0]
        }
        // Stateless, so checkpointing is trivial: the engine-owned cache
        // order is the whole state.
        fn save_state(&self) -> Option<PolicyState> {
            Some(PolicyState::new())
        }
        fn load_state(
            &mut self,
            _ctx: &EngineCtx,
            _state: &PolicyState,
        ) -> Result<(), SnapshotError> {
            Ok(())
        }
    }

    #[test]
    fn stepper_matches_batch_simulator() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..120u32).map(|i| (i * 7 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let batch = crate::Simulator::new(3).run(&mut EvictFirst, &trace);

        let mut eng = SteppingEngine::new(3, u.clone(), EvictFirst);
        for (_, r) in trace.iter() {
            eng.step(r);
        }
        assert_eq!(eng.stats().miss_vector(), batch.miss_vector());
        assert_eq!(eng.stats().eviction_vector(), batch.stats.eviction_vector());
        assert_eq!(eng.time(), batch.steps);
    }

    #[test]
    fn batched_replay_matches_scalar_including_partial_tail() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..121u32).map(|i| (i * 7 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);

        let mut scalar = SteppingEngine::new(3, u.clone(), EvictFirst);
        for (_, r) in trace.iter() {
            scalar.step(r);
        }
        // 121 requests over batch=16 leaves a 9-request trailing chunk.
        let mut batched = SteppingEngine::new(3, u.clone(), EvictFirst);
        batched.run_batched(trace.requests(), 16);
        assert_eq!(batched.stats(), scalar.stats());
        assert_eq!(batched.time(), scalar.time());
        assert_eq!(batched.cache().pages(), scalar.cache().pages());
    }

    #[test]
    fn page_batches_match_request_batches() {
        let u = Universe::uniform(2, 3);
        let pages_raw: Vec<u32> = (0..121u32).map(|i| (i * 7 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages_raw);
        let pages: Vec<PageId> = trace.requests().iter().map(|r| r.page).collect();

        let mut by_request = SteppingEngine::new(3, u.clone(), EvictFirst);
        by_request.run_batched(trace.requests(), 16);
        let mut by_page = SteppingEngine::new(3, u.clone(), EvictFirst);
        for chunk in pages.chunks(16) {
            by_page.step_page_batch(chunk);
        }
        assert_eq!(by_page.stats(), by_request.stats());
        assert_eq!(by_page.time(), by_request.time());
        assert_eq!(by_page.cache().pages(), by_request.cache().pages());

        // The instrumented fallback derives the same owners too.
        let mut with_events = SteppingEngine::new(3, u.clone(), EvictFirst).with_events();
        for chunk in pages.chunks(16) {
            with_events.step_page_batch(chunk);
        }
        assert_eq!(with_events.stats(), by_request.stats());
    }

    #[test]
    fn batched_replay_with_events_falls_back_to_scalar_path() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..40u32).map(|i| (i * 5 + 2) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);

        let mut scalar = SteppingEngine::new(3, u.clone(), EvictFirst).with_events();
        for (_, r) in trace.iter() {
            scalar.step(r);
        }
        let mut batched = SteppingEngine::new(3, u.clone(), EvictFirst).with_events();
        batched.run_batched(trace.requests(), 7);
        assert_eq!(
            batched.events().unwrap().to_vec(),
            scalar.events().unwrap().to_vec()
        );
        assert_eq!(batched.stats(), scalar.stats());
    }

    #[test]
    fn batched_checked_matches_scalar_on_faulty_stream() {
        let u = Universe::uniform(2, 2); // u0: p0 p1, u1: p2 p3
        let mut records = Vec::new();
        for i in 0..50u32 {
            records.push(u.request(PageId(i % 4)));
            if i % 7 == 3 {
                records.push(Request {
                    page: PageId(100 + i),
                    user: UserId(0),
                });
            }
            if i == 20 {
                // Owner-mismatch record: quarantines p1's true owner u0.
                records.push(Request {
                    page: PageId(1),
                    user: UserId(1),
                });
            }
        }

        for policy in [FaultPolicy::SkipAndCount, FaultPolicy::QuarantineUser] {
            let mut scalar = SteppingEngine::new(2, u.clone(), EvictFirst);
            let mut hs = FaultHandler::new(policy, u.num_users());
            for &r in &records {
                scalar.step_checked(r, &mut hs).unwrap();
            }
            let mut batched = SteppingEngine::new(2, u.clone(), EvictFirst);
            let mut hb = FaultHandler::new(policy, u.num_users());
            batched.run_batched_checked(&records, 8, &mut hb).unwrap();
            assert_eq!(hb.counters(), hs.counters(), "{policy}");
            assert_eq!(hb.quarantined_users(), hs.quarantined_users(), "{policy}");
            assert_eq!(batched.stats(), scalar.stats(), "{policy}");
            assert_eq!(batched.time(), scalar.time(), "{policy}");
            assert_eq!(batched.cache().pages(), scalar.cache().pages(), "{policy}");
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let u = Universe::single_user(2);
        let mut eng = SteppingEngine::new(1, u.clone(), EvictFirst);
        eng.run_batched(&[u.request(PageId(0))], 0);
    }

    #[test]
    fn outcomes_classified() {
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        assert_eq!(eng.step(u.request(PageId(0))), StepOutcome::Inserted);
        assert_eq!(eng.step(u.request(PageId(0))), StepOutcome::Hit);
        assert_eq!(eng.step(u.request(PageId(1))), StepOutcome::Inserted);
        assert_eq!(
            eng.step(u.request(PageId(2))),
            StepOutcome::Evicted(PageId(0))
        );
    }

    #[test]
    fn external_removal_frees_space_without_eviction_charge() {
        let u = Universe::uniform(2, 2); // u0: p0 p1, u1: p2 p3
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        eng.step(u.request(PageId(0)));
        eng.step(u.request(PageId(2)));
        assert!(eng.cache().is_full());
        let removed = eng.remove_user_externally(UserId(0));
        assert_eq!(removed, 1);
        assert!(!eng.cache().contains(PageId(0)));
        // No eviction was charged.
        assert_eq!(eng.stats().total_evictions(), 0);
        // The freed slot is reusable without an eviction.
        assert_eq!(eng.step(u.request(PageId(3))), StepOutcome::Inserted);
    }

    #[test]
    fn removing_uncached_page_is_a_noop() {
        let u = Universe::single_user(2);
        let mut eng = SteppingEngine::new(1, u, EvictFirst);
        assert!(!eng.remove_externally(PageId(1)));
    }

    #[test]
    fn events_recorded_when_enabled() {
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(1, u.clone(), EvictFirst).with_events();
        eng.step(u.request(PageId(0)));
        eng.step(u.request(PageId(1)));
        let log = eng.events().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.eviction_sequence().len(), 1);
    }

    fn corrupt_page(u: &Universe) -> Request {
        Request {
            page: PageId(u.num_pages() + 5),
            user: UserId(0),
        }
    }

    fn wrong_owner(page: u32) -> Request {
        Request {
            page: PageId(page),
            user: UserId(1),
        }
    }

    #[test]
    fn step_checked_fail_fast_surfaces_the_fault() {
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        let mut h = FaultHandler::new(FaultPolicy::FailFast, u.num_users());
        assert_eq!(
            eng.step_checked(u.request(PageId(0)), &mut h).unwrap(),
            Some(StepOutcome::Inserted)
        );
        let err = eng.step_checked(corrupt_page(&u), &mut h).unwrap_err();
        match err {
            SimError::Request(f) => {
                assert_eq!(f.kind, FaultKind::PageOutOfRange);
                assert_eq!(f.time, 1);
            }
            other => panic!("expected a request fault, got {other}"),
        }
        // Nothing was counted or served.
        assert!(h.counters().is_clean());
        assert_eq!(eng.time(), 1);
    }

    #[test]
    fn step_checked_skip_counts_and_keeps_the_clock_aligned() {
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        let mut h = FaultHandler::new(FaultPolicy::SkipAndCount, u.num_users());
        eng.step_checked(u.request(PageId(0)), &mut h).unwrap();
        assert_eq!(eng.step_checked(corrupt_page(&u), &mut h).unwrap(), None);
        assert_eq!(eng.step_checked(wrong_owner(1), &mut h).unwrap(), None);
        eng.step_checked(u.request(PageId(1)), &mut h).unwrap();
        assert_eq!(h.counters().page_out_of_range, 1);
        assert_eq!(h.counters().owner_mismatch, 1);
        // Dropped records still consumed a tick each.
        assert_eq!(eng.time(), 4);
        assert_eq!(eng.stats().total_misses(), 2);
    }

    #[test]
    fn step_checked_quarantine_evicts_and_silences_the_user() {
        let u = Universe::uniform(2, 2); // u0: p0 p1, u1: p2 p3
        let mut eng = SteppingEngine::new(3, u.clone(), EvictFirst);
        let mut h = FaultHandler::new(FaultPolicy::QuarantineUser, u.num_users());
        eng.step_checked(u.request(PageId(0)), &mut h).unwrap();
        eng.step_checked(u.request(PageId(2)), &mut h).unwrap();
        // A record claiming u1 owns p1 quarantines p1's true owner, u0.
        assert_eq!(eng.step_checked(wrong_owner(1), &mut h).unwrap(), None);
        assert!(h.is_quarantined(UserId(0)));
        assert!(!eng.cache().contains(PageId(0)), "u0's pages were removed");
        assert!(eng.cache().contains(PageId(2)));
        // No eviction was charged for the quarantine removal.
        assert_eq!(eng.stats().total_evictions(), 0);
        // u0's later (well-formed) requests are dropped and counted.
        assert_eq!(
            eng.step_checked(u.request(PageId(0)), &mut h).unwrap(),
            None
        );
        assert_eq!(h.counters().quarantined_drops, 1);
        assert_eq!(h.counters().quarantined_users, 1);
        // u1 is unaffected.
        assert_eq!(
            eng.step_checked(u.request(PageId(2)), &mut h).unwrap(),
            Some(StepOutcome::Hit)
        );
    }

    #[test]
    fn step_checked_policy_violation_is_always_an_error() {
        struct Liar;
        impl ReplacementPolicy for Liar {
            fn name(&self) -> String {
                "liar".into()
            }
            fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
                PageId(2) // never cached in this scenario
            }
        }
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(1, u.clone(), Liar);
        let mut h = FaultHandler::new(FaultPolicy::SkipAndCount, u.num_users());
        eng.step_checked(u.request(PageId(0)), &mut h).unwrap();
        let err = eng.step_checked(u.request(PageId(1)), &mut h).unwrap_err();
        assert!(matches!(err, SimError::Policy(_)), "got {err}");
    }

    #[test]
    fn flush_matches_batch_accounting() {
        let u = Universe::uniform(2, 2);
        let pages = [0u32, 2, 1, 0, 3, 2];
        let trace = Trace::from_page_indices(&u, &pages);
        let batch = crate::Simulator::new(2)
            .flush_at_end(true)
            .run(&mut EvictFirst, &trace);
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        for (_, r) in trace.iter() {
            eng.step(r);
        }
        let flushed = eng.flush();
        assert_eq!(flushed, 2);
        assert_eq!(eng.stats().eviction_vector(), batch.stats.eviction_vector());
        assert!(eng.cache().is_empty());
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..60u32).map(|i| (i * 5 + 2) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);

        // Uninterrupted run.
        let mut full = SteppingEngine::new(3, u.clone(), EvictFirst).with_events();
        for (_, r) in trace.iter() {
            full.step(r);
        }

        // Run to the midpoint, snapshot, restore into a fresh engine,
        // continue.
        let cut = 31usize;
        let mut first = SteppingEngine::new(3, u.clone(), EvictFirst).with_events();
        for (_, r) in trace.iter().take(cut) {
            first.step(r);
        }
        let snap = first.snapshot().unwrap();
        assert_eq!(snap.time, cut as Time);

        let mut resumed = SteppingEngine::from_snapshot(&snap, EvictFirst)
            .unwrap()
            .with_events();
        for (_, r) in trace.iter().skip(cut) {
            resumed.step(r);
        }
        assert_eq!(resumed.stats(), full.stats());
        assert_eq!(resumed.time(), full.time());
        assert_eq!(resumed.cache().pages(), full.cache().pages());
        // Prefix events + suffix events = uninterrupted events.
        let mut stitched = first.events().unwrap().to_vec();
        stitched.extend(resumed.events().unwrap().to_vec());
        assert_eq!(stitched, full.events().unwrap().to_vec());
    }

    #[test]
    fn restore_rejects_mismatched_engines() {
        let u = Universe::uniform(2, 2);
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        eng.step(u.request(PageId(0)));
        let snap = eng.snapshot().unwrap();

        // Wrong capacity.
        let mut other = SteppingEngine::new(3, u.clone(), EvictFirst);
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));

        // Wrong universe.
        let mut other = SteppingEngine::new(2, Universe::uniform(2, 3), EvictFirst);
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::Mismatch(_))
        ));

        // Wrong version.
        let mut bad = snap.clone();
        bad.version = SNAPSHOT_VERSION + 7;
        let mut other = SteppingEngine::new(2, u.clone(), EvictFirst);
        assert!(matches!(
            other.restore(&bad),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));

        // Corrupt cache contents.
        let mut bad = snap.clone();
        bad.cache_pages = vec![PageId(0), PageId(0)];
        let mut other = SteppingEngine::new(2, u, EvictFirst);
        assert!(matches!(
            other.restore(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_requires_policy_support() {
        struct Opaque;
        impl ReplacementPolicy for Opaque {
            fn name(&self) -> String {
                "opaque".into()
            }
            fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
                ctx.cache.pages()[0]
            }
        }
        let u = Universe::single_user(2);
        let eng = SteppingEngine::new(1, u, Opaque);
        assert!(matches!(
            eng.snapshot(),
            Err(SnapshotError::Unsupported(name)) if name == "opaque"
        ));
    }
}
