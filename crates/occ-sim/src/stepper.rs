//! A step-at-a-time engine for interactive simulations.
//!
//! [`Simulator`](crate::Simulator) replays a whole request stream;
//! [`SteppingEngine`] exposes the same hit/miss/evict state machine one
//! request at a time, for callers that interleave simulation with other
//! decisions — the multi-pool system of `occ-pools` (the paper's §5
//! future-work direction) routes each request to one of several engines
//! and migrates users between them mid-stream.
//!
//! The stepping engine also supports *external removal* of pages (a user
//! migrating away takes its pages with it), which the batch replay never
//! needs.

use crate::cache::CacheSet;
use crate::engine::EngineCtx;
use crate::event::{EventLog, SimEvent};
use crate::ids::{PageId, Time, UserId};
use crate::policy::ReplacementPolicy;
use crate::probe::{NoopRecorder, Recorder};
use crate::stats::SimStats;
use crate::trace::{Request, Universe};
use std::time::Instant;

/// What happened when a request was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The page was already cached.
    Hit,
    /// The page was fetched into free space.
    Inserted,
    /// The page was fetched; the contained page was evicted.
    Evicted(PageId),
}

/// One cache + one policy, driven request by request, with an optional
/// [`Recorder`] observing every step (defaults to the free
/// [`NoopRecorder`]).
pub struct SteppingEngine<P, R = NoopRecorder> {
    universe: Universe,
    cache: CacheSet,
    stats: SimStats,
    policy: P,
    recorder: R,
    time: Time,
    events: Option<EventLog>,
}

impl<P: ReplacementPolicy> SteppingEngine<P, NoopRecorder> {
    /// Create an engine with cache size `capacity`.
    pub fn new(capacity: usize, universe: Universe, policy: P) -> Self {
        let cache = CacheSet::new(capacity, universe.num_pages());
        let stats = SimStats::new(universe.num_users());
        SteppingEngine {
            universe,
            cache,
            stats,
            policy,
            recorder: NoopRecorder,
            time: 0,
            events: None,
        }
    }

    /// Attach a recorder; subsequent [`step`](SteppingEngine::step)s
    /// dispatch its hooks (and time each request when `R::TIMED`).
    pub fn with_recorder<R: Recorder>(self, recorder: R) -> SteppingEngine<P, R> {
        SteppingEngine {
            universe: self.universe,
            cache: self.cache,
            stats: self.stats,
            policy: self.policy,
            recorder,
            time: self.time,
            events: self.events,
        }
    }
}

impl<P: ReplacementPolicy, R: Recorder> SteppingEngine<P, R> {
    /// Enable per-request event recording.
    pub fn with_events(mut self) -> Self {
        self.events = Some(EventLog::new());
        self
    }

    /// Serve one request; advances time by one tick.
    pub fn step(&mut self, req: Request) -> StepOutcome {
        debug_assert_eq!(
            self.universe.owner(req.page),
            req.user,
            "request owner disagrees with the universe"
        );
        let t = self.time;
        let started = if R::TIMED { Some(Instant::now()) } else { None };
        let outcome = if self.cache.contains(req.page) {
            self.stats.record_hit(req.user);
            let ctx = EngineCtx {
                time: t,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_hit(&ctx, req.page);
            if R::ACTIVE {
                self.recorder.record_hit(&ctx, t, req.page, req.user);
            }
            if let Some(log) = self.events.as_mut() {
                log.push(SimEvent::Hit { t, page: req.page });
            }
            StepOutcome::Hit
        } else if !self.cache.is_full() {
            self.cache.insert(req.page);
            self.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: t,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_insert(&ctx, req.page);
            if R::ACTIVE {
                self.recorder.record_insert(&ctx, t, req.page, req.user);
            }
            if let Some(log) = self.events.as_mut() {
                log.push(SimEvent::Insert { t, page: req.page });
            }
            StepOutcome::Inserted
        } else {
            let victim = {
                let ctx = EngineCtx {
                    time: t,
                    cache: &self.cache,
                    stats: &self.stats,
                    universe: &self.universe,
                };
                self.policy.choose_victim(&ctx, req.page)
            };
            assert!(
                self.cache.contains(victim),
                "policy {} chose victim {victim} which is not cached",
                self.policy.name()
            );
            assert_ne!(
                victim,
                req.page,
                "policy {} tried to evict the incoming page",
                self.policy.name()
            );
            let victim_user = self.universe.owner(victim);
            self.cache.remove(victim);
            self.stats.record_eviction(victim_user);
            self.cache.insert(req.page);
            self.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: t,
                cache: &self.cache,
                stats: &self.stats,
                universe: &self.universe,
            };
            self.policy.on_evicted(&ctx, victim);
            self.policy.on_insert(&ctx, req.page);
            if R::ACTIVE {
                self.recorder
                    .record_eviction(&ctx, t, req.page, req.user, victim, victim_user);
            }
            if let Some(log) = self.events.as_mut() {
                log.push(SimEvent::Evict {
                    t,
                    page: req.page,
                    victim,
                    victim_user,
                });
            }
            StepOutcome::Evicted(victim)
        };
        if let Some(start) = started {
            self.recorder
                .record_latency_ns(t, start.elapsed().as_nanos() as u64);
        }
        self.time += 1;
        outcome
    }

    /// Remove `page` from the cache without charging an eviction (the
    /// page leaves for reasons outside the replacement policy's control,
    /// e.g. its owner migrating to another pool). Notifies the policy via
    /// [`ReplacementPolicy::on_external_removal`]. No-op if not cached.
    pub fn remove_externally(&mut self, page: PageId) -> bool {
        if !self.cache.contains(page) {
            return false;
        }
        self.cache.remove(page);
        let ctx = EngineCtx {
            time: self.time,
            cache: &self.cache,
            stats: &self.stats,
            universe: &self.universe,
        };
        self.policy.on_external_removal(&ctx, page);
        true
    }

    /// Remove every cached page owned by `user` (see
    /// [`Self::remove_externally`]); returns how many were removed.
    pub fn remove_user_externally(&mut self, user: UserId) -> usize {
        let pages: Vec<PageId> = self
            .cache
            .iter()
            .filter(|&p| self.universe.owner(p) == user)
            .collect();
        for p in &pages {
            let removed = self.remove_externally(*p);
            debug_assert!(removed);
        }
        pages.len()
    }

    /// Current counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current cache contents.
    pub fn cache(&self) -> &CacheSet {
        &self.cache
    }

    /// Requests served so far.
    pub fn time(&self) -> Time {
        self.time
    }

    /// The recorded events, if enabled.
    pub fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    /// Access the wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Access the attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the attached recorder (e.g. to drain a sink
    /// mid-run).
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Tear down the engine, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    struct EvictFirst;
    impl ReplacementPolicy for EvictFirst {
        fn name(&self) -> String {
            "evict-first".into()
        }
        fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
            ctx.cache.pages()[0]
        }
    }

    #[test]
    fn stepper_matches_batch_simulator() {
        let u = Universe::uniform(2, 3);
        let pages: Vec<u32> = (0..120u32).map(|i| (i * 7 + 1) % 6).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let batch = crate::Simulator::new(3).run(&mut EvictFirst, &trace);

        let mut eng = SteppingEngine::new(3, u.clone(), EvictFirst);
        for (_, r) in trace.iter() {
            eng.step(r);
        }
        assert_eq!(eng.stats().miss_vector(), batch.miss_vector());
        assert_eq!(eng.stats().eviction_vector(), batch.stats.eviction_vector());
        assert_eq!(eng.time(), batch.steps);
    }

    #[test]
    fn outcomes_classified() {
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        assert_eq!(eng.step(u.request(PageId(0))), StepOutcome::Inserted);
        assert_eq!(eng.step(u.request(PageId(0))), StepOutcome::Hit);
        assert_eq!(eng.step(u.request(PageId(1))), StepOutcome::Inserted);
        assert_eq!(
            eng.step(u.request(PageId(2))),
            StepOutcome::Evicted(PageId(0))
        );
    }

    #[test]
    fn external_removal_frees_space_without_eviction_charge() {
        let u = Universe::uniform(2, 2); // u0: p0 p1, u1: p2 p3
        let mut eng = SteppingEngine::new(2, u.clone(), EvictFirst);
        eng.step(u.request(PageId(0)));
        eng.step(u.request(PageId(2)));
        assert!(eng.cache().is_full());
        let removed = eng.remove_user_externally(UserId(0));
        assert_eq!(removed, 1);
        assert!(!eng.cache().contains(PageId(0)));
        // No eviction was charged.
        assert_eq!(eng.stats().total_evictions(), 0);
        // The freed slot is reusable without an eviction.
        assert_eq!(eng.step(u.request(PageId(3))), StepOutcome::Inserted);
    }

    #[test]
    fn removing_uncached_page_is_a_noop() {
        let u = Universe::single_user(2);
        let mut eng = SteppingEngine::new(1, u, EvictFirst);
        assert!(!eng.remove_externally(PageId(1)));
    }

    #[test]
    fn events_recorded_when_enabled() {
        let u = Universe::single_user(3);
        let mut eng = SteppingEngine::new(1, u.clone(), EvictFirst).with_events();
        eng.step(u.request(PageId(0)));
        eng.step(u.request(PageId(1)));
        let log = eng.events().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.eviction_sequence().len(), 1);
    }
}
