//! The simulation engine: exact replay of a request sequence against a
//! replacement policy, with per-tenant accounting.
//!
//! The engine is the single owner of ground truth (cache contents and
//! counters); policies only pick victims. This guarantees that two policies
//! run on the same trace see byte-identical hit/miss classification, which
//! is what makes cross-policy cost comparisons meaningful.

use crate::cache::CacheSet;
use crate::error::{FaultCounters, FaultHandler, FaultPolicy, SimError};
use crate::event::{EventLog, SimEvent};
use crate::ids::{PageId, Time, UserId};
use crate::policy::ReplacementPolicy;
use crate::probe::{NoopRecorder, Recorder};
use crate::source::{RequestSource, TraceSource};
use crate::stats::SimStats;
use crate::stepper::SteppingEngine;
use crate::trace::{Request, Trace, Universe};
use std::time::Instant;

/// Read-only view of the engine state handed to policies and sources.
pub struct EngineCtx<'a> {
    /// Current time (zero-based request index).
    pub time: Time,
    /// Current cache contents.
    pub cache: &'a CacheSet,
    /// Counters so far. During [`ReplacementPolicy::choose_victim`] these
    /// exclude the in-flight request, so `stats.user(u).evictions` is the
    /// paper's `m(u, t-1)`.
    pub stats: &'a SimStats,
    /// The page/user universe.
    pub universe: &'a Universe,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimOptions {
    /// Record a [`SimEvent`] per request (off by default: costs memory
    /// proportional to the trace).
    pub record_events: bool,
    /// Retention limit for the event log: `Some(n)` keeps only the `n`
    /// newest events in a ring (see [`EventLog::bounded`]), so recording
    /// a long trace costs `O(n)` memory instead of `O(trace)`. `None`
    /// (the default) retains everything, which the equivalence tests
    /// rely on. Only meaningful together with `record_events`.
    pub event_capacity: Option<usize>,
    /// After the last request, evict every cached page and count those
    /// evictions. This models the paper's dummy-user flush (§2.1), making
    /// per-user eviction counts equal per-user miss counts.
    pub flush_at_end: bool,
}

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-user counters.
    pub stats: SimStats,
    /// Event log, present iff [`SimOptions::record_events`] was set.
    pub events: Option<EventLog>,
    /// Pages cached after the final request (before any flush), ascending.
    pub final_cache: Vec<PageId>,
    /// Number of requests served.
    pub steps: u64,
}

impl SimResult {
    /// Total misses (fetches) across users.
    pub fn total_misses(&self) -> u64 {
        self.stats.total_misses()
    }

    /// Per-user miss vector `a_i(σ)`, indexed by user id.
    pub fn miss_vector(&self) -> Vec<u64> {
        self.stats.miss_vector()
    }

    /// Miss rate over the whole run (`0.0` for an empty run).
    pub fn miss_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_misses() as f64 / self.steps as f64
        }
    }
}

/// Outcome of a checked (fault-tolerant) run: the ordinary result plus
/// everything the degradation policy absorbed along the way.
///
/// Note that [`SimResult::steps`] counts *consumed records* here, not
/// served requests: records dropped under skip-and-count or
/// quarantine-user still advance the clock, keeping the timeline aligned
/// with the input stream.
#[derive(Clone, Debug)]
pub struct CheckedRun {
    /// The ordinary run result.
    pub result: SimResult,
    /// Faults absorbed by the degradation policy.
    pub faults: FaultCounters,
    /// Users quarantined during the run (empty unless the policy was
    /// [`FaultPolicy::QuarantineUser`]).
    pub quarantined: Vec<UserId>,
}

/// The simulator: a cache size plus run options.
#[derive(Clone, Copy, Debug)]
pub struct Simulator {
    capacity: usize,
    options: SimOptions,
}

impl Simulator {
    /// A simulator with cache size `k` and default options.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache size k must be positive");
        Simulator {
            capacity,
            options: SimOptions::default(),
        }
    }

    /// Replace the options wholesale.
    pub fn with_options(mut self, options: SimOptions) -> Self {
        self.options = options;
        self
    }

    /// Enable per-request event recording.
    pub fn record_events(mut self, on: bool) -> Self {
        self.options.record_events = on;
        self
    }

    /// Bound the event log to the `capacity` newest events (implies
    /// nothing unless [`Self::record_events`] is also enabled).
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.options.event_capacity = Some(capacity);
        self
    }

    /// Enable the end-of-run flush (count one eviction per page left in the
    /// cache).
    pub fn flush_at_end(mut self, on: bool) -> Self {
        self.options.flush_at_end = on;
        self
    }

    /// Cache size `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Run `policy` over a fixed `trace`.
    pub fn run<P: ReplacementPolicy>(&self, policy: &mut P, trace: &Trace) -> SimResult {
        let mut source = TraceSource::new(trace);
        self.run_source(policy, &mut source)
    }

    /// Run `policy` over a fixed `trace` with a [`Recorder`] observing
    /// every decision.
    pub fn run_recorded<P, R>(&self, policy: &mut P, trace: &Trace, recorder: &mut R) -> SimResult
    where
        P: ReplacementPolicy,
        R: Recorder,
    {
        let mut source = TraceSource::new(trace);
        self.run_source_recorded(policy, &mut source, recorder)
    }

    /// Run `policy` against a (possibly adaptive) request source.
    pub fn run_source<P, S>(&self, policy: &mut P, source: &mut S) -> SimResult
    where
        P: ReplacementPolicy,
        S: RequestSource,
    {
        // NoopRecorder's hooks are dead code behind `ACTIVE = false`, so
        // this monomorphizes to the unrecorded engine.
        self.run_source_recorded(policy, source, &mut NoopRecorder)
    }

    /// Run `policy` against a request source with a [`Recorder`]
    /// observing every decision (see [`crate::probe`]).
    pub fn run_source_recorded<P, S, R>(
        &self,
        policy: &mut P,
        source: &mut S,
        recorder: &mut R,
    ) -> SimResult
    where
        P: ReplacementPolicy,
        S: RequestSource,
        R: Recorder,
    {
        let universe = source.universe().clone();
        let mut cache = CacheSet::new(self.capacity, universe.num_pages());
        let mut stats = SimStats::new(universe.num_users());
        let mut events = self
            .options
            .record_events
            .then(|| match self.options.event_capacity {
                Some(capacity) => EventLog::bounded(capacity),
                None => EventLog::new(),
            });
        let mut t: Time = 0;

        loop {
            let req = {
                let ctx = EngineCtx {
                    time: t,
                    cache: &cache,
                    stats: &stats,
                    universe: &universe,
                };
                match source.next_request(&ctx) {
                    Some(r) => r,
                    None => break,
                }
            };
            debug_assert_eq!(
                universe.owner(req.page),
                req.user,
                "request owner disagrees with the universe"
            );

            let started = if R::TIMED { Some(Instant::now()) } else { None };
            if cache.contains(req.page) {
                stats.record_hit(req.user);
                let ctx = EngineCtx {
                    time: t,
                    cache: &cache,
                    stats: &stats,
                    universe: &universe,
                };
                policy.on_hit(&ctx, req.page);
                if R::ACTIVE {
                    recorder.record_hit(&ctx, t, req.page, req.user);
                }
                if let Some(log) = events.as_mut() {
                    log.push(SimEvent::Hit { t, page: req.page });
                }
            } else if !cache.is_full() {
                cache.insert(req.page);
                stats.record_miss(req.user);
                let ctx = EngineCtx {
                    time: t,
                    cache: &cache,
                    stats: &stats,
                    universe: &universe,
                };
                policy.on_insert(&ctx, req.page);
                if R::ACTIVE {
                    recorder.record_insert(&ctx, t, req.page, req.user);
                }
                if let Some(log) = events.as_mut() {
                    log.push(SimEvent::Insert { t, page: req.page });
                }
            } else {
                // Full cache: the policy picks a victim against the
                // pre-eviction state (stats exclude this request).
                let victim = {
                    let ctx = EngineCtx {
                        time: t,
                        cache: &cache,
                        stats: &stats,
                        universe: &universe,
                    };
                    policy.choose_victim(&ctx, req.page)
                };
                assert!(
                    cache.contains(victim),
                    "policy {} chose victim {victim} which is not cached",
                    policy.name()
                );
                assert_ne!(
                    victim,
                    req.page,
                    "policy {} tried to evict the incoming page",
                    policy.name()
                );
                let victim_user = universe.owner(victim);
                cache.remove(victim);
                stats.record_eviction(victim_user);
                cache.insert(req.page);
                stats.record_miss(req.user);
                let ctx = EngineCtx {
                    time: t,
                    cache: &cache,
                    stats: &stats,
                    universe: &universe,
                };
                policy.on_evicted(&ctx, victim);
                policy.on_insert(&ctx, req.page);
                if R::ACTIVE {
                    recorder.record_eviction(&ctx, t, req.page, req.user, victim, victim_user);
                }
                if let Some(log) = events.as_mut() {
                    log.push(SimEvent::Evict {
                        t,
                        page: req.page,
                        victim,
                        victim_user,
                    });
                }
            }
            if let Some(start) = started {
                recorder.record_latency_ns(t, start.elapsed().as_nanos() as u64);
            }
            t += 1;
        }

        let final_cache = cache.sorted_pages();
        if self.options.flush_at_end {
            for page in cache.drain_all() {
                stats.record_eviction(universe.owner(page));
                if R::ACTIVE {
                    recorder.record_flush_eviction(page, universe.owner(page));
                }
            }
        }

        SimResult {
            stats,
            events,
            final_cache,
            steps: t,
        }
    }

    /// Run `policy` over a fixed `trace` through the batched hot loop
    /// (see [`SteppingEngine::step_batch`]): byte-identical results to
    /// [`Self::run`], with per-request dispatch amortized over
    /// `batch_size`-request chunks.
    pub fn run_batched<P: ReplacementPolicy>(
        &self,
        policy: &mut P,
        trace: &Trace,
        batch_size: usize,
    ) -> SimResult {
        let mut engine = SteppingEngine::new(self.capacity, trace.universe().clone(), &mut *policy);
        if self.options.record_events {
            engine = match self.options.event_capacity {
                Some(capacity) => engine.with_bounded_events(capacity),
                None => engine.with_events(),
            };
        }
        engine.run_batched(trace.requests(), batch_size);
        Self::finish_batched(self.options, engine)
    }

    /// Run `policy` against a request source through the batched hot
    /// loop, buffering at most `batch_size` requests at a time — the
    /// streaming counterpart of [`Self::run_batched`], with memory
    /// independent of the stream length.
    ///
    /// Every request in a chunk is drawn before the chunk is served, so
    /// an *adaptive* source observes the engine state as of the previous
    /// chunk boundary, not the previous request. Non-adaptive sources
    /// (fixed traces, seeded generators) produce byte-identical results
    /// to [`Self::run_source`].
    pub fn run_source_batched<P, S>(
        &self,
        policy: &mut P,
        source: &mut S,
        batch_size: usize,
    ) -> SimResult
    where
        P: ReplacementPolicy,
        S: RequestSource,
    {
        assert!(batch_size > 0, "batch size must be positive");
        let universe = source.universe().clone();
        let mut engine = SteppingEngine::new(self.capacity, universe, &mut *policy);
        if self.options.record_events {
            engine = match self.options.event_capacity {
                Some(capacity) => engine.with_bounded_events(capacity),
                None => engine.with_events(),
            };
        }
        let mut buf: Vec<Request> = Vec::with_capacity(batch_size);
        let mut done = false;
        while !done {
            buf.clear();
            while buf.len() < batch_size {
                let req = {
                    let ctx = engine.ctx();
                    source.next_request(&ctx)
                };
                match req {
                    Some(r) => buf.push(r),
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            if !buf.is_empty() {
                engine.step_batch(&buf);
            }
        }
        Self::finish_batched(self.options, engine)
    }

    /// Shared tail of the batched entry points: capture the final cache,
    /// apply the optional end-of-run flush, and package the result.
    fn finish_batched<P: ReplacementPolicy>(
        options: SimOptions,
        mut engine: SteppingEngine<P>,
    ) -> SimResult {
        let final_cache = engine.cache().sorted_pages();
        if options.flush_at_end {
            engine.flush();
        }
        SimResult {
            steps: engine.time(),
            stats: engine.stats().clone(),
            events: engine.take_events(),
            final_cache,
        }
    }

    /// Run `policy` over a possibly-corrupt `trace` under a degradation
    /// [`FaultPolicy`] (see [`Self::try_run_source_recorded`]).
    pub fn try_run<P: ReplacementPolicy>(
        &self,
        policy: &mut P,
        trace: &Trace,
        fault_policy: FaultPolicy,
    ) -> Result<CheckedRun, SimError> {
        let mut source = TraceSource::new(trace);
        self.try_run_source_recorded(policy, &mut source, &mut NoopRecorder, fault_policy)
    }

    /// [`Self::try_run`] with a [`Recorder`] observing every decision
    /// (including absorbed faults, via
    /// [`Recorder::record_fault`](crate::probe::Recorder::record_fault)).
    pub fn try_run_recorded<P, R>(
        &self,
        policy: &mut P,
        trace: &Trace,
        recorder: &mut R,
        fault_policy: FaultPolicy,
    ) -> Result<CheckedRun, SimError>
    where
        P: ReplacementPolicy,
        R: Recorder,
    {
        let mut source = TraceSource::new(trace);
        self.try_run_source_recorded(policy, &mut source, recorder, fault_policy)
    }

    /// The fault-tolerant counterpart of [`Self::run_source_recorded`]:
    /// validates every record before serving it and reacts to faults per
    /// `fault_policy` instead of panicking.
    ///
    /// This path lives beside (not inside) the trusting hot loop: the
    /// unchecked `run*` family stays monomorphized to the unvalidated
    /// code, so enabling fault tolerance costs nothing when it is not
    /// used (guarded by `bench_baseline`). On well-formed input a checked
    /// run produces the identical [`SimResult`] to an unchecked one.
    pub fn try_run_source_recorded<P, S, R>(
        &self,
        policy: &mut P,
        source: &mut S,
        recorder: &mut R,
        fault_policy: FaultPolicy,
    ) -> Result<CheckedRun, SimError>
    where
        P: ReplacementPolicy,
        S: RequestSource,
        R: Recorder,
    {
        let universe = source.universe().clone();
        let num_users = universe.num_users();
        let mut engine = SteppingEngine::new(self.capacity, universe, &mut *policy)
            .with_recorder(&mut *recorder);
        if self.options.record_events {
            engine = match self.options.event_capacity {
                Some(capacity) => engine.with_bounded_events(capacity),
                None => engine.with_events(),
            };
        }
        let mut handler = FaultHandler::new(fault_policy, num_users);
        loop {
            let req = {
                let ctx = engine.ctx();
                source.next_request(&ctx)
            };
            let Some(req) = req else { break };
            engine.step_checked(req, &mut handler)?;
        }
        let final_cache = engine.cache().sorted_pages();
        if self.options.flush_at_end {
            engine.flush();
        }
        let steps = engine.time();
        let stats = engine.stats().clone();
        let events = engine.take_events();
        Ok(CheckedRun {
            result: SimResult {
                stats,
                events,
                final_cache,
                steps,
            },
            faults: handler.counters().clone(),
            quarantined: handler.quarantined_users(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UserId;
    use crate::trace::Universe;

    /// Evicts the page cached in physical slot 0 — arbitrary but valid.
    struct EvictFirst;
    impl ReplacementPolicy for EvictFirst {
        fn name(&self) -> String {
            "evict-first".into()
        }
        fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
            ctx.cache.pages()[0]
        }
    }

    fn two_user_trace() -> Trace {
        let u = Universe::uniform(2, 2); // u0: p0 p1; u1: p2 p3
        Trace::from_page_indices(&u, &[0, 2, 1, 0, 3, 2])
    }

    #[test]
    fn hits_and_misses_classified_exactly() {
        // k=3: 0m 2m 1m 0h 3m(evict) 2? depends on victim.
        let trace = two_user_trace();
        let r = Simulator::new(3).run(&mut EvictFirst, &trace);
        assert_eq!(r.steps, 6);
        assert_eq!(r.stats.total_hits() + r.total_misses(), 6);
        // First three requests fill the cache; the fourth (p0) hits.
        assert!(r.stats.user(UserId(0)).hits >= 1);
    }

    #[test]
    fn eviction_counts_charged_to_victim_owner() {
        let u = Universe::uniform(2, 1); // p0 owned by u0, p1 by u1
        let trace = Trace::from_page_indices(&u, &[0, 1, 0, 1]);
        let r = Simulator::new(1).run(&mut EvictFirst, &trace);
        // Every request after the first evicts the other user's page.
        assert_eq!(r.stats.user(UserId(0)).evictions, 2); // p0 evicted at t=1, t=3
        assert_eq!(r.stats.user(UserId(1)).evictions, 1); // p1 evicted at t=2
        assert_eq!(r.total_misses(), 4);
    }

    #[test]
    fn flush_makes_evictions_equal_misses() {
        let trace = two_user_trace();
        let no_flush = Simulator::new(2).run(&mut EvictFirst, &trace);
        assert!(no_flush.stats.total_evictions() < no_flush.total_misses());
        let flushed = Simulator::new(2)
            .flush_at_end(true)
            .run(&mut EvictFirst, &trace);
        assert_eq!(flushed.stats.total_evictions(), flushed.total_misses());
        // Per-user too, which is the paper's accounting identity.
        assert_eq!(flushed.stats.miss_vector(), flushed.stats.eviction_vector());
    }

    #[test]
    fn event_log_matches_counters() {
        let trace = two_user_trace();
        let r = Simulator::new(2)
            .record_events(true)
            .run(&mut EvictFirst, &trace);
        let log = r.events.as_ref().expect("events were requested");
        assert_eq!(log.len() as u64, r.steps);
        let evictions = log.eviction_sequence().len() as u64;
        assert_eq!(evictions, r.stats.total_evictions());
        let hits = log
            .iter()
            .filter(|e| matches!(e, SimEvent::Hit { .. }))
            .count() as u64;
        assert_eq!(hits, r.stats.total_hits());
    }

    #[test]
    fn bounded_event_log_caps_memory_not_counters() {
        let u = Universe::uniform(2, 2);
        let trace = Trace::from_page_indices(&u, &[0, 2, 1, 0, 3, 2]);
        let full = Simulator::new(2)
            .record_events(true)
            .run(&mut EvictFirst, &trace);
        let capped = Simulator::new(2)
            .record_events(true)
            .event_capacity(2)
            .run(&mut EvictFirst, &trace);
        // Counters are unaffected by the retention limit.
        assert_eq!(capped.miss_vector(), full.miss_vector());
        let log = capped.events.as_ref().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_seen(), full.steps);
        // The retained suffix matches the tail of the full log.
        let full_log = full.events.as_ref().unwrap().to_vec();
        assert_eq!(log.to_vec(), full_log[full_log.len() - 2..]);
    }

    #[test]
    fn final_cache_is_reported_sorted() {
        let trace = two_user_trace();
        let r = Simulator::new(3).run(&mut EvictFirst, &trace);
        let mut sorted = r.final_cache.clone();
        sorted.sort();
        assert_eq!(r.final_cache, sorted);
        assert!(r.final_cache.len() <= 3);
    }

    #[test]
    fn miss_rate() {
        let u = Universe::single_user(2);
        let trace = Trace::from_page_indices(&u, &[0, 0, 0, 1]);
        let r = Simulator::new(2).run(&mut EvictFirst, &trace);
        assert_eq!(r.total_misses(), 2);
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_fine() {
        let u = Universe::single_user(2);
        let trace = Trace::from_page_indices(&u, &[]);
        let r = Simulator::new(2).run(&mut EvictFirst, &trace);
        assert_eq!(r.steps, 0);
        assert_eq!(r.miss_rate(), 0.0);
        assert!(r.final_cache.is_empty());
    }

    #[test]
    fn checked_run_matches_unchecked_on_clean_input() {
        let trace = two_user_trace();
        let sim = Simulator::new(2).record_events(true).flush_at_end(true);
        let plain = sim.run(&mut EvictFirst, &trace);
        let checked = sim
            .try_run(&mut EvictFirst, &trace, FaultPolicy::FailFast)
            .unwrap();
        assert!(checked.faults.is_clean());
        assert!(checked.quarantined.is_empty());
        assert_eq!(checked.result.stats, plain.stats);
        assert_eq!(checked.result.steps, plain.steps);
        assert_eq!(checked.result.final_cache, plain.final_cache);
        assert_eq!(
            checked.result.events.as_ref().unwrap().to_vec(),
            plain.events.as_ref().unwrap().to_vec()
        );
    }

    #[test]
    fn checked_run_skips_corrupt_source_records() {
        use crate::source::RequestSource;
        use crate::trace::Request;

        // A source that interleaves out-of-range pages with a clean
        // single-user stream.
        struct Glitchy {
            universe: Universe,
            t: u64,
        }
        impl RequestSource for Glitchy {
            fn universe(&self) -> &Universe {
                &self.universe
            }
            fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
                let t = self.t;
                self.t += 1;
                if t >= 9 {
                    return None;
                }
                if t % 3 == 2 {
                    Some(Request {
                        page: PageId(1000),
                        user: UserId(0),
                    })
                } else {
                    Some(self.universe.request(PageId((t % 2) as u32)))
                }
            }
        }

        let universe = Universe::single_user(2);
        let mut src = Glitchy {
            universe: universe.clone(),
            t: 0,
        };
        let checked = Simulator::new(2)
            .try_run_source_recorded(
                &mut EvictFirst,
                &mut src,
                &mut NoopRecorder,
                FaultPolicy::SkipAndCount,
            )
            .unwrap();
        assert_eq!(checked.faults.page_out_of_range, 3);
        assert_eq!(checked.result.steps, 9); // dropped records consume ticks
        assert_eq!(checked.result.stats.total_misses(), 2);
        assert_eq!(checked.result.stats.total_hits(), 4);

        // The same stream under fail-fast dies on the first glitch.
        let mut src = Glitchy { universe, t: 0 };
        let err = Simulator::new(2)
            .try_run_source_recorded(
                &mut EvictFirst,
                &mut src,
                &mut NoopRecorder,
                FaultPolicy::FailFast,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Request(_)));
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn bad_victim_is_rejected() {
        struct Liar;
        impl ReplacementPolicy for Liar {
            fn name(&self) -> String {
                "liar".into()
            }
            fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
                PageId(999_999 % 4) // p3 won't be cached in this scenario
            }
        }
        let u = Universe::single_user(4);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2]);
        Simulator::new(2).run(&mut Liar, &trace);
    }

    #[test]
    fn capacity_one_cache() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 0, 1, 1, 2]);
        let r = Simulator::new(1).run(&mut EvictFirst, &trace);
        assert_eq!(r.total_misses(), 3);
        assert_eq!(r.stats.total_hits(), 2);
    }
}
