//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum behind every torn-write guard in the workspace: the
//! occbin01 footer ([`crate::binio`]), the `#crc32:` text trailer on
//! checkpoints and series files (`occ-probe::atomicio`), and the
//! atomically renamed report artifacts.
//!
//! Hand-rolled because the container is sealed (no crates.io); the
//! table is built in a `const fn` so there is no runtime init and no
//! locking. The streaming [`Crc32`] state lets writers hash payload
//! bytes as they are produced and readers hash as they consume, so
//! neither side ever needs the whole artifact in memory.

/// 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state. Feed bytes with [`update`](Self::update),
/// read the digest with [`value`](Self::value); the digest of the
/// empty input is 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (digest of nothing so far).
    pub const fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The CRC-32 of everything fed so far. Non-destructive; more
    /// bytes may still be folded in afterwards.
    pub fn value(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(Crc32::new().value(), 0);
    }

    #[test]
    fn streaming_equals_one_shot_over_any_split() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7 + 3) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 2, 63, 64, 65, 999, 1000] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.value(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_the_digest() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            data[byte] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip in byte {byte} undetected");
            data[byte] ^= 0x01;
        }
    }
}
