//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum behind every torn-write guard in the workspace: the
//! occbin01 footer ([`crate::binio`]), the `#crc32:` text trailer on
//! checkpoints and series files (`occ-probe::atomicio`), and the
//! atomically renamed report artifacts.
//!
//! Hand-rolled because the container is sealed (no crates.io); the
//! tables are built in a `const fn` so there is no runtime init and no
//! locking. The streaming [`Crc32`] state lets writers hash payload
//! bytes as they are produced and readers hash as they consume, so
//! neither side ever needs the whole artifact in memory.
//!
//! The kernel is slicing-by-16: sixteen derived tables let the inner
//! loop fold sixteen bytes per iteration with independent lookups
//! instead of a serial byte-at-a-time chain (the sixteen table reads
//! have no data dependency on each other, only on the previous
//! iteration's folded state, so the loads pipeline). That matters
//! because the zero-copy trace sources ([`crate::binio`]) hash every
//! payload byte they serve — at gigabytes per second of replay, a
//! byte-at-a-time (or even an eight-byte) CRC would be the bottleneck,
//! not the decode.

/// Sixteen 256-entry lookup tables for the reflected IEEE polynomial.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is
/// the CRC of byte `b` followed by `k` zero bytes, which is what lets
/// sixteen input bytes fold in parallel.
const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 16] = build_tables();

/// Streaming CRC-32 state. Feed bytes with [`update`](Self::update),
/// read the digest with [`value`](Self::value); the digest of the
/// empty input is 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (digest of nothing so far).
    pub const fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the running checksum.
    ///
    /// Long inputs take the carry-less-multiply kernel when the CPU has
    /// one (x86-64 `PCLMULQDQ`, detected once and cached by std); the
    /// sliced table kernel handles everything else — short inputs,
    /// ragged tails, and machines without the instruction. Both kernels
    /// compute the identical digest.
    pub fn update(&mut self, bytes: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        if bytes.len() >= 64
            && is_x86_feature_detected!("pclmulqdq")
            && is_x86_feature_detected!("sse4.1")
        {
            // The folding kernel wants whole 16-byte lanes; the table
            // kernel mops up the ragged tail.
            let split = bytes.len() & !15;
            // Safety: the required CPU features were just detected.
            self.state = unsafe { clmul::fold(self.state, &bytes[..split]) };
            self.update_tables(&bytes[split..]);
            return;
        }
        self.update_tables(bytes);
    }

    /// The portable sliced-table kernel (also the tail/fallback path of
    /// [`update`](Self::update)).
    fn update_tables(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for chunk in &mut chunks {
            let a = u32::from_le_bytes(chunk[..4].try_into().expect("4-byte word")) ^ crc;
            let b = u32::from_le_bytes(chunk[4..8].try_into().expect("4-byte word"));
            let c = u32::from_le_bytes(chunk[8..12].try_into().expect("4-byte word"));
            let d = u32::from_le_bytes(chunk[12..].try_into().expect("4-byte word"));
            crc = CRC_TABLES[15][(a & 0xFF) as usize]
                ^ CRC_TABLES[14][((a >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[13][((a >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[12][(a >> 24) as usize]
                ^ CRC_TABLES[11][(b & 0xFF) as usize]
                ^ CRC_TABLES[10][((b >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[9][((b >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[8][(b >> 24) as usize]
                ^ CRC_TABLES[7][(c & 0xFF) as usize]
                ^ CRC_TABLES[6][((c >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((c >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(c >> 24) as usize]
                ^ CRC_TABLES[3][(d & 0xFF) as usize]
                ^ CRC_TABLES[2][((d >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((d >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(d >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The CRC-32 of everything fed so far. Non-destructive; more
    /// bytes may still be folded in afterwards.
    pub fn value(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.value()
}

/// Carry-less-multiply CRC-32 folding (x86-64 `PCLMULQDQ`), after
/// Gopal et al., "Fast CRC Computation for Generic Polynomials Using
/// PCLMULQDQ Instruction" (Intel, 2009). Four 128-bit accumulators fold
/// 64 input bytes per iteration; a 4→1 reduction, a 16-byte tail loop,
/// and a Barrett reduction produce the register value. The fold
/// constants are the published ones for the reflected IEEE polynomial
/// (`x^(4·128+32)`, `x^(4·128−32)`, `x^(128+32)`, `x^(128−32)`, `x^96`
/// mod P, plus the Barrett pair) — the same constants the Linux
/// kernel's `crc32-pclmul` uses. Roughly an order of magnitude faster
/// than the sliced tables, which matters to the zero-copy trace
/// sources: with table CRC, hashing the payload *is* the ingest
/// bottleneck.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_clmulepi64_si128, _mm_extract_epi32, _mm_loadu_si128,
        _mm_set_epi32, _mm_set_epi64x, _mm_srli_si128, _mm_xor_si128,
    };

    const K1: i64 = 0x01_5444_2bd4; // x^(4·128+32) mod P
    const K2: i64 = 0x01_c6e4_1596; // x^(4·128−32) mod P
    const K3: i64 = 0x01_7519_97d0; // x^(128+32) mod P
    const K4: i64 = 0x00_ccaa_009e; // x^(128−32) mod P
    const K5: i64 = 0x01_63cd_6124; // x^96 mod P
    const P_X: i64 = 0x01_DB71_0641; // P (reflected, with the x^32 bit)
    const U_PRIME: i64 = 0x01_F701_1641; // floor(x^64 / P) (Barrett µ)

    /// Load the next 16 input bytes (unaligned).
    #[inline]
    unsafe fn get(data: &[u8], at: usize) -> __m128i {
        _mm_loadu_si128(data.as_ptr().add(at) as *const __m128i)
    }

    /// Fold `prev` forward across the distance encoded in `keys` and
    /// accumulate `data`: `prev.lo·k_lo ⊕ prev.hi·k_hi ⊕ data`.
    #[inline]
    unsafe fn fold16(prev: __m128i, data: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(prev, keys, 0x00);
        let hi = _mm_clmulepi64_si128(prev, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(data, lo), hi)
    }

    /// Fold `data` (length ≥ 64 and a multiple of 16) into the running
    /// CRC register `state`, returning the new register value.
    ///
    /// # Safety
    /// The caller must have verified `pclmulqdq` and `sse4.1` support.
    #[target_feature(enable = "pclmulqdq,sse2,sse4.1")]
    pub unsafe fn fold(state: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
        let mut at = 64;
        // Four accumulators over the first 64 bytes; the register folds
        // into the earliest lane.
        let mut x3 = _mm_xor_si128(get(data, 0), _mm_set_epi32(0, 0, 0, state as i32));
        let mut x2 = get(data, 16);
        let mut x1 = get(data, 32);
        let mut x0 = get(data, 48);

        let k1k2 = _mm_set_epi64x(K2, K1);
        while data.len() - at >= 64 {
            x3 = fold16(x3, get(data, at), k1k2);
            x2 = fold16(x2, get(data, at + 16), k1k2);
            x1 = fold16(x1, get(data, at + 32), k1k2);
            x0 = fold16(x0, get(data, at + 48), k1k2);
            at += 64;
        }

        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while at < data.len() {
            x = fold16(x, get(data, at), k3k4);
            at += 16;
        }

        // 128 → 64 → 32 bit reduction, then Barrett.
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t = _mm_clmulepi64_si128(_mm_and_si128(t, mask32), pu, 0x00);
        _mm_extract_epi32(_mm_xor_si128(x, t), 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(Crc32::new().value(), 0);
    }

    #[test]
    fn streaming_equals_one_shot_over_any_split() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7 + 3) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 2, 63, 64, 65, 999, 1000] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.value(), whole, "split at {split}");
        }
    }

    #[test]
    fn clmul_and_table_kernels_agree_on_every_length_and_offset() {
        // `update` routes ≥64-byte inputs through the clmul kernel when
        // the CPU has one; `update_tables` is always the sliced tables.
        // Sweep lengths across the 64-byte gate, the 16-byte lane
        // boundary, and ragged tails, at both offsets of a misaligned
        // window — on hardware without pclmulqdq both sides take the
        // table path and this degenerates to a self-check.
        let data: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8)
            .collect();
        for start in [0usize, 1, 7] {
            for len in [0usize, 1, 15, 16, 63, 64, 65, 79, 80, 255, 1024, 4000] {
                let slice = &data[start..start + len];
                let mut via_update = Crc32::new();
                via_update.update(slice);
                let mut via_tables = Crc32::new();
                via_tables.update_tables(slice);
                assert_eq!(
                    via_update.value(),
                    via_tables.value(),
                    "kernel divergence at start {start}, len {len}"
                );
            }
        }
    }

    #[test]
    fn streaming_large_chunks_equals_one_shot() {
        // Chunked updates cross the clmul/table boundary repeatedly;
        // the running register must carry across exactly.
        let data: Vec<u8> = (0u32..10_000).map(|i| (i * 31 + 7) as u8).collect();
        let whole = crc32(&data);
        for chunk in [64usize, 100, 333, 4096] {
            let mut c = Crc32::new();
            for part in data.chunks(chunk) {
                c.update(part);
            }
            assert_eq!(c.value(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn single_bit_flip_changes_the_digest() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            data[byte] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip in byte {byte} undetected");
            data[byte] ^= 0x01;
        }
    }
}
