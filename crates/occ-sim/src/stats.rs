//! Per-user and aggregate counters maintained by the engine.
//!
//! The paper distinguishes two accountings that coincide up to the final
//! flush: charging *fetches* (misses) versus charging *evictions* (§2.1
//! introduces a dummy user whose trailing requests flush the cache so the
//! two are equal). The engine tracks both so experiments can use either.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// Counters for one user.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserStats {
    /// Requests that found the page cached.
    pub hits: u64,
    /// Requests that had to fetch the page (the paper's miss count `a_i`).
    pub misses: u64,
    /// Evictions of this user's pages (the algorithm-internal `m(i, t)`).
    pub evictions: u64,
}

impl UserStats {
    /// Total requests seen for this user (saturating, so the identity
    /// `requests = hits + misses` degrades gracefully at the `u64`
    /// boundary instead of panicking in debug builds).
    pub fn requests(&self) -> u64 {
        self.hits.saturating_add(self.misses)
    }
}

/// Counters for the whole simulation, indexed by user.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    per_user: Vec<UserStats>,
}

impl SimStats {
    /// Zeroed stats for `num_users` users.
    pub fn new(num_users: u32) -> Self {
        SimStats {
            per_user: vec![UserStats::default(); num_users as usize],
        }
    }

    /// Rebuild stats from a per-user counter vector (snapshot restore).
    pub fn from_per_user(per_user: Vec<UserStats>) -> Self {
        SimStats { per_user }
    }

    /// Counters for one user.
    #[inline]
    pub fn user(&self, user: UserId) -> &UserStats {
        &self.per_user[user.index()]
    }

    /// All per-user counters, indexed by user id.
    #[inline]
    pub fn per_user(&self) -> &[UserStats] {
        &self.per_user
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.per_user.len()
    }

    /// Record a hit for `user`. Saturating: a counter pinned at
    /// `u64::MAX` stays there rather than wrapping (release) or panicking
    /// (debug) — long chaos runs must never die in the accounting.
    #[inline]
    pub fn record_hit(&mut self, user: UserId) {
        let c = &mut self.per_user[user.index()].hits;
        *c = c.saturating_add(1);
    }

    /// Record a miss (fetch) for `user` (saturating, see
    /// [`record_hit`](Self::record_hit)).
    #[inline]
    pub fn record_miss(&mut self, user: UserId) {
        let c = &mut self.per_user[user.index()].misses;
        *c = c.saturating_add(1);
    }

    /// Record an eviction of one of `user`'s pages (saturating, see
    /// [`record_hit`](Self::record_hit)).
    #[inline]
    pub fn record_eviction(&mut self, user: UserId) {
        let c = &mut self.per_user[user.index()].evictions;
        *c = c.saturating_add(1);
    }

    /// Total hits across users (saturating).
    pub fn total_hits(&self) -> u64 {
        self.per_user
            .iter()
            .fold(0u64, |acc, u| acc.saturating_add(u.hits))
    }

    /// Total misses (fetches) across users (saturating).
    pub fn total_misses(&self) -> u64 {
        self.per_user
            .iter()
            .fold(0u64, |acc, u| acc.saturating_add(u.misses))
    }

    /// Total evictions across users (saturating).
    pub fn total_evictions(&self) -> u64 {
        self.per_user
            .iter()
            .fold(0u64, |acc, u| acc.saturating_add(u.evictions))
    }

    /// Miss counts as a dense vector indexed by user id — the `a_i(σ)`
    /// vector that convex cost functions are applied to.
    pub fn miss_vector(&self) -> Vec<u64> {
        self.per_user.iter().map(|u| u.misses).collect()
    }

    /// Eviction counts as a dense vector indexed by user id.
    pub fn eviction_vector(&self) -> Vec<u64> {
        self.per_user.iter().map(|u| u.evictions).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SimStats::new(2);
        s.record_hit(UserId(0));
        s.record_miss(UserId(0));
        s.record_miss(UserId(1));
        s.record_eviction(UserId(1));
        assert_eq!(s.user(UserId(0)).hits, 1);
        assert_eq!(s.user(UserId(0)).misses, 1);
        assert_eq!(s.user(UserId(1)).misses, 1);
        assert_eq!(s.user(UserId(1)).evictions, 1);
        assert_eq!(s.total_hits(), 1);
        assert_eq!(s.total_misses(), 2);
        assert_eq!(s.total_evictions(), 1);
        assert_eq!(s.miss_vector(), vec![1, 1]);
        assert_eq!(s.eviction_vector(), vec![0, 1]);
    }

    #[test]
    fn counters_saturate_at_u64_max() {
        let mut s = SimStats::from_per_user(vec![UserStats {
            hits: u64::MAX,
            misses: u64::MAX,
            evictions: u64::MAX - 1,
        }]);
        s.record_hit(UserId(0));
        s.record_miss(UserId(0));
        s.record_eviction(UserId(0));
        s.record_eviction(UserId(0));
        assert_eq!(s.user(UserId(0)).hits, u64::MAX);
        assert_eq!(s.user(UserId(0)).misses, u64::MAX);
        assert_eq!(s.user(UserId(0)).evictions, u64::MAX);
        // Aggregates saturate too instead of overflowing the sum.
        let t = SimStats::from_per_user(vec![
            UserStats {
                hits: u64::MAX,
                misses: u64::MAX,
                evictions: 1,
            },
            UserStats {
                hits: 2,
                misses: 2,
                evictions: 1,
            },
        ]);
        assert_eq!(t.total_hits(), u64::MAX);
        assert_eq!(t.total_misses(), u64::MAX);
        assert_eq!(t.total_evictions(), 2);
        assert_eq!(t.user(UserId(0)).requests(), u64::MAX);
    }

    #[test]
    fn from_per_user_round_trips() {
        let mut s = SimStats::new(2);
        s.record_hit(UserId(0));
        s.record_miss(UserId(1));
        let rebuilt = SimStats::from_per_user(s.per_user().to_vec());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn requests_is_hits_plus_misses() {
        let mut s = SimStats::new(1);
        for _ in 0..3 {
            s.record_hit(UserId(0));
        }
        for _ in 0..2 {
            s.record_miss(UserId(0));
        }
        assert_eq!(s.user(UserId(0)).requests(), 5);
    }
}
