//! Per-user and aggregate counters maintained by the engine.
//!
//! The paper distinguishes two accountings that coincide up to the final
//! flush: charging *fetches* (misses) versus charging *evictions* (§2.1
//! introduces a dummy user whose trailing requests flush the cache so the
//! two are equal). The engine tracks both so experiments can use either.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// Counters for one user.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserStats {
    /// Requests that found the page cached.
    pub hits: u64,
    /// Requests that had to fetch the page (the paper's miss count `a_i`).
    pub misses: u64,
    /// Evictions of this user's pages (the algorithm-internal `m(i, t)`).
    pub evictions: u64,
}

impl UserStats {
    /// Total requests seen for this user.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Counters for the whole simulation, indexed by user.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    per_user: Vec<UserStats>,
}

impl SimStats {
    /// Zeroed stats for `num_users` users.
    pub fn new(num_users: u32) -> Self {
        SimStats {
            per_user: vec![UserStats::default(); num_users as usize],
        }
    }

    /// Counters for one user.
    #[inline]
    pub fn user(&self, user: UserId) -> &UserStats {
        &self.per_user[user.index()]
    }

    /// All per-user counters, indexed by user id.
    #[inline]
    pub fn per_user(&self) -> &[UserStats] {
        &self.per_user
    }

    /// Number of users.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.per_user.len()
    }

    /// Record a hit for `user`.
    #[inline]
    pub fn record_hit(&mut self, user: UserId) {
        self.per_user[user.index()].hits += 1;
    }

    /// Record a miss (fetch) for `user`.
    #[inline]
    pub fn record_miss(&mut self, user: UserId) {
        self.per_user[user.index()].misses += 1;
    }

    /// Record an eviction of one of `user`'s pages.
    #[inline]
    pub fn record_eviction(&mut self, user: UserId) {
        self.per_user[user.index()].evictions += 1;
    }

    /// Total hits across users.
    pub fn total_hits(&self) -> u64 {
        self.per_user.iter().map(|u| u.hits).sum()
    }

    /// Total misses (fetches) across users.
    pub fn total_misses(&self) -> u64 {
        self.per_user.iter().map(|u| u.misses).sum()
    }

    /// Total evictions across users.
    pub fn total_evictions(&self) -> u64 {
        self.per_user.iter().map(|u| u.evictions).sum()
    }

    /// Miss counts as a dense vector indexed by user id — the `a_i(σ)`
    /// vector that convex cost functions are applied to.
    pub fn miss_vector(&self) -> Vec<u64> {
        self.per_user.iter().map(|u| u.misses).collect()
    }

    /// Eviction counts as a dense vector indexed by user id.
    pub fn eviction_vector(&self) -> Vec<u64> {
        self.per_user.iter().map(|u| u.evictions).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = SimStats::new(2);
        s.record_hit(UserId(0));
        s.record_miss(UserId(0));
        s.record_miss(UserId(1));
        s.record_eviction(UserId(1));
        assert_eq!(s.user(UserId(0)).hits, 1);
        assert_eq!(s.user(UserId(0)).misses, 1);
        assert_eq!(s.user(UserId(1)).misses, 1);
        assert_eq!(s.user(UserId(1)).evictions, 1);
        assert_eq!(s.total_hits(), 1);
        assert_eq!(s.total_misses(), 2);
        assert_eq!(s.total_evictions(), 1);
        assert_eq!(s.miss_vector(), vec![1, 1]);
        assert_eq!(s.eviction_vector(), vec![0, 1]);
    }

    #[test]
    fn requests_is_hits_plus_misses() {
        let mut s = SimStats::new(1);
        for _ in 0..3 {
            s.record_hit(UserId(0));
        }
        for _ in 0..2 {
            s.record_miss(UserId(0));
        }
        assert_eq!(s.user(UserId(0)).requests(), 5);
    }
}
