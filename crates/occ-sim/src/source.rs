//! Request sources: fixed traces and adaptive adversaries.
//!
//! Competitive lower bounds (the paper's §4) are proved against an
//! *adaptive* adversary that watches the online algorithm's cache and
//! requests whatever is missing. Such a sequence cannot be a fixed
//! [`Trace`] — it is a function of the algorithm — so the
//! engine can also be driven by a [`RequestSource`], which gets to inspect
//! the live engine state before emitting each request.

use crate::engine::EngineCtx;
use crate::ids::PageId;
use crate::trace::{Request, Trace, Universe};

/// A (possibly adaptive) stream of requests.
pub trait RequestSource {
    /// The universe the requests range over.
    fn universe(&self) -> &Universe;

    /// Produce the next request, or `None` to end the run. `ctx` exposes
    /// the engine state *before* this request is served — in particular the
    /// current cache contents, which is what an adaptive adversary needs.
    fn next_request(&mut self, ctx: &EngineCtx) -> Option<Request>;

    /// Bulk twin of [`next_request`](Self::next_request): hand out a
    /// borrowed run of up to `max` upcoming requests and advance past
    /// them, or `None` when no run is available. Replay loops (the
    /// fleet runner's shard driver) try this first and fall back to
    /// per-request pulls, so a fixed trace feeds
    /// [`step_batch`](crate::SteppingEngine::step_batch) slices of its
    /// own backing storage — no copy, no per-request engine-state
    /// round-trip. The default returns `None`, which is the only
    /// correct answer for adaptive sources: handing out a run commits
    /// to requests that cannot observe the engine mid-run.
    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        let _ = max;
        None
    }

    /// Zero-copy twin of [`next_run`](Self::next_run) for sources whose
    /// backing storage holds bare page ids rather than materialized
    /// [`Request`]s (the mmap-backed binary reader): hand out a borrowed
    /// run of up to `max` upcoming page ids and advance past them. The
    /// consumer derives each owner from the universe — the same lookup
    /// the source would have performed to build a `Request`, so nothing
    /// is lost, and the ids can be served straight from a file mapping
    /// without decoding. Replay loops try this first, then
    /// [`next_run`](Self::next_run), then scalar pulls. The default
    /// returns `None`.
    fn next_page_run(&mut self, max: usize) -> Option<&[PageId]> {
        let _ = max;
        None
    }
}

/// A [`RequestSource`] that can deterministically fast-forward.
///
/// `seek_forward(n)` must leave the source in *exactly* the state it
/// would have after `n` calls to [`next_request`](RequestSource::next_request)
/// — same RNG state, same position, same subsequent requests. This is
/// what lets a crashed shard restart from a window-boundary checkpoint
/// and replay the identical remainder of its stream: the fleet
/// supervisor rebuilds a fresh source and seeks it to the checkpoint
/// time. Only non-adaptive sources can implement this (an adaptive
/// adversary's requests depend on engine state that no longer exists).
pub trait SeekableSource: RequestSource {
    /// Skip the next `n` requests without serving them.
    fn seek_forward(&mut self, n: u64);
}

/// A fixed trace replayed in order.
pub struct TraceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceSource<'a> {
    /// Replay `trace` from the beginning.
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, pos: 0 }
    }
}

impl RequestSource for TraceSource<'_> {
    fn universe(&self) -> &Universe {
        self.trace.universe()
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        let r = self.trace.requests().get(self.pos).copied();
        self.pos += 1;
        r
    }

    fn next_run(&mut self, max: usize) -> Option<&[Request]> {
        let rest = &self.trace.requests()[self.pos.min(self.trace.len())..];
        if rest.is_empty() {
            return None;
        }
        let take = rest.len().min(max);
        self.pos += take;
        Some(&rest[..take])
    }
}

impl SeekableSource for TraceSource<'_> {
    fn seek_forward(&mut self, n: u64) {
        let n = usize::try_from(n).unwrap_or(usize::MAX);
        self.pos = self.pos.saturating_add(n).min(self.trace.len());
    }
}

/// An adaptive source driven by a closure: each step sees the cached pages
/// and returns the next page to request (or `None` to stop).
///
/// This is the building block for the §4 adversary (implemented in
/// `occ-workloads`), and handy for one-off adversaries in tests:
///
/// ```
/// use occ_sim::prelude::*;
///
/// // Universe of 3 single-page users, cache of 2: always request a page
/// // that is not currently cached.
/// let universe = Universe::uniform(3, 1);
/// let mut steps = 0;
/// let mut adversary = AdaptiveSource::new(universe, move |cached: &[PageId]| {
///     steps += 1;
///     if steps > 10 {
///         return None;
///     }
///     (0..3).map(PageId).find(|p| !cached.contains(p))
/// });
///
/// struct EvictFirst;
/// impl ReplacementPolicy for EvictFirst {
///     fn name(&self) -> String { "evict-first".into() }
///     fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
///         ctx.cache.pages()[0]
///     }
/// }
///
/// let result = Simulator::new(2).run_source(&mut EvictFirst, &mut adversary);
/// assert_eq!(result.total_misses(), 10); // every adaptive request misses
/// ```
pub struct AdaptiveSource<F> {
    universe: Universe,
    next: F,
}

impl<F> AdaptiveSource<F>
where
    F: FnMut(&[PageId]) -> Option<PageId>,
{
    /// Create an adaptive source; `next` maps the current cache contents to
    /// the next requested page.
    pub fn new(universe: Universe, next: F) -> Self {
        AdaptiveSource { universe, next }
    }
}

impl<F> RequestSource for AdaptiveSource<F>
where
    F: FnMut(&[PageId]) -> Option<PageId>,
{
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, ctx: &EngineCtx) -> Option<Request> {
        (self.next)(ctx.cache.pages()).map(|p| self.universe.request(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    struct EvictFirst;
    impl ReplacementPolicy for EvictFirst {
        fn name(&self) -> String {
            "evict-first".into()
        }
        fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
            ctx.cache.pages()[0]
        }
    }

    #[test]
    fn trace_source_replays_in_order() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[2, 0, 2]);
        let via_trace = Simulator::new(2).run(&mut EvictFirst, &trace);
        let mut src = TraceSource::new(&trace);
        let via_source = Simulator::new(2).run_source(&mut EvictFirst, &mut src);
        assert_eq!(
            via_trace.stats.miss_vector(),
            via_source.stats.miss_vector()
        );
        assert_eq!(via_source.steps, 3);
    }

    #[test]
    fn trace_source_bulk_runs_cover_the_trace_exactly_once() {
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..23).map(|i| i % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let mut src = TraceSource::new(&trace);
        let mut seen = Vec::new();
        while let Some(run) = src.next_run(7) {
            assert!(!run.is_empty() && run.len() <= 7);
            seen.extend_from_slice(run);
        }
        assert_eq!(seen.as_slice(), trace.requests());
        // Drained via runs ⇒ drained for per-request pulls too.
        let eng = crate::SteppingEngine::new(2, u.clone(), EvictFirst);
        assert_eq!(src.next_request(&eng.ctx()), None);
        // Mixing pull styles stays in sync: one scalar pull, then a run
        // picking up right after it.
        let mut src = TraceSource::new(&trace);
        let first = src.next_request(&eng.ctx()).unwrap();
        assert_eq!(first, trace.requests()[0]);
        assert_eq!(src.next_run(4).unwrap(), &trace.requests()[1..5]);
    }

    #[test]
    fn seek_forward_matches_pull_and_discard() {
        let u = Universe::single_user(5);
        let pages: Vec<u32> = (0..17).map(|i| (i * 3) % 5).collect();
        let trace = Trace::from_page_indices(&u, &pages);
        let eng = crate::SteppingEngine::new(2, u.clone(), EvictFirst);
        for skip in [0u64, 1, 5, 16, 17, 40] {
            let mut pulled = TraceSource::new(&trace);
            for _ in 0..skip.min(17) {
                pulled.next_request(&eng.ctx());
            }
            let mut sought = TraceSource::new(&trace);
            sought.seek_forward(skip);
            loop {
                let a = pulled.next_request(&eng.ctx());
                let b = sought.next_request(&eng.ctx());
                assert_eq!(a, b, "skip={skip}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn adaptive_source_sees_live_cache() {
        // Request the lowest non-cached page, 6 times. With capacity 2 and
        // 3 pages every request is a miss regardless of the policy.
        let u = Universe::uniform(3, 1);
        let mut remaining = 6;
        let mut src = AdaptiveSource::new(u, move |cached: &[PageId]| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            (0..3).map(PageId).find(|p| !cached.contains(p))
        });
        let r = Simulator::new(2).run_source(&mut EvictFirst, &mut src);
        assert_eq!(r.total_misses(), 6);
        assert_eq!(r.stats.total_hits(), 0);
    }
}
