//! The replacement-policy interface.
//!
//! The engine owns the cache contents and the counters; a policy only
//! *decides*. This split keeps hit/miss classification and accounting
//! identical across every algorithm in the workspace, so measured
//! differences between policies are differences in eviction decisions and
//! nothing else.

use crate::engine::EngineCtx;
use crate::error::SnapshotError;
use crate::ids::PageId;
use crate::snapshot::PolicyState;

/// An online cache replacement policy.
///
/// Callback order per request:
///
/// * hit: [`on_hit`](Self::on_hit);
/// * miss with free space: [`on_insert`](Self::on_insert) after the page is
///   physically inserted;
/// * miss with a full cache: [`choose_victim`](Self::choose_victim) (the
///   cache still contains the victim at this point, and the stats have not
///   yet counted this miss), then — after the engine applies the swap —
///   [`on_evicted`](Self::on_evicted) and finally
///   [`on_insert`](Self::on_insert) for the incoming page.
///
/// `on_insert` therefore fires exactly once per fetch, which is the single
/// place to register metadata for a newly cached page.
pub trait ReplacementPolicy {
    /// Human-readable policy name, used in experiment tables.
    fn name(&self) -> String;

    /// The requested page was found in the cache.
    fn on_hit(&mut self, _ctx: &EngineCtx, _page: PageId) {}

    /// `page` has just been fetched into the cache (either into free space
    /// or after an eviction).
    fn on_insert(&mut self, _ctx: &EngineCtx, _page: PageId) {}

    /// The cache is full and `incoming` must be fetched: return the cached
    /// page to evict. The returned page must currently be in the cache.
    ///
    /// `ctx` reflects the state *before* the eviction: `ctx.cache` still
    /// contains the victim, and `ctx.stats` does not yet count this miss or
    /// eviction (so `ctx.stats.user(u).evictions` is the paper's
    /// `m(u, t-1)`).
    fn choose_victim(&mut self, ctx: &EngineCtx, incoming: PageId) -> PageId;

    /// `victim` has just been removed from the cache.
    fn on_evicted(&mut self, _ctx: &EngineCtx, _victim: PageId) {}

    /// `page` was removed from the cache by an *external* actor (e.g. its
    /// owner migrated to another pool in a multi-pool system), not by
    /// this policy's choice, and no eviction was charged.
    ///
    /// Policies that keep exact per-page index structures (ordered sets
    /// keyed by recency/budget) must drop the page's entry here;
    /// policies that scan `ctx.cache` or lazily validate entries against
    /// it can keep the default no-op.
    fn on_external_removal(&mut self, _ctx: &EngineCtx, _page: PageId) {}

    /// Hint that `page` will be requested a few steps from now.
    ///
    /// An optional hook for batch drivers with lookahead: calling this
    /// for request `i + D` while serving request `i` lets policies
    /// software-prefetch their page-indexed structures (recency-list
    /// links, stamp arrays) and hide the load latency behind the
    /// current request. The shipping [`SteppingEngine`] batch kernel
    /// prefetches the engine's own page table but does **not** call
    /// this hook — through the trait object the call cost more than
    /// the prefetch saved. Purely a performance hint either way: it
    /// must have **no observable effect** — no state change, no
    /// ordering change — and the default no-op is always correct. The
    /// page is not guaranteed to actually arrive (the batch may end
    /// first).
    ///
    /// [`SteppingEngine`]: crate::stepper::SteppingEngine
    fn prefetch_hint(&self, _page: PageId) {}

    /// Reset internal state so the policy can be reused for another run.
    /// Policies that carry no cross-run state can keep the default no-op.
    fn reset(&mut self) {}

    /// Capture this policy's internal state for a checkpoint, or `None`
    /// if the policy does not support checkpointing (the default).
    ///
    /// The captured bag, together with the engine-owned state (cache
    /// contents in operation-history order, stats, clock), must be enough
    /// for [`load_state`](Self::load_state) to continue the run
    /// byte-identically — including RNG words for randomized policies.
    fn save_state(&self) -> Option<PolicyState> {
        None
    }

    /// Restore state captured by [`save_state`](Self::save_state). `ctx`
    /// reflects the *already restored* engine (cache contents, stats,
    /// universe, clock), which is what list-rebuilding policies need.
    ///
    /// Implementations must validate the bag via the typed
    /// [`PolicyState`] getters and return a [`SnapshotError`] rather
    /// than panicking on corrupt input.
    fn load_state(&mut self, _ctx: &EngineCtx, _state: &PolicyState) -> Result<(), SnapshotError> {
        Err(SnapshotError::Unsupported(self.name()))
    }
}

/// Forwarding impls for boxed policies so heterogeneous suites
/// (`Vec<Box<dyn …>>`) can be run directly. Generated for both the plain
/// trait object and its `+ Send` form (the concurrent shared-cache
/// engine moves per-shard policy instances across worker threads).
macro_rules! forward_boxed_policy {
    ($ty:ty) => {
        impl ReplacementPolicy for $ty {
            fn name(&self) -> String {
                (**self).name()
            }
            fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
                (**self).on_hit(ctx, page)
            }
            fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
                (**self).on_insert(ctx, page)
            }
            fn choose_victim(&mut self, ctx: &EngineCtx, incoming: PageId) -> PageId {
                (**self).choose_victim(ctx, incoming)
            }
            fn on_evicted(&mut self, ctx: &EngineCtx, victim: PageId) {
                (**self).on_evicted(ctx, victim)
            }
            fn on_external_removal(&mut self, ctx: &EngineCtx, page: PageId) {
                (**self).on_external_removal(ctx, page)
            }
            fn prefetch_hint(&self, page: PageId) {
                (**self).prefetch_hint(page)
            }
            fn reset(&mut self) {
                (**self).reset()
            }
            fn save_state(&self) -> Option<PolicyState> {
                (**self).save_state()
            }
            fn load_state(
                &mut self,
                ctx: &EngineCtx,
                state: &PolicyState,
            ) -> Result<(), SnapshotError> {
                (**self).load_state(ctx, state)
            }
        }
    };
}

forward_boxed_policy!(Box<dyn ReplacementPolicy>);
forward_boxed_policy!(Box<dyn ReplacementPolicy + Send>);

/// Blanket impl so `&mut P` can be passed where a policy is expected.
impl<P: ReplacementPolicy + ?Sized> ReplacementPolicy for &mut P {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        (**self).on_hit(ctx, page)
    }
    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        (**self).on_insert(ctx, page)
    }
    fn choose_victim(&mut self, ctx: &EngineCtx, incoming: PageId) -> PageId {
        (**self).choose_victim(ctx, incoming)
    }
    fn on_evicted(&mut self, ctx: &EngineCtx, victim: PageId) {
        (**self).on_evicted(ctx, victim)
    }
    fn on_external_removal(&mut self, ctx: &EngineCtx, page: PageId) {
        (**self).on_external_removal(ctx, page)
    }
    fn prefetch_hint(&self, page: PageId) {
        (**self).prefetch_hint(page)
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn save_state(&self) -> Option<PolicyState> {
        (**self).save_state()
    }
    fn load_state(&mut self, ctx: &EngineCtx, state: &PolicyState) -> Result<(), SnapshotError> {
        (**self).load_state(ctx, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    /// Evicts the cached page with the smallest id; exists to exercise the
    /// trait plumbing, including through `&mut`.
    struct MinPage;

    impl ReplacementPolicy for MinPage {
        fn name(&self) -> String {
            "min-page".into()
        }
        fn choose_victim(&mut self, ctx: &EngineCtx, _incoming: PageId) -> PageId {
            ctx.cache.iter().min().expect("cache is full")
        }
    }

    #[test]
    fn policy_via_mut_ref() {
        let u = Universe::single_user(3);
        let trace = Trace::from_page_indices(&u, &[0, 1, 2, 0]);
        let mut p = MinPage;
        let r = Simulator::new(2).run(&mut &mut p, &trace);
        // 0,1 fill; 2 evicts 0; request 0 evicts 1.
        assert_eq!(r.total_misses(), 4);
        assert_eq!(r.stats.total_evictions(), 2);
    }
}
