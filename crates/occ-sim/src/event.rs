//! Optional per-request event log.
//!
//! Invariant checkers (the primal–dual conditions of §2.3) and the
//! ALG-CONT ≡ ALG-DISCRETE equivalence experiment need the exact eviction
//! sequence, not just counts. Event recording is off by default because a
//! log entry per request would dominate the engine's memory traffic in
//! throughput benchmarks.
//!
//! Logs come in two flavors:
//!
//! * **unbounded** ([`EventLog::new`]) — every event is retained; the
//!   default, and what the equivalence tests rely on;
//! * **bounded** ([`EventLog::bounded`]) — a fixed-capacity ring that
//!   keeps only the newest events and counts the rest as
//!   [`dropped`](EventLog::dropped), so recording a 10M-request trace
//!   costs `O(capacity)` memory instead of `O(trace)`. Enabled through
//!   [`SimOptions::event_capacity`](crate::engine::SimOptions).
//!
//! For long traces that need *every* event, stream them instead: the
//! `occ-probe` crate's JSONL sink implements
//! [`Recorder`](crate::probe::Recorder) and writes events to any
//! `io::Write` without retaining them.

use crate::ids::{PageId, Time, UserId};
use serde::{Deserialize, Serialize};

/// What happened at one time step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEvent {
    /// The requested page was already cached.
    Hit {
        /// Time of the request.
        t: Time,
        /// Requested page.
        page: PageId,
    },
    /// The page was fetched into free space (no eviction).
    Insert {
        /// Time of the request.
        t: Time,
        /// Requested page.
        page: PageId,
    },
    /// The page was fetched and `victim` was evicted to make room.
    Evict {
        /// Time of the request.
        t: Time,
        /// Requested page.
        page: PageId,
        /// Page removed from the cache.
        victim: PageId,
        /// Owner of the victim page.
        victim_user: UserId,
    },
}

impl SimEvent {
    /// Time of the event.
    pub fn time(&self) -> Time {
        match *self {
            SimEvent::Hit { t, .. } | SimEvent::Insert { t, .. } | SimEvent::Evict { t, .. } => t,
        }
    }

    /// The evicted page, if this event evicted one.
    pub fn victim(&self) -> Option<PageId> {
        match *self {
            SimEvent::Evict { victim, .. } => Some(victim),
            _ => None,
        }
    }
}

/// An append-only sequence of [`SimEvent`]s, optionally bounded to the
/// newest `capacity` entries (ring buffer).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventLog {
    /// Ring storage. For an unbounded log this is plain append order;
    /// once a bounded log wraps, `head` marks the oldest retained entry.
    events: Vec<SimEvent>,
    /// Retention limit (`usize::MAX` for unbounded logs).
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    /// Events discarded because the ring was full.
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// An empty unbounded log.
    pub fn new() -> Self {
        EventLog {
            events: Vec::new(),
            capacity: usize::MAX,
            head: 0,
            dropped: 0,
        }
    }

    /// An empty bounded log retaining at most `capacity` (≥ 1) of the
    /// newest events.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a bounded event log needs capacity >= 1");
        EventLog {
            events: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Append an event, displacing the oldest retained one if the log is
    /// bounded and full.
    #[inline]
    pub fn push(&mut self, event: SimEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Retained events in time order.
    pub fn iter(&self) -> impl Iterator<Item = &SimEvent> {
        let (newer, older) = self.events.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Retained events in time order, as an owned vector.
    pub fn to_vec(&self) -> Vec<SimEvent> {
        self.iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log retains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded by a bounded log (0 for unbounded logs).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total_seen(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// The retention limit, if this log is bounded.
    pub fn capacity(&self) -> Option<usize> {
        (self.capacity != usize::MAX).then_some(self.capacity)
    }

    /// The eviction decisions only, as `(t, victim)` pairs — the canonical
    /// fingerprint for algorithm-equivalence tests.
    pub fn eviction_sequence(&self) -> Vec<(Time, PageId)> {
        self.iter()
            .filter_map(|e| e.victim().map(|v| (e.time(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_fingerprint() {
        let mut log = EventLog::new();
        log.push(SimEvent::Insert {
            t: 0,
            page: PageId(1),
        });
        log.push(SimEvent::Hit {
            t: 1,
            page: PageId(1),
        });
        log.push(SimEvent::Evict {
            t: 2,
            page: PageId(2),
            victim: PageId(1),
            victim_user: UserId(0),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.capacity(), None);
        assert_eq!(log.eviction_sequence(), vec![(2, PageId(1))]);
        let events = log.to_vec();
        assert_eq!(events[2].time(), 2);
        assert_eq!(events[0].victim(), None);
    }

    #[test]
    fn bounded_log_keeps_newest() {
        let mut log = EventLog::bounded(3);
        for t in 0..10 {
            log.push(SimEvent::Hit { t, page: PageId(0) });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.total_seen(), 10);
        assert_eq!(log.capacity(), Some(3));
        let times: Vec<Time> = log.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    fn bounded_log_in_order_at_every_fill_level() {
        // Order must be right before wrapping, exactly at capacity, and
        // after wrapping any number of times.
        for n in 0..12u64 {
            let mut log = EventLog::bounded(4);
            for t in 0..n {
                log.push(SimEvent::Insert { t, page: PageId(0) });
            }
            let times: Vec<Time> = log.iter().map(|e| e.time()).collect();
            let expect: Vec<Time> = (n.saturating_sub(4)..n).collect();
            assert_eq!(times, expect, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        EventLog::bounded(0);
    }
}
