//! Optional per-request event log.
//!
//! Invariant checkers (the primal–dual conditions of §2.3) and the
//! ALG-CONT ≡ ALG-DISCRETE equivalence experiment need the exact eviction
//! sequence, not just counts. Event recording is off by default because a
//! log entry per request would dominate the engine's memory traffic in
//! throughput benchmarks.

use crate::ids::{PageId, Time, UserId};
use serde::{Deserialize, Serialize};

/// What happened at one time step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEvent {
    /// The requested page was already cached.
    Hit {
        /// Time of the request.
        t: Time,
        /// Requested page.
        page: PageId,
    },
    /// The page was fetched into free space (no eviction).
    Insert {
        /// Time of the request.
        t: Time,
        /// Requested page.
        page: PageId,
    },
    /// The page was fetched and `victim` was evicted to make room.
    Evict {
        /// Time of the request.
        t: Time,
        /// Requested page.
        page: PageId,
        /// Page removed from the cache.
        victim: PageId,
        /// Owner of the victim page.
        victim_user: UserId,
    },
}

impl SimEvent {
    /// Time of the event.
    pub fn time(&self) -> Time {
        match *self {
            SimEvent::Hit { t, .. } | SimEvent::Insert { t, .. } | SimEvent::Evict { t, .. } => t,
        }
    }

    /// The evicted page, if this event evicted one.
    pub fn victim(&self) -> Option<PageId> {
        match *self {
            SimEvent::Evict { victim, .. } => Some(victim),
            _ => None,
        }
    }
}

/// An append-only sequence of [`SimEvent`]s.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<SimEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    #[inline]
    pub fn push(&mut self, event: SimEvent) {
        self.events.push(event);
    }

    /// All events in time order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The eviction decisions only, as `(t, victim)` pairs — the canonical
    /// fingerprint for algorithm-equivalence tests.
    pub fn eviction_sequence(&self) -> Vec<(Time, PageId)> {
        self.events
            .iter()
            .filter_map(|e| e.victim().map(|v| (e.time(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_fingerprint() {
        let mut log = EventLog::new();
        log.push(SimEvent::Insert {
            t: 0,
            page: PageId(1),
        });
        log.push(SimEvent::Hit {
            t: 1,
            page: PageId(1),
        });
        log.push(SimEvent::Evict {
            t: 2,
            page: PageId(2),
            victim: PageId(1),
            victim_user: UserId(0),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.eviction_sequence(), vec![(2, PageId(1))]);
        assert_eq!(log.events()[2].time(), 2);
        assert_eq!(log.events()[0].victim(), None);
    }
}
