//! In-memory checkpoint of a running simulation.
//!
//! A checkpoint captures everything needed to continue a run with
//! byte-identical results: the clock, the cache contents *in
//! operation-history order* (policies tie-break by scanning that order),
//! per-user counters, fault-handling state, and an opaque per-policy
//! [`PolicyState`] bag holding recency lists, dual offsets, RNG words,
//! and whatever else the policy needs.
//!
//! This module defines only the in-memory representation; the on-disk JSON
//! encoding (with lossless `u64`/`f64`-bit fields) lives in `occ-probe`,
//! which owns the workspace's JSON machinery. The [`EngineSnapshot::version`]
//! field travels with the snapshot so readers can reject formats they do
//! not understand instead of mis-parsing them.

use crate::error::{FaultCounters, SnapshotError};
use crate::ids::{PageId, Time, UserId};
use crate::stats::UserStats;

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A serializable value inside a [`PolicyState`].
///
/// The variants are deliberately few: every policy state in the workspace
/// is expressible as scalars and dense vectors, and a small closed set
/// keeps the on-disk encoding trivial to keep lossless (`u64` survives as
/// a decimal string, `f64` as its IEEE-754 bit pattern).
#[derive(Clone, Debug, PartialEq)]
pub enum StateValue {
    /// A single unsigned integer (sequence numbers, RNG words, …).
    U64(u64),
    /// A single float (dual offsets, budgets, …).
    F64(f64),
    /// A dense vector of unsigned integers.
    U64s(Vec<u64>),
    /// A dense vector of floats.
    F64s(Vec<f64>),
    /// A free-form string (mode tags, …).
    Text(String),
}

/// An ordered key → [`StateValue`] bag capturing one policy's internal
/// state.
///
/// Keys are policy-defined; [`ReplacementPolicy::load_state`] is expected
/// to reject bags it does not recognize via the typed getters, which
/// return [`SnapshotError::MissingField`] / [`SnapshotError::Corrupt`]
/// instead of panicking.
///
/// [`ReplacementPolicy::load_state`]: crate::policy::ReplacementPolicy::load_state
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolicyState {
    fields: Vec<(String, StateValue)>,
}

impl PolicyState {
    /// An empty bag.
    pub fn new() -> Self {
        PolicyState::default()
    }

    /// All fields in insertion order (the on-disk encoding preserves it).
    pub fn fields(&self) -> &[(String, StateValue)] {
        &self.fields
    }

    /// Look up a field.
    pub fn get(&self, key: &str) -> Option<&StateValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Set `key` to `value`, replacing any existing entry.
    pub fn set(&mut self, key: &str, value: StateValue) -> &mut Self {
        match self.fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.fields.push((key.to_string(), value)),
        }
        self
    }

    /// Set a scalar `u64` field.
    pub fn set_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.set(key, StateValue::U64(v))
    }

    /// Set a scalar `f64` field.
    pub fn set_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.set(key, StateValue::F64(v))
    }

    /// Set a `u64` vector field.
    pub fn set_u64s(&mut self, key: &str, v: Vec<u64>) -> &mut Self {
        self.set(key, StateValue::U64s(v))
    }

    /// Set an `f64` vector field.
    pub fn set_f64s(&mut self, key: &str, v: Vec<f64>) -> &mut Self {
        self.set(key, StateValue::F64s(v))
    }

    /// Set a text field.
    pub fn set_text(&mut self, key: &str, v: &str) -> &mut Self {
        self.set(key, StateValue::Text(v.to_string()))
    }

    fn require(&self, key: &str) -> Result<&StateValue, SnapshotError> {
        self.get(key)
            .ok_or_else(|| SnapshotError::MissingField(format!("policy.{key}")))
    }

    /// Read a scalar `u64` field.
    pub fn u64(&self, key: &str) -> Result<u64, SnapshotError> {
        match self.require(key)? {
            StateValue::U64(v) => Ok(*v),
            other => Err(type_error(key, "u64", other)),
        }
    }

    /// Read a scalar `f64` field.
    pub fn f64(&self, key: &str) -> Result<f64, SnapshotError> {
        match self.require(key)? {
            StateValue::F64(v) => Ok(*v),
            other => Err(type_error(key, "f64", other)),
        }
    }

    /// Read a `u64` vector field.
    pub fn u64s(&self, key: &str) -> Result<&[u64], SnapshotError> {
        match self.require(key)? {
            StateValue::U64s(v) => Ok(v),
            other => Err(type_error(key, "u64 vector", other)),
        }
    }

    /// Read an `f64` vector field.
    pub fn f64s(&self, key: &str) -> Result<&[f64], SnapshotError> {
        match self.require(key)? {
            StateValue::F64s(v) => Ok(v),
            other => Err(type_error(key, "f64 vector", other)),
        }
    }

    /// Read a text field.
    pub fn text(&self, key: &str) -> Result<&str, SnapshotError> {
        match self.require(key)? {
            StateValue::Text(v) => Ok(v),
            other => Err(type_error(key, "text", other)),
        }
    }

    /// Read a `u64` vector field and check its length.
    pub fn u64s_len(&self, key: &str, len: usize) -> Result<&[u64], SnapshotError> {
        let v = self.u64s(key)?;
        if v.len() != len {
            return Err(SnapshotError::Corrupt(format!(
                "policy.{key} has {} entries, expected {len}",
                v.len()
            )));
        }
        Ok(v)
    }

    /// Read an `f64` vector field and check its length.
    pub fn f64s_len(&self, key: &str, len: usize) -> Result<&[f64], SnapshotError> {
        let v = self.f64s(key)?;
        if v.len() != len {
            return Err(SnapshotError::Corrupt(format!(
                "policy.{key} has {} entries, expected {len}",
                v.len()
            )));
        }
        Ok(v)
    }
}

fn type_error(key: &str, expected: &str, got: &StateValue) -> SnapshotError {
    let got = match got {
        StateValue::U64(_) => "u64",
        StateValue::F64(_) => "f64",
        StateValue::U64s(_) => "u64 vector",
        StateValue::F64s(_) => "f64 vector",
        StateValue::Text(_) => "text",
    };
    SnapshotError::Corrupt(format!("policy.{key} is a {got}, expected a {expected}"))
}

/// A versioned, self-describing checkpoint of one engine + policy.
///
/// Produced by [`SteppingEngine::snapshot`] and consumed by
/// [`SteppingEngine::restore`]; resuming from a snapshot continues the
/// run byte-identically to one that was never interrupted (asserted by
/// the `checkpoint_resume_property` proptest suite).
///
/// [`SteppingEngine::snapshot`]: crate::stepper::SteppingEngine::snapshot
/// [`SteppingEngine::restore`]: crate::stepper::SteppingEngine::restore
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]); readers must reject versions
    /// they do not understand.
    pub version: u64,
    /// Requests consumed so far (the resume point).
    pub time: Time,
    /// Cache capacity `k`.
    pub capacity: usize,
    /// Number of users in the universe.
    pub num_users: u32,
    /// Owner table: `owners[p]` is the user owning page `p`.
    pub owners: Vec<UserId>,
    /// Cached pages in *operation-history order* (the order policies see
    /// when they scan the cache).
    pub cache_pages: Vec<PageId>,
    /// Per-user counters, indexed by user id.
    pub stats: Vec<UserStats>,
    /// The policy's [`name`](crate::policy::ReplacementPolicy::name), for
    /// restore-time validation.
    pub policy_name: String,
    /// The policy's internal state.
    pub policy: PolicyState,
    /// Fault counters absorbed so far (empty for unchecked runs).
    pub faults: FaultCounters,
    /// Quarantined users (empty for unchecked runs).
    pub quarantined: Vec<UserId>,
}

impl EngineSnapshot {
    /// Reject snapshots from a different format version.
    pub fn check_version(&self) -> Result<(), SnapshotError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_state_typed_getters() {
        let mut s = PolicyState::new();
        s.set_u64("seq", 7)
            .set_f64("y", 1.5)
            .set_u64s("m", vec![1, 2])
            .set_f64s("y_at", vec![0.0, 0.5])
            .set_text("mode", "fast");
        assert_eq!(s.u64("seq").unwrap(), 7);
        assert_eq!(s.f64("y").unwrap(), 1.5);
        assert_eq!(s.u64s("m").unwrap(), &[1, 2]);
        assert_eq!(s.f64s_len("y_at", 2).unwrap(), &[0.0, 0.5]);
        assert_eq!(s.text("mode").unwrap(), "fast");
        assert_eq!(s.fields().len(), 5);
    }

    #[test]
    fn policy_state_overwrites_in_place() {
        let mut s = PolicyState::new();
        s.set_u64("seq", 1);
        s.set_u64("seq", 2);
        assert_eq!(s.fields().len(), 1);
        assert_eq!(s.u64("seq").unwrap(), 2);
    }

    #[test]
    fn missing_and_mistyped_fields_are_typed_errors() {
        let mut s = PolicyState::new();
        s.set_u64("seq", 7);
        assert!(matches!(
            s.u64("absent"),
            Err(SnapshotError::MissingField(_))
        ));
        assert!(matches!(s.f64("seq"), Err(SnapshotError::Corrupt(_))));
        s.set_u64s("m", vec![1, 2, 3]);
        assert!(matches!(s.u64s_len("m", 2), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn version_gate() {
        let snap = EngineSnapshot {
            version: SNAPSHOT_VERSION + 1,
            time: 0,
            capacity: 1,
            num_users: 1,
            owners: vec![UserId(0)],
            cache_pages: vec![],
            stats: vec![UserStats::default()],
            policy_name: "x".into(),
            policy: PolicyState::new(),
            faults: FaultCounters::default(),
            quarantined: vec![],
        };
        assert!(matches!(
            snap.check_version(),
            Err(SnapshotError::UnsupportedVersion { found, expected })
                if found == SNAPSHOT_VERSION + 1 && expected == SNAPSHOT_VERSION
        ));
    }
}
