//! Request traces and the page/user universe.
//!
//! A [`Universe`] fixes the set of users and which user owns each page
//! (the paper's partition `P = ∪_i P_i`). A [`Trace`] is a finite request
//! sequence over a universe; it additionally precomputes the per-request
//! *interval index* `j(p, t)` and the running distinct-page count `|B(t)|`
//! used by the convex program of the paper (§2.1). Both are properties of
//! the sequence alone, independent of any algorithm.

use crate::ids::{PageId, Time, UserId};
use serde::{Deserialize, Serialize};

/// One page request. The owning user is carried alongside the page so that
/// consumers never need a universe lookup in hot loops.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Requested page.
    pub page: PageId,
    /// Owner of `page`.
    pub user: UserId,
}

/// The static structure of an instance: how many users there are and which
/// user owns each page. Page ids are dense (`0..num_pages`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Universe {
    /// `owner[p]` is the user owning page `p`.
    owner: Vec<UserId>,
    num_users: u32,
}

impl Universe {
    /// Build a universe from an explicit owner table. Panics if an owner id
    /// is out of range for `num_users`.
    pub fn new(num_users: u32, owner: Vec<UserId>) -> Self {
        assert!(num_users > 0, "a universe needs at least one user");
        for (p, &u) in owner.iter().enumerate() {
            assert!(
                u.0 < num_users,
                "page p{p} is owned by {u} but there are only {num_users} users"
            );
        }
        Universe { owner, num_users }
    }

    /// `n` users, each owning `pages_per_user` consecutive pages: user `i`
    /// owns pages `i*pages_per_user .. (i+1)*pages_per_user`.
    pub fn uniform(num_users: u32, pages_per_user: u32) -> Self {
        let owner = (0..num_users)
            .flat_map(|u| std::iter::repeat_n(UserId(u), pages_per_user as usize))
            .collect();
        Universe { owner, num_users }
    }

    /// Users with heterogeneous page-set sizes; `sizes[i]` pages for user `i`.
    pub fn with_sizes(sizes: &[u32]) -> Self {
        assert!(!sizes.is_empty());
        let owner = sizes
            .iter()
            .enumerate()
            .flat_map(|(u, &s)| std::iter::repeat_n(UserId(u as u32), s as usize))
            .collect();
        Universe {
            owner,
            num_users: sizes.len() as u32,
        }
    }

    /// A single user owning `pages` pages — the classical paging setting.
    pub fn single_user(pages: u32) -> Self {
        Self::uniform(1, pages)
    }

    /// Number of users `n`.
    #[inline]
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Total number of pages `|P|`.
    #[inline]
    pub fn num_pages(&self) -> u32 {
        self.owner.len() as u32
    }

    /// Owner `i(p)` of a page. Panics if the page is outside the universe.
    #[inline]
    pub fn owner(&self, page: PageId) -> UserId {
        assert!(
            page.index() < self.owner.len(),
            "page {page} is outside the universe ({} pages)",
            self.owner.len()
        );
        self.owner[page.index()]
    }

    /// Owner of a page, or `None` if the page is outside the universe —
    /// the non-panicking form used when validating possibly-corrupt
    /// request records.
    #[inline]
    pub fn try_owner(&self, page: PageId) -> Option<UserId> {
        self.owner.get(page.index()).copied()
    }

    /// The full owner table, indexed by page id (snapshots embed it so a
    /// resumed run can verify it is replaying against the same universe).
    #[inline]
    pub fn owners(&self) -> &[UserId] {
        &self.owner
    }

    /// All pages owned by `user` (ascending page id).
    pub fn pages_of(&self, user: UserId) -> Vec<PageId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &u)| u == user)
            .map(|(p, _)| PageId(p as u32))
            .collect()
    }

    /// Build a request for `page`, filling in the owner.
    #[inline]
    pub fn request(&self, page: PageId) -> Request {
        Request {
            page,
            user: self.owner(page),
        }
    }
}

/// A finite request sequence `σ` over a [`Universe`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    universe: Universe,
    requests: Vec<Request>,
    /// Lazily built prefix-distinct table: `distinct_prefix[t]` =
    /// `|B(t)|`. Invalidated (replaced with an empty cell) whenever the
    /// request sequence changes.
    distinct_prefix: std::sync::OnceLock<Vec<u32>>,
}

impl Trace {
    /// Wrap a request vector. Panics if any request disagrees with the
    /// universe's owner table or references an out-of-range page.
    pub fn new(universe: Universe, requests: Vec<Request>) -> Self {
        for (t, r) in requests.iter().enumerate() {
            assert!(
                r.page.0 < universe.num_pages(),
                "request at t={t} references page {} outside the universe",
                r.page
            );
            assert_eq!(
                universe.owner(r.page),
                r.user,
                "request at t={t} claims {} owns {} but the universe disagrees",
                r.user,
                r.page
            );
        }
        Trace {
            universe,
            requests,
            distinct_prefix: std::sync::OnceLock::new(),
        }
    }

    /// Build a trace from raw page indices, deriving owners from the
    /// universe.
    pub fn from_page_indices(universe: &Universe, pages: &[u32]) -> Self {
        let requests = pages.iter().map(|&p| universe.request(PageId(p))).collect();
        Trace::new(universe.clone(), requests)
    }

    /// The universe this trace ranges over.
    #[inline]
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Number of requests `T`.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The request at time `t` (zero-based).
    #[inline]
    pub fn at(&self, t: Time) -> Request {
        self.requests[t as usize]
    }

    /// All requests in order.
    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterate `(t, request)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Time, Request)> + '_ {
        self.requests
            .iter()
            .enumerate()
            .map(|(t, &r)| (t as Time, r))
    }

    /// Number of *distinct* pages requested in `σ[0..=t]` — the paper's
    /// `|B(t)|`. The full prefix table is built once on first use
    /// (`O(T)`) and memoized, so repeated calls are `O(1)` lookups;
    /// [`extend_with`](Self::extend_with) invalidates the memo.
    pub fn distinct_pages_through(&self, t: Time) -> usize {
        let prefix = self.distinct_prefix.get_or_init(|| {
            let mut seen = vec![false; self.universe.num_pages() as usize];
            let mut count = 0u32;
            let mut prefix = Vec::with_capacity(self.requests.len());
            for r in &self.requests {
                if !seen[r.page.index()] {
                    seen[r.page.index()] = true;
                    count += 1;
                }
                prefix.push(count);
            }
            prefix
        });
        prefix[t as usize] as usize
    }

    /// Per-user request counts (how many times each user appears in `σ`).
    pub fn request_counts_per_user(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.universe.num_users() as usize];
        for r in &self.requests {
            counts[r.user.index()] += 1;
        }
        counts
    }

    /// Precompute the interval/occurrence structure (see [`TraceIndex`]).
    pub fn index(&self) -> TraceIndex {
        TraceIndex::build(self)
    }

    /// Concatenate another trace over the same universe onto this one.
    pub fn extend_with(&mut self, other: &Trace) {
        assert_eq!(
            self.universe, other.universe,
            "cannot concatenate traces over different universes"
        );
        self.requests.extend_from_slice(&other.requests);
        self.distinct_prefix = std::sync::OnceLock::new();
    }
}

/// Precomputed per-request sequence structure used by the convex program
/// (§2.1): for each time `t`, the occurrence number `r(p_t, t)` of the
/// requested page (1-based, i.e. its interval index `j(p_t, t)`), and the
/// running distinct-page count `|B(t)|`.
#[derive(Clone, Debug)]
pub struct TraceIndex {
    /// `occurrence[t]` = how many times `p_t` has been requested in
    /// `σ[0..=t]` (so the first request of a page has occurrence 1). This
    /// is the paper's interval index `j(p_t, t)` of the interval *opened*
    /// by the request at `t`.
    pub occurrence: Vec<u32>,
    /// `distinct[t]` = `|B(t)|`, the number of distinct pages in `σ[0..=t]`.
    pub distinct: Vec<u32>,
    /// `total_requests[p]` = `r(p, T)`, total requests of page `p`.
    pub total_requests: Vec<u32>,
    /// `request_times[p]` = ascending times at which `p` is requested, so
    /// `request_times[p][j-1]` is the paper's `t(p, j)`.
    pub request_times: Vec<Vec<Time>>,
}

impl TraceIndex {
    fn build(trace: &Trace) -> Self {
        let pages = trace.universe.num_pages() as usize;
        let mut seen_count = vec![0u32; pages];
        let mut occurrence = Vec::with_capacity(trace.len());
        let mut distinct = Vec::with_capacity(trace.len());
        let mut request_times: Vec<Vec<Time>> = vec![Vec::new(); pages];
        let mut distinct_so_far = 0u32;
        for (t, r) in trace.iter() {
            let c = &mut seen_count[r.page.index()];
            if *c == 0 {
                distinct_so_far += 1;
            }
            *c += 1;
            occurrence.push(*c);
            distinct.push(distinct_so_far);
            request_times[r.page.index()].push(t);
        }
        TraceIndex {
            occurrence,
            distinct,
            total_requests: seen_count,
            request_times,
        }
    }

    /// `r(p, T)`: total number of requests to `p`.
    #[inline]
    pub fn total_requests(&self, page: PageId) -> u32 {
        self.total_requests[page.index()]
    }

    /// The paper's `t(p, j)`: time of the `j`-th (1-based) request of `p`,
    /// or `None` if `p` is requested fewer than `j` times.
    pub fn request_time(&self, page: PageId, j: u32) -> Option<Time> {
        self.request_times[page.index()]
            .get((j - 1) as usize)
            .copied()
    }
}

/// Incremental construction of a [`Trace`].
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    universe: Universe,
    requests: Vec<Request>,
}

impl TraceBuilder {
    /// Start an empty trace over `universe`.
    pub fn new(universe: Universe) -> Self {
        TraceBuilder {
            universe,
            requests: Vec::new(),
        }
    }

    /// Append a request for `page`.
    pub fn push(&mut self, page: PageId) -> &mut Self {
        let r = self.universe.request(page);
        self.requests.push(r);
        self
    }

    /// Append requests for each page index in `pages`.
    pub fn push_all(&mut self, pages: &[u32]) -> &mut Self {
        for &p in pages {
            self.push(PageId(p));
        }
        self
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether no requests have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Finish and return the trace.
    pub fn build(self) -> Trace {
        Trace {
            universe: self.universe,
            requests: self.requests,
            distinct_prefix: std::sync::OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Trace {
        let u = Universe::uniform(2, 2); // u0: p0 p1, u1: p2 p3
        Trace::from_page_indices(&u, &[0, 2, 0, 3, 2, 0])
    }

    #[test]
    fn universe_ownership() {
        let u = Universe::uniform(3, 2);
        assert_eq!(u.num_pages(), 6);
        assert_eq!(u.owner(PageId(0)), UserId(0));
        assert_eq!(u.owner(PageId(5)), UserId(2));
        assert_eq!(u.pages_of(UserId(1)), vec![PageId(2), PageId(3)]);
    }

    #[test]
    fn universe_with_sizes() {
        let u = Universe::with_sizes(&[1, 3]);
        assert_eq!(u.num_pages(), 4);
        assert_eq!(u.owner(PageId(0)), UserId(0));
        assert_eq!(u.owner(PageId(3)), UserId(1));
        assert_eq!(u.pages_of(UserId(0)), vec![PageId(0)]);
    }

    #[test]
    fn try_owner_is_total() {
        let u = Universe::uniform(2, 2);
        assert_eq!(u.try_owner(PageId(3)), Some(UserId(1)));
        assert_eq!(u.try_owner(PageId(4)), None);
        assert_eq!(u.owners().len(), 4);
        assert_eq!(u.owners()[0], UserId(0));
    }

    #[test]
    #[should_panic(expected = "owned by")]
    fn universe_rejects_bad_owner() {
        Universe::new(1, vec![UserId(1)]);
    }

    #[test]
    fn trace_basics() {
        let t = small();
        assert_eq!(t.len(), 6);
        assert_eq!(t.at(1).page, PageId(2));
        assert_eq!(t.at(1).user, UserId(1));
        assert_eq!(t.request_counts_per_user(), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn trace_rejects_unknown_page() {
        let u = Universe::uniform(1, 2);
        Trace::from_page_indices(&u, &[5]);
    }

    #[test]
    fn distinct_counts() {
        let t = small();
        assert_eq!(t.distinct_pages_through(0), 1);
        assert_eq!(t.distinct_pages_through(2), 2);
        assert_eq!(t.distinct_pages_through(3), 3);
        assert_eq!(t.distinct_pages_through(5), 3);
    }

    #[test]
    fn distinct_counts_are_stable_across_repeated_calls() {
        let t = small();
        // Every (t, expected) pair queried repeatedly, out of order, must
        // keep returning the same value from the memoized prefix table.
        let expected = [(0, 1), (2, 2), (3, 3), (5, 3), (1, 2), (4, 3)];
        for _ in 0..3 {
            for &(time, want) in &expected {
                assert_eq!(t.distinct_pages_through(time), want);
            }
        }
        // The memo agrees with TraceIndex, the other prefix computation.
        let idx = t.index();
        for time in 0..t.len() {
            assert_eq!(
                t.distinct_pages_through(time as Time),
                idx.distinct[time] as usize
            );
        }
    }

    #[test]
    fn extend_with_invalidates_distinct_memo() {
        let u = Universe::uniform(1, 3);
        let mut a = Trace::from_page_indices(&u, &[0, 0]);
        assert_eq!(a.distinct_pages_through(1), 1); // memo built here
        let b = Trace::from_page_indices(&u, &[1, 2]);
        a.extend_with(&b);
        assert_eq!(a.distinct_pages_through(1), 1);
        assert_eq!(a.distinct_pages_through(3), 3);
    }

    #[test]
    fn index_occurrences_and_times() {
        let t = small();
        let idx = t.index();
        // p0 requested at times 0, 2, 5 → occurrences 1, 2, 3.
        assert_eq!(idx.occurrence[0], 1);
        assert_eq!(idx.occurrence[2], 2);
        assert_eq!(idx.occurrence[5], 3);
        assert_eq!(idx.total_requests(PageId(0)), 3);
        assert_eq!(idx.total_requests(PageId(1)), 0);
        assert_eq!(idx.request_time(PageId(0), 2), Some(2));
        assert_eq!(idx.request_time(PageId(0), 4), None);
        assert_eq!(idx.distinct, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn builder_round_trip() {
        let u = Universe::uniform(1, 3);
        let mut b = TraceBuilder::new(u.clone());
        assert!(b.is_empty());
        b.push(PageId(0)).push(PageId(2));
        b.push_all(&[1, 1]);
        assert_eq!(b.len(), 4);
        let t = b.build();
        assert_eq!(t.requests().len(), 4);
        assert_eq!(t.at(3).page, PageId(1));
    }

    #[test]
    fn extend_with_concatenates() {
        let u = Universe::uniform(1, 2);
        let mut a = Trace::from_page_indices(&u, &[0, 1]);
        let b = Trace::from_page_indices(&u, &[1, 0]);
        a.extend_with(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.at(2).page, PageId(1));
    }

    #[test]
    fn serde_round_trip_shape() {
        // serde derives exist; smoke-test Clone/Eq on Universe instead of a
        // concrete format (no serde_json in the dependency budget).
        let u = Universe::uniform(2, 2);
        let u2 = u.clone();
        assert_eq!(u, u2);
    }
}
