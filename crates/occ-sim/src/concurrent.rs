//! A page-sharded concurrent engine: one k-sized cache, many writers.
//!
//! `occ-fleet` scales by cloning *independent* caches; this module is the
//! other axis — M worker threads serving interleaved per-user streams
//! against a **single** shared cache of capacity `k`, which is the
//! setting the paper actually reasons about (one cache, n users, convex
//! per-user costs). The page table is striped into S lock-guarded shard
//! segments; global capacity lives in a sharded per-segment counter whose
//! grants are serialized on a slow-path mutex; evictions are routed
//! through the per-shard policy instances, so the existing flat-array
//! policies (LRU / FIFO / greedy-dual) are *reused*, not forked.
//!
//! # Correctness: the commit schedule and the replay gate
//!
//! Concurrency bugs are silent, so every run carries its own proof
//! obligation. Each consumed record commits exactly one
//! [`CommitRecord`] — `(seq, thread, shard, page, user, outcome)` —
//! where `seq` is drawn from a global counter **while the op's locks are
//! held**. Because every operation holds all locks covering the state it
//! touches from validation to commit (strict two-phase locking with the
//! sequence draw inside the critical section), the concurrent execution
//! is conflict-serializable in `seq` order. A single-threaded replay of
//! the merged schedule through the stock [`SteppingEngine`] — wrapped in
//! a [`ShardedPolicy`] that mirrors the shard routing — must therefore
//! reproduce every per-request outcome, the per-user miss vectors, the
//! fault counters, and the quarantine set *byte-identically*. The replay
//! gate ([`replay_schedule`] + [`verify_replay`]) checks all of it.
//!
//! # Locking protocol
//!
//! * **Hit**: lock `shard(page)` only; draw `seq`; `on_hit`.
//! * **Miss** (insert or evict): release the shard lock, take the
//!   capacity mutex, relock the shard, re-validate (the page may have
//!   been inserted by a racing thread — now a hit; the user may have
//!   been quarantined — now a drop). Capacity-affecting operations are
//!   totally ordered by the mutex: any lock-free capacity fast path
//!   lets the sequence order invert the token-grant order, and the
//!   replay (whose insert-vs-evict branch reads the *global*
//!   `is_full()`) would diverge.
//! * **Eviction**: the mutex holder scans the per-shard used counters
//!   from `shard(page)` upward (mod S) for the first non-empty segment
//!   and asks *that* shard's policy for the victim. Only the mutex
//!   holder ever holds two shard locks, so lock order cannot deadlock:
//!   a thread holding a shard lock never waits on the mutex (misses
//!   release before acquiring it).
//! * **Quarantine event** (malformed record under
//!   [`FaultPolicy::QuarantineUser`]): mutex + *all* shard locks in
//!   ascending order; set the flag, purge the culprit's pages from
//!   every segment, draw `seq` under the full lock set. Quarantine
//!   flags are only read under at least one shard lock, so a reader is
//!   always strictly before or strictly after the whole event.
//! * **Stateless drops** (malformed records under skip-and-count): no
//!   shared state is touched, the record commutes with everything; a
//!   bare atomic `seq` draw suffices.
//!
//! # The policy purity contract
//!
//! Shard-local policy instances see per-shard `EngineCtx` views (their
//! own segment's cache, an all-zero stats table), while the replay's
//! inner instances see the global engine's view. The two agree only for
//! policies whose decisions are pure functions of their callback
//! sequence — which holds for the intrusive-list policies this engine
//! supports (LRU, FIFO, greedy-dual): they read `ctx.universe` (owner
//! table, page count) and nothing else. Policies that scan `ctx.cache`
//! (e.g. the self-cleaning `FifoReference`) or read `ctx.stats` /
//! `ctx.time` (the convex-cost family) are **not** shard-safe and must
//! not be handed to [`ConcurrentEngine`].

use crate::cache::CacheSet;
use crate::engine::EngineCtx;
use crate::error::{FaultCounters, FaultHandler, FaultKind, FaultPolicy, RequestFault, SimError};
use crate::ids::{PageId, Time, UserId};
use crate::policy::ReplacementPolicy;
use crate::probe::Recorder;
use crate::source::RequestSource;
use crate::stats::SimStats;
use crate::stepper::{StepOutcome, SteppingEngine};
use crate::trace::{Request, Universe};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Which shard segment a page hashes to: dense page ids stripe round-robin.
#[inline]
pub fn shard_of(page: PageId, table_shards: usize) -> usize {
    page.0 as usize % table_shards
}

/// What one committed request did to the shared cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The page was already cached.
    Hit,
    /// The page was fetched into free space.
    Insert,
    /// The page was fetched; `victim` was evicted to make room.
    Evict {
        /// The page evicted to make room.
        victim: PageId,
    },
    /// The record was absorbed by the degradation policy (skipped,
    /// quarantine-dropped, or the fault that triggered a quarantine).
    Drop {
        /// How the record was classified.
        kind: FaultKind,
    },
}

/// One entry of the commit schedule: the global commit position plus
/// enough provenance (thread, shard) and effect (outcome) to replay and
/// cross-check the request later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Global commit position (equals the replay engine's clock tick).
    pub seq: u64,
    /// Worker thread that served the request.
    pub thread: u32,
    /// Shard segment of the requested page.
    pub shard: u32,
    /// Requested page (may be out of range for fault records).
    pub page: PageId,
    /// Claimed owner (may disagree with the universe for fault records).
    pub user: UserId,
    /// What the engine did.
    pub outcome: CommitOutcome,
}

impl CommitRecord {
    /// Serialize as one whitespace-separated line:
    /// `seq thread shard page user tag [aux]`.
    pub fn to_line(&self) -> String {
        let (tag, aux) = match self.outcome {
            CommitOutcome::Hit => ("hit", String::new()),
            CommitOutcome::Insert => ("ins", String::new()),
            CommitOutcome::Evict { victim } => ("evt", format!(" {}", victim.0)),
            CommitOutcome::Drop { kind } => ("drop", format!(" {}", kind.name())),
        };
        format!(
            "{} {} {} {} {} {tag}{aux}",
            self.seq, self.thread, self.shard, self.page.0, self.user.0
        )
    }

    /// Parse a line produced by [`to_line`](Self::to_line).
    pub fn from_line(line: &str) -> Result<CommitRecord, ReplayError> {
        let bad = |what: &str| ReplayError::Schedule(format!("{what} in schedule line '{line}'"));
        let mut it = line.split_ascii_whitespace();
        let seq = it
            .next()
            .ok_or_else(|| bad("missing/bad seq"))?
            .parse::<u64>()
            .map_err(|_| bad("missing/bad seq"))?;
        let mut num32 = |what: &str| -> Result<u32, ReplayError> {
            it.next()
                .ok_or_else(|| bad(what))?
                .parse::<u32>()
                .map_err(|_| bad(what))
        };
        let thread = num32("missing/bad thread")?;
        let shard = num32("missing/bad shard")?;
        let page = PageId(num32("missing/bad page")?);
        let user = UserId(num32("missing/bad user")?);
        let tag = it.next().ok_or_else(|| bad("missing outcome tag"))?;
        let outcome = match tag {
            "hit" => CommitOutcome::Hit,
            "ins" => CommitOutcome::Insert,
            "evt" => {
                let victim = it
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or_else(|| bad("missing/bad victim"))?;
                CommitOutcome::Evict {
                    victim: PageId(victim),
                }
            }
            "drop" => {
                let kind = match it.next() {
                    Some("page-out-of-range") => FaultKind::PageOutOfRange,
                    Some("owner-mismatch") => FaultKind::OwnerMismatch,
                    Some("quarantined-user") => FaultKind::QuarantinedUser,
                    _ => return Err(bad("missing/bad fault kind")),
                };
                CommitOutcome::Drop { kind }
            }
            _ => return Err(bad("unknown outcome tag")),
        };
        if it.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        Ok(CommitRecord {
            seq,
            thread,
            shard,
            page,
            user,
            outcome,
        })
    }
}

/// The merged, seq-sorted commit schedule of one concurrent run.
///
/// Construction validates the defining invariant: sequence numbers are
/// exactly `0..len` with no gap or duplicate — every consumed record
/// drew one commit position, so the schedule *is* the replay timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitSchedule {
    entries: Vec<CommitRecord>,
}

impl CommitSchedule {
    /// Merge per-thread commit logs into one seq-ordered schedule.
    pub fn from_threads(per_thread: Vec<Vec<CommitRecord>>) -> Result<CommitSchedule, ReplayError> {
        let mut entries: Vec<CommitRecord> = per_thread.into_iter().flatten().collect();
        entries.sort_unstable_by_key(|e| e.seq);
        let sched = CommitSchedule { entries };
        sched.check_contiguous()?;
        Ok(sched)
    }

    /// Rebuild a schedule from serialized entry lines (any order).
    pub fn from_lines<'a, I: IntoIterator<Item = &'a str>>(
        lines: I,
    ) -> Result<CommitSchedule, ReplayError> {
        let mut entries = lines
            .into_iter()
            .map(CommitRecord::from_line)
            .collect::<Result<Vec<_>, _>>()?;
        entries.sort_unstable_by_key(|e| e.seq);
        let sched = CommitSchedule { entries };
        sched.check_contiguous()?;
        Ok(sched)
    }

    fn check_contiguous(&self) -> Result<(), ReplayError> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(ReplayError::Schedule(format!(
                    "schedule is not contiguous: position {i} holds seq {}",
                    e.seq
                )));
            }
        }
        Ok(())
    }

    /// The entries in commit (= replay) order.
    pub fn entries(&self) -> &[CommitRecord] {
        &self.entries
    }

    /// Number of committed records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Why a replay could not certify a concurrent run.
#[derive(Debug)]
pub enum ReplayError {
    /// The schedule itself is malformed (gap, duplicate, parse error).
    Schedule(String),
    /// The replay disagreed with the recorded run.
    Divergence {
        /// First diverging commit position (`u64::MAX` for end-of-run
        /// aggregate mismatches).
        seq: u64,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The replay engine itself faulted (fail-fast schedules are not
    /// replayable).
    Fault(SimError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Schedule(msg) => write!(f, "bad commit schedule: {msg}"),
            ReplayError::Divergence { seq, detail } if *seq == u64::MAX => {
                write!(f, "replay divergence (aggregate): {detail}")
            }
            ReplayError::Divergence { seq, detail } => {
                write!(f, "replay divergence at seq {seq}: {detail}")
            }
            ReplayError::Fault(e) => write!(f, "replay fault: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Mirror of the concurrent engine's shard routing for the
/// single-threaded replay: S inner policy instances plus per-shard
/// cached-page counts, driven through the stock [`SteppingEngine`].
///
/// `choose_victim` re-runs the concurrent victim-shard scan — first
/// non-empty segment from `shard(incoming)` upward — and delegates to
/// that shard's inner instance, so every inner policy sees exactly the
/// callback subsequence its concurrent twin saw.
pub struct ShardedPolicy<P> {
    inners: Vec<P>,
    counts: Vec<usize>,
}

impl<P: ReplacementPolicy> ShardedPolicy<P> {
    /// Wrap one policy instance per shard segment.
    pub fn new(inners: Vec<P>) -> Self {
        assert!(!inners.is_empty(), "need at least one shard");
        let counts = vec![0; inners.len()];
        ShardedPolicy { inners, counts }
    }

    /// Number of shard segments.
    pub fn table_shards(&self) -> usize {
        self.inners.len()
    }
}

impl<P: ReplacementPolicy> ReplacementPolicy for ShardedPolicy<P> {
    fn name(&self) -> String {
        format!("sharded({}x{})", self.inners[0].name(), self.inners.len())
    }

    fn on_hit(&mut self, ctx: &EngineCtx, page: PageId) {
        let s = shard_of(page, self.inners.len());
        self.inners[s].on_hit(ctx, page);
    }

    fn on_insert(&mut self, ctx: &EngineCtx, page: PageId) {
        let s = shard_of(page, self.inners.len());
        self.counts[s] += 1;
        self.inners[s].on_insert(ctx, page);
    }

    fn choose_victim(&mut self, ctx: &EngineCtx, incoming: PageId) -> PageId {
        let n = self.inners.len();
        let start = shard_of(incoming, n);
        let v = (0..n)
            .map(|i| (start + i) % n)
            .find(|&i| self.counts[i] > 0)
            .expect("cache is full but no shard holds a page");
        self.inners[v].choose_victim(ctx, incoming)
    }

    fn on_evicted(&mut self, ctx: &EngineCtx, victim: PageId) {
        let s = shard_of(victim, self.inners.len());
        self.counts[s] -= 1;
        self.inners[s].on_evicted(ctx, victim);
    }

    fn on_external_removal(&mut self, ctx: &EngineCtx, page: PageId) {
        let s = shard_of(page, self.inners.len());
        self.counts[s] -= 1;
        self.inners[s].on_external_removal(ctx, page);
    }

    fn reset(&mut self) {
        for p in &mut self.inners {
            p.reset();
        }
        self.counts.fill(0);
    }
}

/// One shard segment: its slice of the page table, its policy instance,
/// and an all-zero stats table used to fabricate per-shard `EngineCtx`
/// views (the supported policies never read stats — see the purity
/// contract in the module docs).
struct ShardState<P> {
    cache: CacheSet,
    policy: P,
    stats: SimStats,
}

/// The sharded capacity counter: per-segment used counts plus the global
/// free count. Grants (and the victim-shard scan, which is the slow-path
/// rebalance) are serialized under the owning mutex.
struct CapacityState {
    free: usize,
    used: Vec<usize>,
}

/// Per-thread accumulation: counters and the thread's slice of the
/// commit schedule. Merged after the workers join.
#[derive(Clone, Debug, Default)]
pub struct ThreadLane {
    /// Per-user hit/miss/eviction counters observed by this thread.
    pub stats: SimStats,
    /// Faults absorbed by this thread.
    pub counters: FaultCounters,
    /// Commit records in this thread's local order (seq ascending).
    pub schedule: Vec<CommitRecord>,
}

impl ThreadLane {
    fn new(num_users: u32) -> Self {
        ThreadLane {
            stats: SimStats::new(num_users),
            counters: FaultCounters::default(),
            schedule: Vec::new(),
        }
    }
}

/// The merged result of a concurrent run.
#[derive(Clone, Debug)]
pub struct SharedOutcome {
    /// Per-user counters summed across threads.
    pub stats: SimStats,
    /// Fault counters merged across threads.
    pub counters: FaultCounters,
    /// Quarantined users, ascending.
    pub quarantined: Vec<UserId>,
    /// The merged, validated commit schedule.
    pub schedule: CommitSchedule,
    /// Per-thread `(stats, counters)` before merging, for exactness
    /// assertions (the merged counters must *sum* to these).
    pub per_thread: Vec<(SimStats, FaultCounters)>,
}

/// The aggregate state of a single-threaded schedule replay.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The replay engine's per-user counters.
    pub stats: SimStats,
    /// The replay handler's fault counters.
    pub counters: FaultCounters,
    /// The replay handler's quarantine set, ascending.
    pub quarantined: Vec<UserId>,
}

/// M writers, one cache: the concurrent shared-cache engine.
pub struct ConcurrentEngine<P> {
    universe: Universe,
    capacity: usize,
    degrade: FaultPolicy,
    shards: Vec<Mutex<ShardState<P>>>,
    cap: Mutex<CapacityState>,
    seq: AtomicU64,
    quarantined: Vec<AtomicBool>,
    stop: AtomicBool,
}

impl<P: ReplacementPolicy> ConcurrentEngine<P> {
    /// Build an engine of capacity `capacity` with one policy instance
    /// per shard segment (`policies.len()` = S). Panics on zero capacity
    /// or an empty shard list, like the sequential engines.
    pub fn new(
        capacity: usize,
        universe: Universe,
        degrade: FaultPolicy,
        policies: Vec<P>,
    ) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(!policies.is_empty(), "need at least one shard");
        let num_pages = universe.num_pages();
        let shards: Vec<Mutex<ShardState<P>>> = policies
            .into_iter()
            .map(|policy| {
                Mutex::new(ShardState {
                    // Full capacity and page range per segment: global
                    // occupancy (enforced by the capacity counter) bounds
                    // any one segment, so per-segment inserts never
                    // overflow.
                    cache: CacheSet::new(capacity, num_pages),
                    policy,
                    stats: SimStats::new(universe.num_users()),
                })
            })
            .collect();
        let table_shards = shards.len();
        let quarantined = (0..universe.num_users())
            .map(|_| AtomicBool::new(false))
            .collect();
        ConcurrentEngine {
            universe,
            capacity,
            degrade,
            shards,
            cap: Mutex::new(CapacityState {
                free: capacity,
                used: vec![0; table_shards],
            }),
            seq: AtomicU64::new(0),
            quarantined,
            stop: AtomicBool::new(false),
        }
    }

    /// The page/user universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Cache capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shard segments S.
    pub fn table_shards(&self) -> usize {
        self.shards.len()
    }

    /// The degradation policy in force.
    pub fn degrade(&self) -> FaultPolicy {
        self.degrade
    }

    /// Records committed so far.
    pub fn committed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Whether a fail-fast fault has stopped the run.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Quarantined users, ascending.
    pub fn quarantined_users(&self) -> Vec<UserId> {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| q.load(Ordering::Relaxed))
            .map(|(i, _)| UserId(i as u32))
            .collect()
    }

    /// Serve one untrusted record on behalf of `thread`, appending its
    /// commit record to `lane`. Mirrors
    /// [`SteppingEngine::step_checked`] classification and effects
    /// exactly; the only error is a fail-fast fault, which also raises
    /// the engine-wide stop flag.
    pub fn serve_record(
        &self,
        thread: u32,
        req: Request,
        lane: &mut ThreadLane,
    ) -> Result<CommitOutcome, SimError> {
        let malformed = match self.universe.try_owner(req.page) {
            None => Some(FaultKind::PageOutOfRange),
            Some(owner) if owner != req.user => Some(FaultKind::OwnerMismatch),
            Some(_) => None,
        };
        if let Some(kind) = malformed {
            return self.absorb_malformed(thread, req, kind, lane);
        }
        let s = shard_of(req.page, self.shards.len());
        // Fast path: quarantine flag and membership under the shard lock
        // only. The flag read is ordered against quarantine events
        // because those hold every shard lock.
        {
            let mut sh = self.shards[s].lock().unwrap();
            if self.quarantined[req.user.index()].load(Ordering::Relaxed) {
                return Ok(self.commit_quarantined_drop(s, thread, req, lane));
            }
            if sh.cache.contains(req.page) {
                return Ok(self.commit_hit(&mut sh, s, thread, req, lane));
            }
        }
        // Slow path: a capacity-affecting miss. Release the shard lock
        // first (holding it while waiting on the mutex would deadlock
        // against a mutex holder evicting from this shard), then
        // re-validate everything after relocking.
        let mut cap = self.cap.lock().unwrap();
        let mut sh = self.shards[s].lock().unwrap();
        if self.quarantined[req.user.index()].load(Ordering::Relaxed) {
            return Ok(self.commit_quarantined_drop(s, thread, req, lane));
        }
        if sh.cache.contains(req.page) {
            return Ok(self.commit_hit(&mut sh, s, thread, req, lane));
        }
        if cap.free > 0 {
            cap.free -= 1;
            cap.used[s] += 1;
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let ShardState {
                cache,
                policy,
                stats,
            } = &mut *sh;
            cache.insert(req.page);
            lane.stats.record_miss(req.user);
            let ctx = EngineCtx {
                time: seq,
                cache,
                stats,
                universe: &self.universe,
            };
            policy.on_insert(&ctx, req.page);
            let outcome = CommitOutcome::Insert;
            lane.schedule
                .push(self.record(seq, thread, s, req, outcome));
            return Ok(outcome);
        }
        // Eviction: scan the sharded counter from this segment upward
        // for the first non-empty one; its policy names the victim.
        let n = self.shards.len();
        let v = (0..n)
            .map(|i| (s + i) % n)
            .find(|&i| cap.used[i] > 0)
            .expect("cache is full but no shard holds a page");
        // seq must be drawn only once every covering lock is held; for a
        // cross-shard eviction that includes the victim shard's lock, or a
        // concurrent hit there could commit with a later seq yet mutate the
        // shard's policy state first, making the schedule non-serializable
        // in seq order.
        let (seq, victim) = if v == s {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let victim = Self::evict_and_insert(&mut sh, None, req.page, seq, &self.universe);
            (seq, victim)
        } else {
            // Only the capacity-mutex holder ever takes a second shard
            // lock, so this nested acquisition cannot deadlock.
            let mut shv = self.shards[v].lock().unwrap();
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let victim =
                Self::evict_and_insert(&mut shv, Some(&mut sh), req.page, seq, &self.universe);
            (seq, victim)
        };
        cap.used[v] -= 1;
        cap.used[s] += 1;
        lane.stats.record_eviction(self.universe.owner(victim));
        lane.stats.record_miss(req.user);
        let outcome = CommitOutcome::Evict { victim };
        lane.schedule
            .push(self.record(seq, thread, s, req, outcome));
        Ok(outcome)
    }

    /// Evict from `victim_shard` and insert `incoming` into `home`
    /// (`None` when the victim lives in the incoming page's own
    /// segment). Mirrors the sequential serve order: `choose_victim`,
    /// physical remove + insert, then `on_evicted`, then `on_insert`.
    fn evict_and_insert(
        victim_shard: &mut ShardState<P>,
        home: Option<&mut ShardState<P>>,
        incoming: PageId,
        seq: u64,
        universe: &Universe,
    ) -> PageId {
        let victim = {
            let ShardState {
                cache,
                policy,
                stats,
            } = victim_shard;
            let ctx = EngineCtx {
                time: seq,
                cache,
                stats,
                universe,
            };
            let victim = policy.choose_victim(&ctx, incoming);
            assert!(
                cache.contains(victim),
                "policy chose a victim that is not cached in its shard"
            );
            assert!(victim != incoming, "policy evicted the incoming page");
            cache.remove(victim);
            victim
        };
        match home {
            None => {
                // Victim and incoming share a segment.
                victim_shard.cache.insert(incoming);
                let ShardState {
                    cache,
                    policy,
                    stats,
                } = victim_shard;
                let ctx = EngineCtx {
                    time: seq,
                    cache,
                    stats,
                    universe,
                };
                policy.on_evicted(&ctx, victim);
                policy.on_insert(&ctx, incoming);
            }
            Some(home) => {
                home.cache.insert(incoming);
                {
                    let ShardState {
                        cache,
                        policy,
                        stats,
                    } = victim_shard;
                    let ctx = EngineCtx {
                        time: seq,
                        cache,
                        stats,
                        universe,
                    };
                    policy.on_evicted(&ctx, victim);
                }
                let ShardState {
                    cache,
                    policy,
                    stats,
                } = home;
                let ctx = EngineCtx {
                    time: seq,
                    cache,
                    stats,
                    universe,
                };
                policy.on_insert(&ctx, incoming);
            }
        }
        victim
    }

    fn commit_hit(
        &self,
        sh: &mut ShardState<P>,
        s: usize,
        thread: u32,
        req: Request,
        lane: &mut ThreadLane,
    ) -> CommitOutcome {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        lane.stats.record_hit(req.user);
        let ShardState {
            cache,
            policy,
            stats,
        } = sh;
        let ctx = EngineCtx {
            time: seq,
            cache,
            stats,
            universe: &self.universe,
        };
        policy.on_hit(&ctx, req.page);
        let outcome = CommitOutcome::Hit;
        lane.schedule
            .push(self.record(seq, thread, s, req, outcome));
        outcome
    }

    /// Drop a well-formed record from a quarantined user. Caller must
    /// hold the page's shard lock (which orders the flag read against
    /// quarantine events).
    fn commit_quarantined_drop(
        &self,
        s: usize,
        thread: u32,
        req: Request,
        lane: &mut ThreadLane,
    ) -> CommitOutcome {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        lane.counters.count(FaultKind::QuarantinedUser);
        let outcome = CommitOutcome::Drop {
            kind: FaultKind::QuarantinedUser,
        };
        lane.schedule
            .push(self.record(seq, thread, s, req, outcome));
        outcome
    }

    /// Absorb a malformed record (page out of range / owner mismatch)
    /// under the engine's degradation policy, mirroring
    /// `step_checked`'s policy table.
    fn absorb_malformed(
        &self,
        thread: u32,
        req: Request,
        kind: FaultKind,
        lane: &mut ThreadLane,
    ) -> Result<CommitOutcome, SimError> {
        let s = shard_of(req.page, self.shards.len());
        match self.degrade {
            FaultPolicy::FailFast => {
                self.stop.store(true, Ordering::Relaxed);
                let fault = RequestFault {
                    // No commit position is drawn for a fail-fast abort;
                    // the committed count is the best timestamp there is.
                    time: self.committed(),
                    kind,
                    page: req.page,
                    user: req.user,
                };
                Err(fault.into())
            }
            FaultPolicy::SkipAndCount => {
                // Stateless: only this thread's counters move, so the
                // record commutes with every other op and a bare
                // sequence draw is a valid commit position.
                lane.counters.count(kind);
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                let outcome = CommitOutcome::Drop { kind };
                lane.schedule
                    .push(self.record(seq, thread, s, req, outcome));
                Ok(outcome)
            }
            FaultPolicy::QuarantineUser => {
                lane.counters.count(kind);
                let culprit = self.universe.try_owner(req.page).or_else(|| {
                    (req.user.index() < self.universe.num_users() as usize).then_some(req.user)
                });
                let Some(culprit) = culprit else {
                    // Out-of-range page from a nonexistent user: nobody
                    // to quarantine, stateless like skip-and-count.
                    let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                    let outcome = CommitOutcome::Drop { kind };
                    lane.schedule
                        .push(self.record(seq, thread, s, req, outcome));
                    return Ok(outcome);
                };
                // Quarantine event: the one op that touches every
                // segment. Mutex first, then all shard locks ascending;
                // flag writes are ordered against every reader because
                // readers hold at least one shard lock.
                let mut cap = self.cap.lock().unwrap();
                let mut guards: Vec<MutexGuard<'_, ShardState<P>>> =
                    self.shards.iter().map(|m| m.lock().unwrap()).collect();
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                if !self.quarantined[culprit.index()].load(Ordering::Relaxed) {
                    self.quarantined[culprit.index()].store(true, Ordering::Relaxed);
                    lane.counters.quarantined_users += 1;
                    for (i, guard) in guards.iter_mut().enumerate() {
                        let removed = Self::purge_user(guard, culprit, seq, &self.universe);
                        cap.used[i] -= removed;
                        cap.free += removed;
                    }
                }
                let outcome = CommitOutcome::Drop { kind };
                lane.schedule
                    .push(self.record(seq, thread, s, req, outcome));
                Ok(outcome)
            }
        }
    }

    /// Remove every cached page owned by `user` from one segment
    /// (uncharged, like [`SteppingEngine::remove_user_externally`]).
    fn purge_user(sh: &mut ShardState<P>, user: UserId, seq: u64, universe: &Universe) -> usize {
        let doomed: Vec<PageId> = sh
            .cache
            .pages()
            .iter()
            .copied()
            .filter(|&p| universe.owner(p) == user)
            .collect();
        for &p in &doomed {
            sh.cache.remove(p);
            let ShardState {
                cache,
                policy,
                stats,
            } = sh;
            let ctx = EngineCtx {
                time: seq,
                cache,
                stats,
                universe,
            };
            policy.on_external_removal(&ctx, p);
        }
        doomed.len()
    }

    fn record(
        &self,
        seq: u64,
        thread: u32,
        shard: usize,
        req: Request,
        outcome: CommitOutcome,
    ) -> CommitRecord {
        CommitRecord {
            seq,
            thread,
            shard: shard as u32,
            page: req.page,
            user: req.user,
            outcome,
        }
    }

    /// Drive one worker to stream exhaustion (or engine stop), feeding
    /// outcomes to `recorder` with the same hook semantics the
    /// sequential engines use.
    fn drive_worker<S: RequestSource, R: Recorder>(
        &self,
        thread: u32,
        source: &mut S,
        recorder: &mut R,
    ) -> Result<ThreadLane, SimError> {
        let mut lane = ThreadLane::new(self.universe.num_users());
        // Sources in shared mode must be non-adaptive (an adaptive
        // source cannot observe a sharded cache coherently), so the ctx
        // handed to them views an empty one-slot probe cache.
        let probe_cache = CacheSet::new(1, self.universe.num_pages());
        let probe_stats = SimStats::new(self.universe.num_users());
        let mut local_t: Time = 0;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let src_ctx = EngineCtx {
                time: local_t,
                cache: &probe_cache,
                stats: &probe_stats,
                universe: &self.universe,
            };
            let Some(req) = source.next_request(&src_ctx) else {
                break;
            };
            local_t += 1;
            let started = if R::TIMED { Some(Instant::now()) } else { None };
            let outcome = self.serve_record(thread, req, &mut lane)?;
            if R::ACTIVE {
                let seq = lane.schedule.last().map(|r| r.seq).unwrap_or(0);
                let ctx = EngineCtx {
                    time: seq,
                    cache: &probe_cache,
                    stats: &probe_stats,
                    universe: &self.universe,
                };
                match outcome {
                    CommitOutcome::Hit => recorder.record_hit(&ctx, seq, req.page, req.user),
                    CommitOutcome::Insert => recorder.record_insert(&ctx, seq, req.page, req.user),
                    CommitOutcome::Evict { victim } => recorder.record_eviction(
                        &ctx,
                        seq,
                        req.page,
                        req.user,
                        victim,
                        self.universe.owner(victim),
                    ),
                    CommitOutcome::Drop { kind } => recorder.record_fault(&RequestFault {
                        time: seq,
                        kind,
                        page: req.page,
                        user: req.user,
                    }),
                }
            }
            if let Some(started) = started {
                let seq = lane.schedule.last().map(|r| r.seq).unwrap_or(0);
                recorder.record_latency_ns(seq, started.elapsed().as_nanos() as u64);
            }
        }
        Ok(lane)
    }
}

/// Run `sources[t]` on thread `t` against `engine`, merge everything,
/// and validate the commit schedule. `sources` and `recorders` are
/// borrowed so callers keep them afterwards (chaos sources report their
/// injected-fault tallies; recorders get merged by the caller).
///
/// Fail-fast runs return the first thread's fault (in thread order) and
/// no outcome; all other policies always complete.
pub fn run_shared<P, S, R>(
    engine: &ConcurrentEngine<P>,
    sources: &mut [S],
    recorders: &mut [R],
) -> Result<SharedOutcome, SimError>
where
    P: ReplacementPolicy + Send,
    S: RequestSource + Send,
    R: Recorder + Send,
{
    assert_eq!(
        sources.len(),
        recorders.len(),
        "one recorder per worker thread"
    );
    for src in sources.iter() {
        assert_eq!(
            src.universe(),
            engine.universe(),
            "all shared-mode sources must range over the engine's universe"
        );
    }
    let lanes: Vec<Result<ThreadLane, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter_mut()
            .zip(recorders.iter_mut())
            .enumerate()
            .map(|(t, (source, recorder))| {
                scope.spawn(move || engine.drive_worker(t as u32, source, recorder))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shared-cache worker panicked"))
            .collect()
    });
    let mut per_thread = Vec::with_capacity(lanes.len());
    let mut schedules = Vec::with_capacity(lanes.len());
    let mut stats = SimStats::new(engine.universe().num_users());
    let mut counters = FaultCounters::default();
    for lane in lanes {
        let lane = lane?;
        merge_stats(&mut stats, &lane.stats);
        counters.merge(&lane.counters);
        per_thread.push((lane.stats, lane.counters));
        schedules.push(lane.schedule);
    }
    // Contiguity is guaranteed by construction: every consumed record
    // draws exactly one sequence number and commits it before its locks
    // drop, so a gap here is an engine bug, not an input condition.
    let schedule =
        CommitSchedule::from_threads(schedules).expect("commit schedule must be contiguous");
    Ok(SharedOutcome {
        stats,
        counters,
        quarantined: engine.quarantined_users(),
        schedule,
        per_thread,
    })
}

/// Sum `from` into `into`, user by user (saturating, like the engine's
/// own counters).
pub fn merge_stats(into: &mut SimStats, from: &SimStats) {
    assert_eq!(into.num_users(), from.num_users());
    let merged: Vec<crate::stats::UserStats> = into
        .per_user()
        .iter()
        .zip(from.per_user())
        .map(|(a, b)| crate::stats::UserStats {
            hits: a.hits.saturating_add(b.hits),
            misses: a.misses.saturating_add(b.misses),
            evictions: a.evictions.saturating_add(b.evictions),
        })
        .collect();
    *into = SimStats::from_per_user(merged);
}

/// Replay a commit schedule single-threaded through the stock
/// [`SteppingEngine`] + [`ShardedPolicy`], verifying every per-entry
/// outcome (hit/insert/evict victim/drop kind) along the way.
///
/// `policies` must be constructed exactly like the concurrent engine's
/// shard instances (same policy, same parameters, same count).
pub fn replay_schedule<P: ReplacementPolicy>(
    capacity: usize,
    universe: Universe,
    policies: Vec<P>,
    degrade: FaultPolicy,
    schedule: &CommitSchedule,
) -> Result<ReplayOutcome, ReplayError> {
    let num_users = universe.num_users();
    let mut engine = SteppingEngine::new(capacity, universe, ShardedPolicy::new(policies));
    let mut handler = FaultHandler::new(degrade, num_users);
    for entry in schedule.entries() {
        let req = Request {
            page: entry.page,
            user: entry.user,
        };
        // Predict the drop classification before stepping (step_checked
        // reports drops as a bare `Ok(None)`).
        let predicted = {
            let ctx = engine.ctx();
            match ctx.universe.try_owner(req.page) {
                None => Some(FaultKind::PageOutOfRange),
                Some(owner) if owner != req.user => Some(FaultKind::OwnerMismatch),
                Some(_) if handler.is_quarantined(req.user) => Some(FaultKind::QuarantinedUser),
                Some(_) => None,
            }
        };
        let stepped = engine
            .step_checked(req, &mut handler)
            .map_err(ReplayError::Fault)?;
        let replayed = match stepped {
            Some(StepOutcome::Hit) => CommitOutcome::Hit,
            Some(StepOutcome::Inserted) => CommitOutcome::Insert,
            Some(StepOutcome::Evicted(victim)) => CommitOutcome::Evict { victim },
            None => CommitOutcome::Drop {
                kind: predicted.expect("step_checked dropped a record it classified as clean"),
            },
        };
        if replayed != entry.outcome {
            return Err(ReplayError::Divergence {
                seq: entry.seq,
                detail: format!(
                    "thread {} shard {} {} {}: concurrent committed {:?}, replay produced {:?}",
                    entry.thread, entry.shard, entry.page, entry.user, entry.outcome, replayed
                ),
            });
        }
    }
    Ok(ReplayOutcome {
        stats: engine.stats().clone(),
        counters: handler.counters().clone(),
        quarantined: handler.quarantined_users(),
    })
}

/// The replay gate: per-user miss vectors (and all other counters),
/// fault counters, and quarantine sets of the concurrent run must equal
/// the replay's byte-for-byte.
pub fn verify_replay(shared: &SharedOutcome, replay: &ReplayOutcome) -> Result<(), ReplayError> {
    if shared.stats != replay.stats {
        return Err(ReplayError::Divergence {
            seq: u64::MAX,
            detail: format!(
                "per-user stats differ: concurrent misses {:?} vs replay {:?}",
                shared.stats.miss_vector(),
                replay.stats.miss_vector()
            ),
        });
    }
    if shared.counters != replay.counters {
        return Err(ReplayError::Divergence {
            seq: u64::MAX,
            detail: format!(
                "fault counters differ: concurrent {:?} vs replay {:?}",
                shared.counters, replay.counters
            ),
        });
    }
    if shared.quarantined != replay.quarantined {
        return Err(ReplayError::Divergence {
            seq: u64::MAX,
            detail: format!(
                "quarantine sets differ: concurrent {:?} vs replay {:?}",
                shared.quarantined, replay.quarantined
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::NoopRecorder;
    use crate::source::TraceSource;
    use crate::trace::Trace;

    /// A tiny LRU over an ordered vec — slow, obviously correct, and
    /// callback-pure, so it is shard-safe by construction.
    struct VecLru {
        order: Vec<PageId>,
    }

    impl VecLru {
        fn new() -> Self {
            VecLru { order: Vec::new() }
        }
    }

    impl ReplacementPolicy for VecLru {
        fn name(&self) -> String {
            "vec-lru".into()
        }
        fn on_hit(&mut self, _ctx: &EngineCtx, page: PageId) {
            self.order.retain(|&p| p != page);
            self.order.push(page);
        }
        fn on_insert(&mut self, _ctx: &EngineCtx, page: PageId) {
            self.order.push(page);
        }
        fn choose_victim(&mut self, _ctx: &EngineCtx, _incoming: PageId) -> PageId {
            self.order.remove(0)
        }
        fn on_external_removal(&mut self, _ctx: &EngineCtx, page: PageId) {
            self.order.retain(|&p| p != page);
        }
        fn reset(&mut self) {
            self.order.clear();
        }
    }

    /// Unvalidated request vector source ([`Trace`] rejects malformed
    /// records at construction; fault tests need to emit them).
    struct RawSource {
        universe: Universe,
        reqs: Vec<Request>,
        pos: usize,
    }

    impl RequestSource for RawSource {
        fn universe(&self) -> &Universe {
            &self.universe
        }
        fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
            let r = self.reqs.get(self.pos).copied();
            self.pos += 1;
            r
        }
    }

    fn small_universe() -> Universe {
        // 3 users × 8 pages each.
        let owners: Vec<UserId> = (0..24).map(|p| UserId(p / 8)).collect();
        Universe::new(3, owners)
    }

    fn interleaved_traces(universe: &Universe, per_thread: usize, threads: usize) -> Vec<Trace> {
        (0..threads)
            .map(|t| {
                let reqs: Vec<Request> = (0..per_thread)
                    .map(|i| {
                        let p = PageId(((i * 7 + t * 5 + i * i) % 24) as u32);
                        universe.request(p)
                    })
                    .collect();
                Trace::new(universe.clone(), reqs)
            })
            .collect()
    }

    fn run_and_verify(threads: usize, table_shards: usize, k: usize) -> SharedOutcome {
        let universe = small_universe();
        let engine = ConcurrentEngine::new(
            k,
            universe.clone(),
            FaultPolicy::SkipAndCount,
            (0..table_shards).map(|_| VecLru::new()).collect(),
        );
        let traces = interleaved_traces(&universe, 200, threads);
        let mut sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
        let mut recorders = vec![NoopRecorder; threads];
        let shared = run_shared(&engine, &mut sources, &mut recorders).unwrap();
        let replay = replay_schedule(
            k,
            universe,
            (0..table_shards).map(|_| VecLru::new()).collect(),
            FaultPolicy::SkipAndCount,
            &shared.schedule,
        )
        .unwrap();
        verify_replay(&shared, &replay).unwrap();
        shared
    }

    #[test]
    fn concurrent_matches_replay_across_shapes() {
        for &(threads, shards, k) in &[(1, 1, 4), (2, 3, 5), (4, 8, 6), (3, 2, 1), (4, 1, 7)] {
            let shared = run_and_verify(threads, shards, k);
            assert_eq!(shared.schedule.len(), threads * 200);
            assert!(shared.counters.is_clean());
        }
    }

    #[test]
    fn schedule_seqs_are_contiguous_and_shard_consistent() {
        let shared = run_and_verify(4, 4, 6);
        for (i, e) in shared.schedule.entries().iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.shard, shard_of(e.page, 4) as u32);
        }
    }

    #[test]
    fn commit_record_line_round_trip() {
        let records = [
            CommitRecord {
                seq: 0,
                thread: 3,
                shard: 1,
                page: PageId(9),
                user: UserId(1),
                outcome: CommitOutcome::Hit,
            },
            CommitRecord {
                seq: 1,
                thread: 0,
                shard: 0,
                page: PageId(4),
                user: UserId(0),
                outcome: CommitOutcome::Evict { victim: PageId(2) },
            },
            CommitRecord {
                seq: 2,
                thread: 1,
                shard: 2,
                page: PageId(99),
                user: UserId(7),
                outcome: CommitOutcome::Drop {
                    kind: FaultKind::PageOutOfRange,
                },
            },
            CommitRecord {
                seq: 3,
                thread: 2,
                shard: 0,
                page: PageId(12),
                user: UserId(2),
                outcome: CommitOutcome::Insert,
            },
        ];
        for r in records {
            assert_eq!(CommitRecord::from_line(&r.to_line()).unwrap(), r);
        }
        assert!(CommitRecord::from_line("1 2 3").is_err());
        assert!(CommitRecord::from_line("0 0 0 1 1 zap").is_err());
        assert!(CommitRecord::from_line("0 0 0 1 1 hit extra").is_err());
        // Ids wider than u32 must be rejected, not silently truncated.
        assert!(CommitRecord::from_line("0 4294967296 0 1 1 hit").is_err());
        assert!(CommitRecord::from_line("0 0 4294967296 1 1 hit").is_err());
        assert!(CommitRecord::from_line("0 0 0 4294967296 1 hit").is_err());
        assert!(CommitRecord::from_line("0 0 0 1 4294967296 hit").is_err());
        assert!(CommitRecord::from_line("0 0 0 1 1 evt 4294967296").is_err());
    }

    #[test]
    fn non_contiguous_schedule_rejected() {
        let mk = |seq| CommitRecord {
            seq,
            thread: 0,
            shard: 0,
            page: PageId(0),
            user: UserId(0),
            outcome: CommitOutcome::Hit,
        };
        assert!(CommitSchedule::from_threads(vec![vec![mk(0), mk(2)]]).is_err());
        assert!(CommitSchedule::from_threads(vec![vec![mk(0)], vec![mk(0)]]).is_err());
        assert!(CommitSchedule::from_threads(vec![vec![mk(1), mk(0)]]).is_ok());
    }

    #[test]
    fn quarantine_event_purges_and_replays() {
        let universe = small_universe();
        let engine = ConcurrentEngine::new(
            4,
            universe.clone(),
            FaultPolicy::QuarantineUser,
            (0..2).map(|_| VecLru::new()).collect(),
        );
        // Thread 0: clean requests from user 0; thread 1 ends with an
        // owner-mismatch record whose true owner is user 0.
        let t0: Vec<Request> = (0..40).map(|i| universe.request(PageId(i % 8))).collect();
        let mut t1: Vec<Request> = (0..40)
            .map(|i| universe.request(PageId(8 + i % 8)))
            .collect();
        t1.push(Request {
            page: PageId(3),
            user: UserId(2),
        });
        let mut sources = vec![
            RawSource {
                universe: universe.clone(),
                reqs: t0,
                pos: 0,
            },
            RawSource {
                universe: universe.clone(),
                reqs: t1,
                pos: 0,
            },
        ];
        let mut recorders = vec![NoopRecorder; 2];
        let shared = run_shared(&engine, &mut sources, &mut recorders).unwrap();
        assert_eq!(shared.counters.owner_mismatch, 1);
        assert_eq!(shared.counters.quarantined_users, 1);
        assert_eq!(shared.quarantined, vec![UserId(0)]);
        let replay = replay_schedule(
            4,
            universe,
            (0..2).map(|_| VecLru::new()).collect(),
            FaultPolicy::QuarantineUser,
            &shared.schedule,
        )
        .unwrap();
        verify_replay(&shared, &replay).unwrap();
    }

    #[test]
    fn fail_fast_stops_and_reports() {
        let universe = small_universe();
        let engine = ConcurrentEngine::new(
            4,
            universe.clone(),
            FaultPolicy::FailFast,
            vec![VecLru::new()],
        );
        let reqs = vec![
            universe.request(PageId(0)),
            Request {
                page: PageId(999),
                user: UserId(0),
            },
            universe.request(PageId(1)),
        ];
        let mut sources = vec![RawSource {
            universe: universe.clone(),
            reqs,
            pos: 0,
        }];
        let mut recorders = vec![NoopRecorder];
        let err = run_shared(&engine, &mut sources, &mut recorders).unwrap_err();
        assert!(err.to_string().contains("page"), "unexpected error: {err}");
        assert!(engine.stopped());
    }

    #[test]
    fn empty_streams_commit_nothing() {
        let universe = small_universe();
        let engine = ConcurrentEngine::new(
            4,
            universe.clone(),
            FaultPolicy::SkipAndCount,
            (0..3).map(|_| VecLru::new()).collect(),
        );
        let traces: Vec<Trace> = (0..4)
            .map(|_| Trace::new(universe.clone(), Vec::new()))
            .collect();
        let mut sources: Vec<TraceSource> = traces.iter().map(TraceSource::new).collect();
        let mut recorders = vec![NoopRecorder; 4];
        let shared = run_shared(&engine, &mut sources, &mut recorders).unwrap();
        assert!(shared.schedule.is_empty());
        assert_eq!(shared.stats.total_misses(), 0);
        let replay = replay_schedule(
            4,
            universe,
            (0..3).map(|_| VecLru::new()).collect(),
            FaultPolicy::SkipAndCount,
            &shared.schedule,
        )
        .unwrap();
        verify_replay(&shared, &replay).unwrap();
    }
}
