//! Compact binary trace serialization.
//!
//! The text format ([`crate::textio`]) is the diffable, versionable
//! interchange form; this module is its high-volume twin for traces too
//! large to hold as text (or in memory at all). The layout is fixed-width
//! little-endian:
//!
//! ```text
//! offset  size            field
//! 0       8               magic  b"occbin01"
//! 8       4               num_users   (u32, > 0)
//! 12      4               num_pages   (u32)
//! 16      4 * num_pages   owner table (u32 per page, < num_users)
//! …       8               num_requests (u64)
//! …       4 * num_requests  requested page ids (u32, < num_pages)
//! ```
//!
//! Requests carry only the page id — the owner is implied by the owner
//! table, exactly as in the text format. Readers and writers move data in
//! bounded chunks, so a billion-request trace streams from disk without
//! full residency: [`BinaryTraceReader`] is a
//! [`RequestSource`](crate::source::RequestSource) whose memory footprint
//! is the owner table plus one chunk, independent of the request count.

use crate::engine::EngineCtx;
use crate::ids::{PageId, UserId};
use crate::source::RequestSource;
use crate::textio::TraceIoError;
use crate::trace::{Request, Trace, TraceBuilder, Universe};
use std::io::{BufRead, Read, Seek, SeekFrom, Write};

/// First eight bytes of every binary trace.
pub const BINARY_TRACE_MAGIC: [u8; 8] = *b"occbin01";

/// Page ids per chunk moved by the streaming reader/writer: 64 Ki ids =
/// 256 KiB per transfer, large enough to amortize syscalls, small enough
/// to keep residency trivially bounded.
const CHUNK_IDS: usize = 64 * 1024;

fn parse_err(msg: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse(msg.into())
}

/// Classify an I/O failure while a fixed-width field is being read:
/// running out of bytes mid-field is a malformed (truncated) file, not an
/// environment failure.
fn classify(e: std::io::Error, what: &str) -> TraceIoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        parse_err(format!("truncated binary trace: unexpected EOF in {what}"))
    } else {
        TraceIoError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, TraceIoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|e| classify(e, what))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, TraceIoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| classify(e, what))?;
    Ok(u64::from_le_bytes(buf))
}

/// Read the magic + universe header, leaving the reader positioned at the
/// request count.
fn read_universe<R: Read>(r: &mut R) -> Result<Universe, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| classify(e, "the magic"))?;
    if magic != BINARY_TRACE_MAGIC {
        return Err(parse_err(format!(
            "bad magic {magic:?}, expected {BINARY_TRACE_MAGIC:?}"
        )));
    }
    let num_users = read_u32(r, "the user count")?;
    if num_users == 0 {
        return Err(parse_err("a trace needs at least one user"));
    }
    let num_pages = read_u32(r, "the page count")? as usize;
    // Read the owner table chunkwise: the capacity hint is capped so a
    // corrupt header cannot demand an arbitrary allocation up front.
    let mut owners: Vec<UserId> = Vec::with_capacity(num_pages.min(CHUNK_IDS));
    let mut buf = vec![0u8; 4 * CHUNK_IDS];
    let mut remaining = num_pages;
    while remaining > 0 {
        let take = remaining.min(CHUNK_IDS);
        let bytes = &mut buf[..4 * take];
        r.read_exact(bytes)
            .map_err(|e| classify(e, "the owner table"))?;
        for ids in bytes.chunks_exact(4) {
            let u = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            if u >= num_users {
                return Err(parse_err(format!("owner {u} out of range")));
            }
            owners.push(UserId(u));
        }
        remaining -= take;
    }
    Ok(Universe::new(num_users, owners))
}

/// Write an entire in-memory `trace` in the binary format.
pub fn write_trace_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    let universe = trace.universe();
    w.write_all(&BINARY_TRACE_MAGIC)?;
    w.write_all(&universe.num_users().to_le_bytes())?;
    w.write_all(&universe.num_pages().to_le_bytes())?;
    let mut buf = Vec::with_capacity(4 * CHUNK_IDS);
    for chunk in universe.owners().chunks(CHUNK_IDS) {
        buf.clear();
        for &u in chunk {
            buf.extend_from_slice(&u.0.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for chunk in trace.requests().chunks(CHUNK_IDS) {
        buf.clear();
        for r in chunk {
            buf.extend_from_slice(&r.page.0.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Read a whole binary trace into memory. For traces that do not fit,
/// use [`BinaryTraceReader`] and stream instead.
pub fn read_trace_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let universe = read_universe(&mut r)?;
    let num_pages = universe.num_pages();
    let count = read_u64(&mut r, "the request count")?;
    let mut builder = TraceBuilder::new(universe);
    let mut buf = vec![0u8; 4 * CHUNK_IDS];
    let mut remaining = count;
    while remaining > 0 {
        let take = (remaining as usize).min(CHUNK_IDS);
        let bytes = &mut buf[..4 * take];
        r.read_exact(bytes)
            .map_err(|e| classify(e, "the request stream"))?;
        for ids in bytes.chunks_exact(4) {
            let page = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            if page >= num_pages {
                return Err(parse_err(format!("page {page} out of range")));
            }
            builder.push(PageId(page));
        }
        remaining -= take as u64;
    }
    Ok(builder.build())
}

/// Read a trace in either format, sniffing the first bytes: binary if
/// they begin with [`BINARY_TRACE_MAGIC`], text otherwise.
pub fn read_trace_auto<R: BufRead>(mut r: R) -> Result<Trace, TraceIoError> {
    let head = r.fill_buf()?;
    // Compare against however much of the prefix is available — a file
    // shorter than the magic cannot be binary.
    let looks_binary = head.len() >= BINARY_TRACE_MAGIC.len()
        && head[..BINARY_TRACE_MAGIC.len()] == BINARY_TRACE_MAGIC;
    if looks_binary {
        read_trace_binary(r)
    } else {
        crate::textio::read_trace(r)
    }
}

/// Incremental binary-trace writer for streams whose length is not known
/// up front: the request count is written as a placeholder and patched on
/// [`finish`](Self::finish) (which is why the sink must be [`Seek`]).
pub struct BinaryTraceWriter<W: Write + Seek> {
    sink: W,
    universe: Universe,
    count_offset: u64,
    written: u64,
    buf: Vec<u8>,
}

impl<W: Write + Seek> BinaryTraceWriter<W> {
    /// Write the header for `universe` and return a writer ready to
    /// accept requests.
    pub fn new(universe: Universe, mut sink: W) -> Result<Self, TraceIoError> {
        sink.write_all(&BINARY_TRACE_MAGIC)?;
        sink.write_all(&universe.num_users().to_le_bytes())?;
        sink.write_all(&universe.num_pages().to_le_bytes())?;
        let mut buf = Vec::with_capacity(4 * CHUNK_IDS);
        for chunk in universe.owners().chunks(CHUNK_IDS) {
            buf.clear();
            for &u in chunk {
                buf.extend_from_slice(&u.0.to_le_bytes());
            }
            sink.write_all(&buf)?;
        }
        let count_offset = sink.stream_position()?;
        sink.write_all(&0u64.to_le_bytes())?;
        buf.clear();
        Ok(BinaryTraceWriter {
            sink,
            universe,
            count_offset,
            written: 0,
            buf,
        })
    }

    /// Append one request. Rejects pages outside the universe and owner
    /// claims that disagree with it (the same invariant [`Trace::new`]
    /// enforces, as a typed error instead of a panic).
    pub fn push(&mut self, req: Request) -> Result<(), TraceIoError> {
        match self.universe.try_owner(req.page) {
            None => {
                return Err(parse_err(format!(
                    "request {}: page {} outside the universe",
                    self.written, req.page
                )))
            }
            Some(owner) if owner != req.user => {
                return Err(parse_err(format!(
                    "request {}: {} does not own {}",
                    self.written, req.user, req.page
                )))
            }
            Some(_) => {}
        }
        self.buf.extend_from_slice(&req.page.0.to_le_bytes());
        if self.buf.len() >= 4 * CHUNK_IDS {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.written += 1;
        Ok(())
    }

    /// Flush buffered requests, patch the request count into the header,
    /// and return the sink. Dropping the writer without calling this
    /// leaves a file whose header promises zero requests.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        if !self.buf.is_empty() {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        let end = self.sink.stream_position()?;
        self.sink.seek(SeekFrom::Start(self.count_offset))?;
        self.sink.write_all(&self.written.to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(end))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Chunked binary-trace reader that serves as a
/// [`RequestSource`]: requests stream from the underlying reader
/// `CHUNK_IDS` at a time, so memory stays bounded regardless of how many
/// requests the file holds.
///
/// [`RequestSource::next_request`] has no error channel, so a mid-stream
/// failure (truncation, disk error, out-of-range page) ends the stream
/// early and parks the error in [`error`](Self::error) — run loops should
/// check it (or call [`finish`](Self::finish)) after the source runs dry.
pub struct BinaryTraceReader<R: Read> {
    reader: R,
    universe: Universe,
    total: u64,
    served: u64,
    chunk: Vec<Request>,
    /// Next index to serve from `chunk`.
    pos: usize,
    error: Option<TraceIoError>,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Read the header (universe + request count) and return a source
    /// positioned at the first request.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let universe = read_universe(&mut reader)?;
        let total = read_u64(&mut reader, "the request count")?;
        Ok(BinaryTraceReader {
            reader,
            universe,
            total,
            served: 0,
            chunk: Vec::new(),
            pos: 0,
            error: None,
        })
    }

    /// Total requests promised by the header.
    pub fn total_requests(&self) -> u64 {
        self.total
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Tear down the source; returns the parked error if the stream
    /// ended early, so callers can surface truncation with a `?`.
    pub fn finish(self) -> Result<(), TraceIoError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn refill(&mut self) -> Result<bool, TraceIoError> {
        let remaining = self.total - self.served;
        if remaining == 0 {
            return Ok(false);
        }
        let take = (remaining as usize).min(CHUNK_IDS);
        let mut bytes = vec![0u8; 4 * take];
        self.reader
            .read_exact(&mut bytes)
            .map_err(|e| classify(e, "the request stream"))?;
        self.chunk.clear();
        for ids in bytes.chunks_exact(4) {
            let page = u32::from_le_bytes(ids.try_into().expect("4-byte chunk"));
            match self.universe.try_owner(PageId(page)) {
                Some(user) => self.chunk.push(Request {
                    page: PageId(page),
                    user,
                }),
                None => return Err(parse_err(format!("page {page} out of range"))),
            }
        }
        self.pos = 0;
        Ok(true)
    }
}

impl<R: Read> RequestSource for BinaryTraceReader<R> {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn next_request(&mut self, _ctx: &EngineCtx) -> Option<Request> {
        if self.error.is_some() {
            return None;
        }
        if self.pos >= self.chunk.len() {
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        let req = self.chunk[self.pos];
        self.pos += 1;
        self.served += 1;
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Trace {
        let u = Universe::uniform(2, 2);
        Trace::from_page_indices(&u, &[0, 2, 1, 3, 0])
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back.requests(), t.requests());
        assert_eq!(back.universe(), t.universe());
    }

    #[test]
    fn written_form_is_stable() {
        let u = Universe::uniform(1, 2);
        let t = Trace::from_page_indices(&u, &[1, 0]);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut want = b"occbin01".to_vec();
        want.extend_from_slice(&1u32.to_le_bytes()); // users
        want.extend_from_slice(&2u32.to_le_bytes()); // pages
        want.extend_from_slice(&0u32.to_le_bytes()); // owner of p0
        want.extend_from_slice(&0u32.to_le_bytes()); // owner of p1
        want.extend_from_slice(&2u64.to_le_bytes()); // requests
        want.extend_from_slice(&1u32.to_le_bytes());
        want.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(buf, want);
    }

    #[test]
    fn incremental_writer_matches_whole_trace_writer() {
        let t = sample();
        let mut whole = Vec::new();
        write_trace_binary(&t, &mut whole).unwrap();

        let mut w = BinaryTraceWriter::new(t.universe().clone(), Cursor::new(Vec::new())).unwrap();
        for &r in t.requests() {
            w.push(r).unwrap();
        }
        let streamed = w.finish().unwrap().into_inner();
        assert_eq!(streamed, whole);
    }

    #[test]
    fn incremental_writer_validates_requests() {
        let u = Universe::uniform(2, 2);
        let mut w = BinaryTraceWriter::new(u.clone(), Cursor::new(Vec::new())).unwrap();
        let err = w
            .push(Request {
                page: PageId(99),
                user: UserId(0),
            })
            .unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
        let err = w
            .push(Request {
                page: PageId(0),
                user: UserId(1),
            })
            .unwrap_err();
        assert!(err.to_string().contains("does not own"));
    }

    #[test]
    fn streaming_reader_replays_identically() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(src.total_requests(), t.len() as u64);
        let ctx_universe = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, ctx_universe.num_pages());
        let stats = crate::stats::SimStats::new(ctx_universe.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &ctx_universe,
        };
        let mut got = Vec::new();
        while let Some(r) = src.next_request(&ctx) {
            got.push(r);
        }
        assert_eq!(got.as_slice(), t.requests());
        src.finish().unwrap();
    }

    #[test]
    fn truncated_header_is_a_parse_error() {
        for cut in [0usize, 4, 10, 14] {
            let t = sample();
            let mut buf = Vec::new();
            write_trace_binary(&t, &mut buf).unwrap();
            buf.truncate(cut);
            let err = read_trace_binary(buf.as_slice()).unwrap_err();
            assert!(matches!(err, TraceIoError::Parse(_)), "cut={cut}: {err}");
        }
    }

    #[test]
    fn truncated_request_stream_is_a_parse_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // The streaming reader parks the same error instead of panicking.
        let mut src = BinaryTraceReader::new(buf.as_slice()).unwrap();
        let u = src.universe().clone();
        let cache = crate::cache::CacheSet::new(1, u.num_pages());
        let stats = crate::stats::SimStats::new(u.num_users());
        let ctx = EngineCtx {
            time: 0,
            cache: &cache,
            stats: &stats,
            universe: &u,
        };
        while src.next_request(&ctx).is_some() {}
        assert!(matches!(src.finish(), Err(TraceIoError::Parse(_))));
    }

    #[test]
    fn corrupt_fields_are_parse_errors() {
        let t = sample();
        let mut good = Vec::new();
        write_trace_binary(&t, &mut good).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_trace_binary(bad.as_slice()),
            Err(TraceIoError::Parse(_))
        ));

        // Zero users.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("at least one user"));

        // Owner out of range.
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&7u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("owner 7 out of range"));

        // Page out of range in the request stream.
        let mut bad = good.clone();
        let last = bad.len() - 4;
        bad[last..].copy_from_slice(&9u32.to_le_bytes());
        let err = read_trace_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("page 9 out of range"));
    }

    #[test]
    fn io_failure_mid_stream_stays_an_io_error() {
        use std::io::{self};

        struct FailAfter {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos < self.data.len() {
                    let n = buf.len().min(self.data.len() - self.pos);
                    buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    Err(io::Error::other("disk on fire"))
                }
            }
        }

        let t = sample();
        let mut data = Vec::new();
        write_trace_binary(&t, &mut data).unwrap();
        data.truncate(data.len() - 4);
        let err = read_trace_binary(FailAfter { data, pos: 0 }).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "got {err}");
    }

    #[test]
    fn auto_detect_reads_both_formats() {
        let t = sample();
        let mut bin = Vec::new();
        write_trace_binary(&t, &mut bin).unwrap();
        let mut text = Vec::new();
        crate::textio::write_trace(&t, &mut text).unwrap();

        let from_bin = read_trace_auto(std::io::BufReader::new(bin.as_slice())).unwrap();
        let from_text = read_trace_auto(std::io::BufReader::new(text.as_slice())).unwrap();
        assert_eq!(from_bin.requests(), t.requests());
        assert_eq!(from_text.requests(), t.requests());
        assert_eq!(from_bin.universe(), from_text.universe());

        // Neither format: falls through to the text parser's error.
        let err = read_trace_auto(std::io::BufReader::new(&b"garbage"[..])).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(_)));
    }

    #[test]
    fn empty_trace_round_trips() {
        let u = Universe::single_user(3);
        let t = Trace::from_page_indices(&u, &[]);
        let mut buf = Vec::new();
        write_trace_binary(&t, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.universe(), t.universe());
    }
}
